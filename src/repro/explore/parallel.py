"""Wave-synchronized parallel exploration: shard schedule execution across
a worker pool while keeping results bit-identical to a single worker.

Schedule *execution* dominates exploration cost and is embarrassingly
parallel (a run is a pure function of its decision string), but naive
work-sharing makes results depend on worker timing.  The design here keeps
determinism by construction:

1. The master holds the frontier.  Each round it sorts the pending work
   items (canonically, or by a seed-keyed shuffle) into a **wave**,
   truncated to the remaining run budget.
2. Workers execute wave items and ship back picklable
   :class:`~repro.explore.engine.RunRecord` reductions — never traces.
   Each worker rebuilds the target from its ``(problem, mechanism)`` name
   in the pool initializer, so nothing unpicklable crosses the boundary.
3. The master merges records **in wave order** — counting runs, collecting
   violations, and expanding children through the same
   :func:`~repro.explore.engine.expand_record` the serial engine uses,
   against a single master-side ``seen`` set.

Because every pruning and ordering decision happens on the master over a
deterministically-ordered wave, the :class:`ExplorationResult` (runs,
violations, witness, pruned, states) is a function of
``(target, budget, depth, prune, seed)`` only — independent of worker
count and completion timing.  ``workers=1`` runs the identical algorithm
in-process, which is what the determinism regression test compares
against.

Worker processes are only worth their fork cost when single-run execution
is slow or the space is large; the CLI defaults to serial and the
benchmark (benchmarks/bench_exploration.py) measures the crossover.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pickle
from time import perf_counter
from typing import List, Optional, Set, Tuple

from ..runtime.policies import ScriptedPolicy
from .engine import (
    ExplorationResult,
    PruneKey,
    RecordingPolicy,
    RunRecord,
    expand_record,
    run_one_timed,
)
from .targets import ExplorationTarget, get_target

#: Per-worker state, installed by :func:`_init_worker` after the fork/spawn.
_WORKER: dict = {}


def _init_worker(problem: str, mechanism: str, prune: bool) -> None:
    """Pool initializer: rebuild the target (and import its problem modules)
    inside the worker."""
    _WORKER["target"] = get_target(problem, mechanism)
    _WORKER["prune"] = prune


def _execute(
    target: ExplorationTarget, prefix: Tuple[int, ...], prune: bool
) -> RunRecord:
    """Run one schedule of ``target`` and reduce it to a record."""
    policy = RecordingPolicy(prefix) if prune else ScriptedPolicy(prefix)
    run = target.build_and_run(policy)
    return RunRecord.from_run(prefix, policy, target.checker(run))


def _execute_in_worker(prefix: Tuple[int, ...]) -> RunRecord:
    return _execute(_WORKER["target"], prefix, _WORKER["prune"])


def _execute_in_worker_timed(
    prefix: Tuple[int, ...],
) -> Tuple[RunRecord, Tuple[int, float, float, int]]:
    """Telemetry variant: the record plus ``(worker pid, start, end,
    pickled-record bytes)``.  Timestamps are raw ``perf_counter`` readings
    — system-wide monotonic under the fork context, so the master can
    place them on its own timeline.  The record itself is identical to
    :func:`_execute_in_worker`'s (timing is passive), preserving
    worker-count- and telemetry-independence of results."""
    start = perf_counter()
    record = _execute(_WORKER["target"], prefix, _WORKER["prune"])
    end = perf_counter()
    result_bytes = len(pickle.dumps(record, pickle.HIGHEST_PROTOCOL))
    return record, (os.getpid(), start, end, result_bytes)


def _wave_key(seed: Optional[int]):
    """Sort key for a wave.  ``None`` = canonical lexicographic order;
    an integer seed shuffles deterministically (hash of seed + prefix), so
    budgeted searches sample different regions per seed while exhaustive
    searches stay seed-independent."""
    if seed is None:
        return lambda prefix: prefix
    def key(prefix: Tuple[int, ...]) -> Tuple[bytes, Tuple[int, ...]]:
        payload = repr((seed, prefix)).encode()
        return (hashlib.blake2b(payload, digest_size=8).digest(), prefix)
    return key


def explore_parallel(
    target: ExplorationTarget,
    check=None,
    *,
    workers: int = 1,
    max_runs: int = 2000,
    max_depth: int = 60,
    prune: bool = True,
    seed: Optional[int] = None,
    stop_at_first: bool = False,
    warm_seen: Optional[Set[PruneKey]] = None,
    telemetry=None,
) -> ExplorationResult:
    """Explore ``target``'s schedule space with ``workers`` processes.

    Args:
        target: what to run; must be a named target so workers can rebuild
            it (arbitrary closures cannot cross the process boundary —
            use :class:`~repro.explore.engine.ExplorationEngine` for those).
        check: optional checker override; defaults to the target's own
            battery.  Only usable with ``workers=1`` (not picklable).
        workers: process count; 1 runs in-process (no pool, same algorithm).
        max_runs: schedule budget across all workers.
        max_depth: branching horizon, as in the serial engine.
        prune: canonical-fingerprint equivalence pruning (master-side).
        seed: deterministic wave-order shuffle; affects which schedules a
            *budget-limited* search reaches, never an exhaustive one.
        stop_at_first: stop once a wave containing a violation is merged.
        warm_seen: prune keys claimed by previous searches of the same
            target (the persistent fingerprint cache,
            :class:`repro.obs.runstore.FingerprintCache`); mutated in
            place so the caller can persist the union afterwards.  Only
            meaningful with ``prune=True``; ``result.states`` counts only
            keys claimed by this search.
        telemetry: optional :class:`~repro.obs.harness.HarnessTelemetry`
            receiving phase accounting, wave stats, and the per-worker
            utilization timeline.  Duck-typed null path exactly as in
            :class:`~repro.explore.engine.ExplorationEngine`: a sink with
            ``IS_NULL = True`` (or ``None``) costs nothing, and telemetry
            never changes the :class:`ExplorationResult`.

    Returns:
        An :class:`ExplorationResult` identical for any ``workers`` value.
    """
    if check is not None and workers > 1:
        raise ValueError(
            "a checker override cannot be shipped to worker processes; "
            "use workers=1 or register a named target"
        )
    if telemetry is not None and getattr(telemetry, "IS_NULL", False):
        telemetry = None
    result = ExplorationResult()
    frontier: List[Tuple[int, ...]] = [()]
    seen: Optional[Set[PruneKey]]
    if prune:
        seen = warm_seen if warm_seen is not None else set()
    else:
        seen = None
    preloaded = len(seen) if seen is not None else 0
    key = _wave_key(seed)
    pool = None
    if workers > 1:
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        pool = context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(target.problem, target.mechanism, prune),
        )
    if telemetry is not None:
        telemetry.begin(max_runs=max_runs, workers=workers)
    checker = check if check is not None else target.checker
    try:
        while frontier:
            mark = perf_counter() if telemetry is not None else 0.0
            frontier.sort(key=key)
            budget = max_runs - result.runs
            if budget <= 0:
                result.exhausted = False
                break
            wave, frontier = frontier[:budget], frontier[budget:]
            if frontier:
                result.exhausted = False  # budget will run out next round
            if pool is not None:
                chunk = max(1, len(wave) // (workers * 4))
                if telemetry is not None:
                    arg_bytes = sum(
                        len(pickle.dumps(prefix, pickle.HIGHEST_PROTOCOL))
                        for prefix in wave)
                    telemetry.add("dispatch", perf_counter() - mark)
                    dispatch_ts = perf_counter()
                    timed = pool.map(_execute_in_worker_timed, wave,
                                     chunksize=chunk)
                    wave_seconds = perf_counter() - dispatch_ts
                    telemetry.add("execute", wave_seconds)
                    telemetry.note_wave(size=len(wave), chunk=chunk,
                                        arg_bytes=arg_bytes,
                                        seconds=wave_seconds)
                    records = []
                    for prefix, (record, stats) in zip(wave, timed):
                        worker, start, end, result_bytes = stats
                        telemetry.note_worker_item(
                            worker=worker, start=start, end=end,
                            dispatch_ts=dispatch_ts,
                            result_bytes=result_bytes,
                            prefix_len=len(prefix))
                        records.append(record)
                else:
                    records = pool.map(_execute_in_worker, wave,
                                       chunksize=chunk)
            elif telemetry is not None:
                telemetry.add("dispatch", perf_counter() - mark)
                records = [
                    run_one_timed(target.build_and_run, prefix, checker,
                                  prune, telemetry)
                    for prefix in wave
                ]
            elif check is None:
                records = [_execute(target, prefix, prune) for prefix in wave]
            else:
                records = []
                for prefix in wave:
                    policy = (RecordingPolicy(prefix) if prune
                              else ScriptedPolicy(prefix))
                    run = target.build_and_run(policy)
                    records.append(RunRecord.from_run(prefix, policy,
                                                      check(run)))
            mark = perf_counter() if telemetry is not None else 0.0
            stopped_at = None
            children: List[Tuple[int, ...]] = []
            for index, record in enumerate(records):
                result.runs += 1
                if record.messages:
                    result.violations.append(
                        (record.taken, list(record.messages))
                    )
                    if stop_at_first:
                        stopped_at = index
                        break
                expanded, pruned = expand_record(record, max_depth, seen)
                result.pruned += pruned
                children.extend(expanded)
            if telemetry is not None:
                telemetry.note_progress(
                    result.runs, len(frontier) + len(children), result.pruned)
                telemetry.add("collect", perf_counter() - mark)
            if stopped_at is not None:
                # Covered iff nothing is left anywhere: no children, no
                # leftover frontier, and the violating record closed its wave.
                result.exhausted = not (
                    children or frontier or stopped_at < len(records) - 1
                )
                break
            frontier.extend(children)
    finally:
        if pool is not None:
            pool.close()
            pool.join()
        if telemetry is not None:
            telemetry.finish()
    result.states = len(seen) - preloaded if seen is not None else 0
    return result
