"""The exploration engine: pruned, parallel, minimizing schedule-space
search (DESIGN.md §9).

This package supersedes the naive DFS that used to live in
``repro.verify.explorer`` (still available there as a compatibility shim):

* :mod:`repro.explore.engine` — serial depth-first search with canonical
  state-fingerprint equivalence pruning.
* :mod:`repro.explore.parallel` — wave-synchronized multi-process frontier
  with worker-count-independent results.
* :mod:`repro.explore.minimize` — ddmin witness shrinking to local
  minimality, with an obs-layer replay timeline.
* :mod:`repro.explore.detectors` — pluggable lost-wakeup and
  conflicting-access (race) checkers.
* :mod:`repro.explore.targets` — named (problem, mechanism) workloads the
  CLI and worker processes resolve by string.

Entry point: ``python -m repro explore <problem> <mechanism>``.
"""

from .detectors import (
    WAKE_KINDS,
    ConflictingAccessChecker,
    LostWakeupChecker,
    SplitBrainChecker,
    compose_checkers,
)
from .engine import (
    ExplorationEngine,
    ExplorationResult,
    RecordingPolicy,
    RunRecord,
    expand_record,
)
from .minimize import MinimizedWitness, minimize_result, minimize_witness
from .parallel import explore_parallel
from .targets import ExplorationTarget, available_targets, get_target

__all__ = [
    "WAKE_KINDS",
    "ConflictingAccessChecker",
    "LostWakeupChecker",
    "SplitBrainChecker",
    "compose_checkers",
    "ExplorationEngine",
    "ExplorationResult",
    "RecordingPolicy",
    "RunRecord",
    "expand_record",
    "MinimizedWitness",
    "minimize_result",
    "minimize_witness",
    "explore_parallel",
    "ExplorationTarget",
    "available_targets",
    "get_target",
]
