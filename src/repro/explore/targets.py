"""Canonical exploration targets: small, exhaustible workloads for every
(problem, mechanism) pair, addressable by name.

The engine itself takes arbitrary ``build_and_run`` closures; the *targets*
exist so that exploration can be requested from the command line
(``python -m repro explore bounded_buffer monitor``) and sharded across
worker processes — a target is identified by two strings, so a worker can
rebuild the system and checker locally instead of receiving an unpicklable
closure.

Each target couples a deliberately small workload (2–3 processes, 1–2
operations each, so the schedule space is exhaustible within CLI budgets)
with a named oracle from :mod:`repro.verify.registry` — the same oracles
the synthesis engine (:mod:`repro.synth`) verifies candidates against, so
exploration and synthesis cannot drift apart on what "correct" means.  All
runs use ``on_deadlock="return"`` / ``on_error="record"`` so pathological
schedules are *reported* by checkers rather than aborting the search.

The ``footnote3`` target is the paper's E5 anomaly as a search problem:
the Figure-1 path-expression arrival pattern checked against the strict
Courtois–Heymans–Parnas oracle — the engine rediscovers the anomaly, and
the minimizer (:mod:`repro.explore.minimize`) shrinks its witness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..runtime.faults import FaultPlan
from ..runtime.policies import SchedulingPolicy
from ..runtime.scheduler import Scheduler
from ..runtime.trace import RunResult
from ..verify.registry import oracle

Checker = Callable[[RunResult], List[str]]


def _factory(problem: str, mechanism: str):
    from ..problems.registry import get_solution

    return get_solution(problem, mechanism).factory


# ----------------------------------------------------------------------
# Workloads (sched, mechanism) -> RunResult.  Kept module-level so worker
# processes resolve them by problem name.  The matching oracles live in
# repro.verify.registry under the names listed in _SPECS below.
# ----------------------------------------------------------------------
def _run_readers_priority(sched: Scheduler, mechanism: str) -> RunResult:
    impl = _factory("readers_priority", mechanism)(sched)

    def reader():
        yield from impl.read(work=1)

    def writer():
        yield from impl.write(1, work=1)

    sched.spawn(reader, name="R")
    sched.spawn(writer, name="W")
    return sched.run(on_deadlock="return", on_error="record")


def _run_footnote3(sched: Scheduler, mechanism: str) -> RunResult:
    impl = _factory("readers_priority", mechanism)(sched)

    def first_writer():
        yield from impl.write(1, work=6)

    def second_writer():
        yield
        yield from impl.write(2, work=1)

    def reader():
        yield
        yield
        yield from impl.read(work=1)

    sched.spawn(first_writer, name="W1")
    sched.spawn(second_writer, name="W2")
    sched.spawn(reader, name="R1")
    return sched.run(on_deadlock="return", on_error="record")


def _run_bounded_buffer(sched: Scheduler, mechanism: str) -> RunResult:
    impl = _factory("bounded_buffer", mechanism)(sched)
    consumed: List[int] = []
    sched.add_fingerprint_provider(lambda: consumed)

    def producer(value):
        def body():
            yield from impl.put(value)
        return body

    def consumer():
        for __ in range(2):
            item = yield from impl.get()
            consumed.append(item)

    sched.spawn(producer(0), name="P0")
    sched.spawn(producer(1), name="P1")
    sched.spawn(consumer, name="C")
    result = sched.run(on_deadlock="return", on_error="record")
    result.results["consumed"] = list(consumed)
    return result


def _run_one_slot_buffer(sched: Scheduler, mechanism: str) -> RunResult:
    impl = _factory("one_slot_buffer", mechanism)(sched)
    consumed: List[int] = []
    sched.add_fingerprint_provider(lambda: consumed)

    def producer(value):
        def body():
            yield from impl.put(value)
        return body

    def consumer():
        for __ in range(2):
            item = yield from impl.get()
            consumed.append(item)

    # Two independent producers: their pre-put steps commute, which gives
    # the equivalence pruning real work even on this tiny problem.
    sched.spawn(producer(0), name="P0")
    sched.spawn(producer(1), name="P1")
    sched.spawn(consumer, name="Cons")
    result = sched.run(on_deadlock="return", on_error="record")
    result.results["consumed"] = list(consumed)
    return result


def _run_fcfs_resource(sched: Scheduler, mechanism: str) -> RunResult:
    impl = _factory("fcfs_resource", mechanism)(sched)

    def contender():
        yield from impl.use(work=2)

    for i in range(3):
        sched.spawn(contender, name="U{}".format(i))
    return sched.run(on_deadlock="return", on_error="record")


def _run_alarm_clock(sched: Scheduler, mechanism: str) -> RunResult:
    # Inlined (rather than problems.alarm_clock.run_sleepers) so the wake
    # list can be registered as a fingerprint provider *before* the run.
    impl = _factory("alarm_clock", mechanism)(sched)
    delays = (2, 2, 1)
    wakes: List[int] = []
    sched.add_fingerprint_provider(lambda: wakes)
    horizon = max(delays) + 1

    def sleeper(n):
        def body():
            yield from impl.wakeme(n)
            wakes.append(n)
        return body

    def ticker():
        for __ in range(horizon):
            yield from sched.sleep(1)
            yield from impl.tick()

    for index, n in enumerate(delays):
        sched.spawn(sleeper(n), name="S{}_{}".format(index, n))
    sched.spawn(ticker, name="ticker")
    result = sched.run(on_deadlock="return", on_error="record")
    result.results["wakes"] = list(wakes)
    return result


def _run_staged_queue(sched: Scheduler, mechanism: str) -> RunResult:
    from ..problems.staged_queue import run_classes

    return run_classes(
        _factory("staged_queue", mechanism),
        plan=(("B", 0), ("A", 0), ("B", 0)),
        sched=sched,
    )


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
#: problem -> (workload, oracle name, registry problem used for mechanisms)
_SPECS: Dict[str, Tuple[Callable, str, str]] = {
    "readers_priority": (
        _run_readers_priority, "readers_priority_races", "readers_priority"),
    "footnote3": (_run_footnote3, "footnote3_strict", "readers_priority"),
    "bounded_buffer": (
        _run_bounded_buffer, "bounded_buffer_integrity", "bounded_buffer"),
    "one_slot_buffer": (
        _run_one_slot_buffer, "one_slot_alternation", "one_slot_buffer"),
    "fcfs_resource": (
        _run_fcfs_resource, "fcfs_resource", "fcfs_resource"),
    "alarm_clock": (_run_alarm_clock, "alarm_clock", "alarm_clock"),
    "staged_queue": (
        _run_staged_queue, "staged_queue_priority", "staged_queue"),
}


@dataclass(frozen=True)
class ExplorationTarget:
    """One (problem, mechanism) pair ready to explore.  Identified by two
    strings, so it crosses process boundaries as data."""

    problem: str
    mechanism: str

    def build_and_run(
        self,
        policy: SchedulingPolicy,
        fault_plan: Optional[FaultPlan] = None,
        sink=None,
    ) -> RunResult:
        """One fresh run of the target's workload under ``policy``."""
        workload, __, __ = _SPECS[self.problem]
        sched = Scheduler(policy=policy, fault_plan=fault_plan, sink=sink)
        return workload(sched, self.mechanism)

    def runner(self) -> Callable[[SchedulingPolicy], RunResult]:
        """``build_and_run`` curried for the engine's signature."""
        return lambda policy: self.build_and_run(policy)

    @property
    def oracle_name(self) -> str:
        """The registry name of this target's oracle battery."""
        __, name, __ = _SPECS[self.problem]
        return name

    @property
    def checker(self) -> Checker:
        """The problem oracle + detectors battery for this target, resolved
        from the shared registry (:mod:`repro.verify.registry`)."""
        return oracle(self.oracle_name)


def get_target(problem: str, mechanism: str) -> ExplorationTarget:
    """Resolve a target, validating both coordinates.

    Raises:
        KeyError: unknown problem, or mechanism not registered for it.
    """
    from ..problems.registry import solutions_for

    if problem not in _SPECS:
        raise KeyError(
            "unknown exploration problem {!r}; choose from {}".format(
                problem, ", ".join(sorted(_SPECS))
            )
        )
    registry_problem = _SPECS[problem][2]
    known = [e.mechanism for e in solutions_for(registry_problem)]
    if mechanism not in known:
        raise KeyError(
            "no {} solution for {!r}; registered mechanisms: {}".format(
                mechanism, problem, ", ".join(sorted(known))
            )
        )
    return ExplorationTarget(problem, mechanism)


def available_targets() -> List[Tuple[str, str]]:
    """Every (problem, mechanism) pair that :func:`get_target` accepts."""
    from ..problems.registry import solutions_for

    pairs: List[Tuple[str, str]] = []
    for problem, (__, __, registry_problem) in sorted(_SPECS.items()):
        for entry in solutions_for(registry_problem):
            pairs.append((problem, entry.mechanism))
    return pairs
