"""The exploration engine: pruned stateless search over schedule space.

Because all nondeterminism flows through the scheduling policy, a run is a
pure function of its decision string.  The engine enumerates decision
strings (run a prefix, read back how many alternatives existed at each
step, queue every first-deviation sibling) exactly like the naive DFS it
replaces — but with **equivalence pruning**: a :class:`RecordingPolicy`
captures the scheduler's canonical state fingerprint before every decision
(:meth:`~repro.runtime.scheduler.Scheduler.fingerprint`), and a work item
that would re-enter an already-claimed ``(state, chosen process)`` subtree
is dropped.  Interleavings that are permutations of independent steps
converge to the same canonical state, so each equivalence class is visited
once — a sleep-set/state-caching reduction in the DPOR family (see
DESIGN.md §9 for the soundness argument and its boundary).

Serial depth-first search lives here; the wave-synchronized parallel
frontier is :mod:`repro.explore.parallel`, sharing :func:`expand_record`
so both searches prune identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Set, Tuple

from ..runtime.policies import ScriptedPolicy
from ..runtime.trace import RunResult

BuildAndRun = Callable[[ScriptedPolicy], RunResult]
Checker = Callable[[RunResult], List[str]]

#: A pruning key: (canonical state fingerprint, pid chosen from it).  Two
#: work items with the same key root isomorphic subtrees.
PruneKey = Tuple[int, int]


class RecordingPolicy(ScriptedPolicy):
    """A :class:`ScriptedPolicy` that additionally records, per decision,
    the canonical state fingerprint and the pid of every ready process —
    the raw material of equivalence pruning.  The scheduler invokes
    :meth:`observe_state` right before each ``choose`` (duck-typed hook)."""

    def __init__(self, decisions: Optional[Sequence[int]] = None) -> None:
        super().__init__(decisions)
        self.fingerprints: List[int] = []
        self.ready_pids: List[Tuple[int, ...]] = []

    def observe_state(self, sched) -> None:
        sched.enable_fingerprinting()
        self.fingerprints.append(sched.fingerprint())
        self.ready_pids.append(tuple(p.pid for p in sched._ready))

    def reset(self) -> None:
        super().reset()
        self.fingerprints = []
        self.ready_pids = []


class TimedRecordingPolicy(RecordingPolicy):
    """A :class:`RecordingPolicy` that additionally accumulates the wall
    clock spent inside :meth:`observe_state` — i.e. in canonical-state
    fingerprint hashing — so harness telemetry can attribute fingerprint
    time separately from scheduler stepping.  Decisions are identical to
    the untimed policy (timing is passive), which is what keeps
    telemetry-on results byte-identical to telemetry-off ones."""

    def __init__(self, decisions: Optional[Sequence[int]] = None) -> None:
        super().__init__(decisions)
        self.fp_seconds = 0.0

    def observe_state(self, sched) -> None:
        start = perf_counter()
        super().observe_state(sched)
        self.fp_seconds += perf_counter() - start

    def reset(self) -> None:
        super().reset()
        self.fp_seconds = 0.0


def run_one_timed(
    build_and_run: BuildAndRun,
    prefix: Sequence[int],
    check: Checker,
    prune: bool,
    telemetry,
) -> RunRecord:
    """Execute one schedule with phase-attributed wall-clock accounting.

    Shared by the serial engine and the parallel frontier's in-process
    path so both attribute identically: ``step`` (scheduler stepping,
    fingerprint time subtracted), ``fingerprint``, ``check`` (oracle
    battery), ``record`` (RunRecord reduction).
    """
    policy = TimedRecordingPolicy(prefix) if prune else ScriptedPolicy(prefix)
    start = perf_counter()
    run = build_and_run(policy)
    ran = perf_counter()
    messages = check(run)
    checked = perf_counter()
    record = RunRecord.from_run(prefix, policy, messages)
    reduced = perf_counter()
    fp_seconds = getattr(policy, "fp_seconds", 0.0)
    telemetry.add("step", max(0.0, (ran - start) - fp_seconds))
    telemetry.add("fingerprint", fp_seconds)
    telemetry.add("check", checked - ran)
    telemetry.add("record", reduced - checked)
    return record


@dataclass(frozen=True)
class RunRecord:
    """Everything the frontier logic needs from one executed schedule —
    a picklable reduction of the run, so parallel workers can ship it back
    to the master without shipping the trace."""

    prefix: Tuple[int, ...]
    taken: Tuple[int, ...]
    branch_log: Tuple[int, ...]
    fingerprints: Tuple[int, ...]
    ready_pids: Tuple[Tuple[int, ...], ...]
    messages: Tuple[str, ...]

    @classmethod
    def from_run(
        cls,
        prefix: Sequence[int],
        policy: ScriptedPolicy,
        messages: Sequence[str],
    ) -> "RunRecord":
        return cls(
            prefix=tuple(prefix),
            taken=tuple(policy.taken),
            branch_log=tuple(policy.branch_log),
            fingerprints=tuple(getattr(policy, "fingerprints", ())),
            ready_pids=tuple(getattr(policy, "ready_pids", ())),
            messages=tuple(messages),
        )


@dataclass
class ExplorationResult:
    """Outcome of a schedule-space search.

    Attributes:
        runs: number of schedules executed.
        violations: list of (decision string, violation messages).
        exhausted: True when the whole (depth-bounded) space was covered —
            i.e. the frontier drained, even if that happened exactly at the
            run budget.
        pruned: work items skipped because their (state, choice) subtree
            was already claimed (0 when pruning is off).
        states: distinct (state, choice) subtrees claimed during the search
            (0 when pruning is off).
        witness: decisions of the first violating schedule, if any.
    """

    runs: int = 0
    violations: List[Tuple[Tuple[int, ...], List[str]]] = field(
        default_factory=list
    )
    exhausted: bool = True
    pruned: int = 0
    states: int = 0

    @property
    def witness(self) -> Optional[Tuple[int, ...]]:
        if self.violations:
            return self.violations[0][0]
        return None

    @property
    def ok(self) -> bool:
        """True when no schedule violated the property."""
        return not self.violations


def expand_record(
    record: RunRecord,
    max_depth: int,
    seen: Optional[Set[PruneKey]],
) -> Tuple[List[Tuple[int, ...]], int]:
    """First-deviation children of one executed schedule.

    With ``seen`` (pruning on), sibling items whose ``(fingerprint, pid)``
    subtree is already claimed are dropped, the default continuation's key
    is claimed at every depth, and expansion stops early when the default
    continuation re-enters a subtree some earlier item owns — everything
    deeper is a reordering of schedules explored from that item.  Returns
    ``(children, pruned_count)``.  Mutates ``seen``.
    """
    children: List[Tuple[int, ...]] = []
    pruned = 0
    horizon = min(len(record.branch_log), max_depth)
    for position in range(len(record.prefix), horizon):
        alternatives = record.branch_log[position]
        base = record.taken[:position]
        for choice in range(1, alternatives):
            if seen is not None:
                key = (
                    record.fingerprints[position],
                    record.ready_pids[position][choice],
                )
                if key in seen:
                    pruned += 1
                    continue
                seen.add(key)
            children.append(base + (choice,))
        if seen is not None:
            default_key = (
                record.fingerprints[position],
                record.ready_pids[position][record.taken[position]],
            )
            if default_key in seen:
                # The run's own continuation from here on retraces a subtree
                # an earlier item claimed; deeper deviations live inside it.
                pruned += 1
                break
            seen.add(default_key)
    return children, pruned


class ExplorationEngine:
    """Depth-first pruned search over the schedule space of one system.

    Args:
        build_and_run: builds a *fresh* system with the given policy and
            runs it to completion, returning the :class:`RunResult`.  It
            must not share mutable state across calls.
        max_runs: schedule budget.
        max_depth: decisions beyond this depth are not branched on
            (the default choice is taken), bounding the tree width.
        prune: enable canonical-fingerprint equivalence pruning.  Requires
            the system's shared *user* state (if any) to be registered via
            :meth:`Scheduler.add_fingerprint_provider`; mechanism state is
            always captured.  Off by default for drop-in compatibility with
            the naive DFS.
        telemetry: optional :class:`~repro.obs.harness.HarnessTelemetry`
            receiving phase-attributed wall-clock accounting and progress
            counters.  Duck-typed (the explore package never imports obs):
            a sink whose class sets ``IS_NULL = True`` is normalized to
            ``None`` here, so an unobserved search executes the identical
            code path and pays only one ``is not None`` test per run.
            Telemetry is passive — results are byte-identical with or
            without it.
    """

    def __init__(
        self,
        build_and_run: BuildAndRun,
        max_runs: int = 2000,
        max_depth: int = 60,
        prune: bool = False,
        telemetry=None,
    ) -> None:
        self._build_and_run = build_and_run
        self.max_runs = max_runs
        self.max_depth = max_depth
        self.prune = prune
        if telemetry is not None and getattr(telemetry, "IS_NULL", False):
            telemetry = None
        self.telemetry = telemetry

    def run_one(self, prefix: Sequence[int], check: Checker) -> RunRecord:
        """Execute a single schedule and reduce it to a :class:`RunRecord`."""
        policy = RecordingPolicy(prefix) if self.prune else ScriptedPolicy(prefix)
        run = self._build_and_run(policy)
        return RunRecord.from_run(prefix, policy, check(run))

    def explore(
        self,
        check: Checker,
        stop_at_first: bool = False,
        warm: Optional[Set[PruneKey]] = None,
    ) -> ExplorationResult:
        """Search for schedules where ``check`` reports violations.

        Args:
            check: maps a run result to violation messages (empty = ok).
            stop_at_first: return as soon as one violating schedule is
                found (used when hunting for a witness, e.g. experiment E5).
            warm: prune keys claimed by previous searches of the *same*
                system (see :class:`repro.obs.runstore.FingerprintCache`);
                mutated in place — after the search it holds the union of
                old and new claims, ready to persist.  Only meaningful
                with ``prune=True``.  ``result.states`` counts only keys
                claimed by *this* search.
        """
        result = ExplorationResult()
        frontier: List[Tuple[int, ...]] = [()]
        seen: Optional[Set[PruneKey]]
        if self.prune:
            seen = warm if warm is not None else set()
        else:
            seen = None
        preloaded = len(seen) if seen is not None else 0
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.begin(max_runs=self.max_runs, workers=1)
        while frontier:
            if result.runs >= self.max_runs:
                result.exhausted = False
                break
            prefix = frontier.pop()
            if telemetry is None:
                record = self.run_one(prefix, check)
            else:
                record = run_one_timed(self._build_and_run, prefix, check,
                                       self.prune, telemetry)
            result.runs += 1
            if record.messages:
                result.violations.append((record.taken, list(record.messages)))
                if stop_at_first:
                    result.exhausted = not frontier
                    break
            mark = perf_counter() if telemetry is not None else 0.0
            children, pruned = expand_record(record, self.max_depth, seen)
            result.pruned += pruned
            frontier.extend(children)
            if telemetry is not None:
                telemetry.note_progress(result.runs, len(frontier),
                                        result.pruned)
                telemetry.add("collect", perf_counter() - mark)
        result.states = len(seen) - preloaded if seen is not None else 0
        if telemetry is not None:
            telemetry.finish()
        return result

    def find_schedule(self, predicate: Checker) -> Optional[Tuple[int, ...]]:
        """Return the decision string of the first schedule satisfying
        ``predicate`` (non-empty result = found), or ``None``."""
        found = self.explore(predicate, stop_at_first=True)
        return found.witness
