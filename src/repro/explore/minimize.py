"""Schedule minimization: shrink a violating decision string to a locally
minimal witness, then replay it through the observability layer.

A witness found by exploration is as long as the search happened to make
it; most of its decisions are incidental.  The shrinker here is delta
debugging (ddmin) adapted to decision strings:

* **trailing-default trim** — decisions past the last non-zero entry are
  exactly what :class:`~repro.runtime.policies.ScriptedPolicy` does on an
  exhausted script, so they are dropped for free, no re-run needed;
* **chunk deletion** — remove spans of decisions at halving granularity
  (deleting mid-string *shifts* later decisions to earlier steps; that is
  fine, because any shorter string that still reproduces is a valid
  witness — decision strings need not be aligned to be meaningful);
* **pointwise decrement** — lower each surviving decision toward the
  default choice 0, one unit at a time.

The passes repeat to a fixpoint, after which the witness is **locally
minimal**: deleting any single decision or decrementing any single
position no longer reproduces the violation.  (Global minimality would
require search; local minimality is the standard ddmin guarantee and is
what debugging needs — every remaining decision is load-bearing.)

The minimized witness is replayed once more and folded into per-process
spans (:func:`repro.obs.fold_spans`) with an ASCII timeline, so the
shortest reproduction arrives ready to read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..runtime.policies import ScriptedPolicy
from ..runtime.trace import RunResult

BuildAndRun = Callable[[ScriptedPolicy], RunResult]
Checker = Callable[[RunResult], List[str]]


@dataclass(frozen=True)
class MinimizedWitness:
    """A shrunk reproduction of a violation.

    Attributes:
        original: the decision string the shrinker started from.
        minimized: the locally minimal decision string.
        messages: violation messages of the minimized run.
        tests: schedules executed while shrinking.
        locally_minimal: False only when ``max_tests`` ran out before the
            fixpoint was reached (the witness still reproduces).
        timeline: ASCII span timeline of the minimized run.
        causal: a happens-before causal explanation of the violating run —
            the tail of its critical path (who ran, who waited on what,
            attributed to constraint kind), one line per segment.
    """

    original: Tuple[int, ...]
    minimized: Tuple[int, ...]
    messages: Tuple[str, ...]
    tests: int
    locally_minimal: bool
    timeline: str
    causal: Tuple[str, ...] = ()

    @property
    def reduction(self) -> int:
        """Decisions removed relative to the original witness."""
        return len(self.original) - len(self.minimized)


def _strip(decisions: List[int]) -> List[int]:
    """Drop trailing default choices — semantically a no-op."""
    end = len(decisions)
    while end and decisions[end - 1] == 0:
        end -= 1
    return decisions[:end]


def minimize_witness(
    build_and_run: BuildAndRun,
    check: Checker,
    witness: Sequence[int],
    max_tests: int = 2000,
    timeline_width: int = 72,
) -> MinimizedWitness:
    """Shrink ``witness`` to a locally minimal decision string.

    Args:
        build_and_run: fresh-system runner, as for the engine.
        check: the property the witness violates (non-empty = violation).
        witness: a decision string known to reproduce the violation.
        max_tests: budget of candidate schedules to execute.
        timeline_width: width of the replay timeline.

    Raises:
        ValueError: the given witness does not reproduce any violation.
    """
    original = tuple(witness)

    tests = 0

    def reproduces(candidate: List[int]) -> bool:
        nonlocal tests
        tests += 1
        return bool(check(build_and_run(ScriptedPolicy(candidate))))

    if not reproduces(list(original)):
        raise ValueError(
            "witness {!r} does not reproduce a violation".format(original)
        )

    current = _strip(list(original))
    converged = False
    while not converged and tests < max_tests:
        converged = True
        # Chunk deletion, halving granularity down to single decisions.
        size = max(len(current) // 2, 1)
        while size >= 1 and tests < max_tests:
            start = 0
            while start < len(current) and tests < max_tests:
                candidate = _strip(current[:start] + current[start + size:])
                if len(candidate) < len(current) and reproduces(candidate):
                    current = candidate
                    converged = False
                else:
                    start += size
            size //= 2
        # Pointwise decrement toward the default choice.
        for index in range(len(current)):
            if index >= len(current):  # a decrement pass shrank the string
                break
            while current[index] > 0 and tests < max_tests:
                candidate = _strip(
                    current[:index] + [current[index] - 1]
                    + current[index + 1:]
                )
                if reproduces(candidate):
                    current = candidate
                    converged = False
                    if index >= len(current):
                        break
                else:
                    break

    # One final replay for the report: messages + span timeline + causal
    # chain.  The obs import is deferred: repro.obs pulls in the problem
    # catalog, which imports repro.verify, which shims through this
    # package — importing it at module scope would close that cycle.
    from ..obs import ascii_timeline, causal_chain, compute_critical_path, \
        fold_spans

    final = build_and_run(ScriptedPolicy(current))
    messages = tuple(check(final))
    spans = fold_spans(final.trace)
    return MinimizedWitness(
        original=original,
        minimized=tuple(current),
        messages=messages,
        tests=tests,
        locally_minimal=converged,
        timeline=ascii_timeline(spans, width=timeline_width),
        causal=tuple(causal_chain(compute_critical_path(final.trace))),
    )


def minimize_result(
    build_and_run: BuildAndRun,
    check: Checker,
    result,
    max_tests: int = 2000,
) -> Optional[MinimizedWitness]:
    """Convenience: shrink an :class:`ExplorationResult`'s witness, or
    return ``None`` when the search found nothing."""
    if result.witness is None:
        return None
    return minimize_witness(build_and_run, check, result.witness,
                            max_tests=max_tests)
