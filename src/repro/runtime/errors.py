"""Exception hierarchy for the deterministic concurrency runtime.

Every error raised by :mod:`repro.runtime` derives from :class:`RuntimeBaseError`
so callers can catch runtime failures without masking ordinary Python bugs.
"""

from __future__ import annotations


class RuntimeBaseError(Exception):
    """Base class for all runtime errors."""


class DeadlockError(RuntimeBaseError):
    """Raised when no process is runnable, no timer is pending, and at least
    one process is still blocked.

    The blocked processes and what each is blocked on are carried so
    experiment E7 (nested monitor calls) can report the deadlock cycle.
    """

    def __init__(self, blocked):
        self.blocked = list(blocked)
        detail = ", ".join(
            "{} on {}".format(p.name, p.blocked_on) for p in self.blocked
        )
        super().__init__("deadlock: {}".format(detail))


class StepLimitExceeded(RuntimeBaseError):
    """Raised when a run exceeds its step budget (livelock guard)."""


class ProcessFailed(RuntimeBaseError):
    """Raised by :meth:`Scheduler.run` when a process body raised an exception.

    The original exception is available as ``__cause__`` and via
    :attr:`process`.
    """

    def __init__(self, process, cause):
        self.process = process
        super().__init__(
            "process {!r} failed: {!r}".format(process.name, cause)
        )


class SchedulerStateError(RuntimeBaseError):
    """Raised on misuse of the scheduler API (e.g. blocking a process that is
    not the current one, or spawning after the run completed)."""


class IllegalOperationError(RuntimeBaseError):
    """Raised by synchronization mechanisms on protocol violations, such as
    releasing a mutex the caller does not hold or signalling outside a
    monitor."""
