"""Exception hierarchy for the deterministic concurrency runtime.

Every error raised by :mod:`repro.runtime` derives from :class:`RuntimeBaseError`
so callers can catch runtime failures without masking ordinary Python bugs.
"""

from __future__ import annotations


class RuntimeBaseError(Exception):
    """Base class for all runtime errors."""


class DeadlockError(RuntimeBaseError):
    """Raised when no process is runnable, no timer is pending, and at least
    one process is still blocked.

    The blocked processes and what each is blocked on are carried so
    experiment E7 (nested monitor calls) can report the deadlock cycle.
    When the scheduler can reconstruct the wait-for relation, :attr:`graph`
    holds a :class:`repro.runtime.faults.WaitForGraph`: who holds what, who
    waits on what, and any cycle rendered as
    ``P1 -> mutex m -> P2 -> condition c -> P1``.  Dead (killed or failed)
    processes that still hold resources are named explicitly, which is what
    makes injected-crash deadlocks diagnosable.
    """

    def __init__(self, blocked, graph=None):
        self.blocked = list(blocked)
        self.graph = graph
        detail = ", ".join(
            "{} on {}".format(p.name, p.blocked_on) for p in self.blocked
        )
        message = "deadlock: {}".format(detail)
        if graph is not None:
            rendered = graph.render()
            if rendered:
                message += "\n" + rendered
        super().__init__(message)


class StepLimitExceeded(RuntimeBaseError):
    """Raised when a run exceeds its step budget (livelock guard).

    Carries the tail of the event trace (:attr:`recent_events`) and a
    snapshot of the ready queue (:attr:`ready`) so livelock failures are
    diagnosable from the exception alone — mirroring the wait-for graph
    carried by :class:`DeadlockError`.
    """

    def __init__(self, message, recent_events=None, ready=None):
        self.recent_events = list(recent_events or [])
        self.ready = list(ready or [])
        if self.ready:
            message += "\nready queue: {}".format(", ".join(self.ready))
        if self.recent_events:
            message += "\nlast {} events:\n{}".format(
                len(self.recent_events),
                "\n".join("  " + str(ev) for ev in self.recent_events),
            )
        super().__init__(message)


class ProcessFailed(RuntimeBaseError):
    """Raised by :meth:`Scheduler.run` when a process body raised an exception.

    The original exception is available as ``__cause__`` and via
    :attr:`process`.
    """

    def __init__(self, process, cause):
        self.process = process
        super().__init__(
            "process {!r} failed: {!r}".format(process.name, cause)
        )


class SchedulerStateError(RuntimeBaseError):
    """Raised on misuse of the scheduler API (e.g. blocking a process that is
    not the current one, or spawning after the run completed)."""


class IllegalOperationError(RuntimeBaseError):
    """Raised by synchronization mechanisms on protocol violations, such as
    releasing a mutex the caller does not hold or signalling outside a
    monitor."""


class WaitTimeout(RuntimeBaseError):
    """Raised *inside a process* when a timed blocking call expires.

    Every timed variant (``Semaphore.p(timeout=...)``, ``Mutex.acquire``,
    ``Condition.wait``, ``Serializer.enqueue``, channel ``send``/``receive``,
    ``select``) raises this after ``timeout`` units of *virtual* time without
    a wakeup.  The mechanism removes the caller from its wait queue before
    the exception is delivered, so a later signal can never target a process
    that already gave up.
    """

    def __init__(self, what, timeout):
        self.what = what
        self.timeout = timeout
        super().__init__(
            "timed out after {} ticks waiting on {}".format(timeout, what)
        )


class ProcessKilled(RuntimeBaseError):
    """Injected into a process terminated by a :class:`~repro.runtime.faults.
    FaultPlan` (or an explicit :meth:`Scheduler.kill`).

    Recorded as the dead process's :attr:`SimProcess.exception`; the process
    body itself never observes it (the generator is closed, so ``finally``
    blocks run but cannot block).
    """

    def __init__(self, pname, why=""):
        self.pname = pname
        self.why = why
        detail = " ({})".format(why) if why else ""
        super().__init__("process {} killed by fault injection{}".format(
            pname, detail
        ))


class PeerFailed(RuntimeBaseError):
    """Raised by a channel operation when a communication peer died.

    A channel remembers every process that has used it; when one of them is
    killed the channel *breaks*: every parked offer is woken with this
    exception and later operations fail immediately.  This is the defined
    crash semantics of message passing — failure propagates to the partner
    instead of leaving it parked forever (cf. Erlang link semantics).
    """

    def __init__(self, channel, peer):
        self.channel = channel
        self.peer = peer
        super().__init__(
            "peer {} of channel {} died".format(peer, channel)
        )
