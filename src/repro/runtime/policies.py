"""Scheduling policies.

A policy answers one question: *given the runnable processes, which runs
next?*  All nondeterminism in a run flows through this single choice point,
which is what lets the schedule explorer (:mod:`repro.verify.explorer`)
enumerate interleavings and lets experiments script the exact schedules the
paper describes (e.g. the footnote-3 anomaly, experiment E5).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from .process import SimProcess


class SchedulingPolicy:
    """Interface: choose the index of the next process to run."""

    def choose(self, ready: Sequence[SimProcess]) -> int:
        """Return an index into ``ready`` (never empty)."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget any internal state before a fresh run (optional)."""


class FIFOPolicy(SchedulingPolicy):
    """Round-robin: always run the process that has been ready longest.

    This is the default; combined with FIFO wait queues in every primitive it
    yields fully deterministic runs.
    """

    def choose(self, ready: Sequence[SimProcess]) -> int:
        return 0


class RandomPolicy(SchedulingPolicy):
    """Seeded uniform choice — deterministic for a fixed seed, but explores
    many interleavings across seeds.  Used by the property-based tests."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, ready: Sequence[SimProcess]) -> int:
        return self._rng.randrange(len(ready))

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class ScriptedPolicy(SchedulingPolicy):
    """Replay a fixed decision sequence; record branching for the explorer.

    Each decision is an index into the ready list at that step.  Once the
    script is exhausted the policy defaults to index 0 (FIFO), while
    :attr:`branch_log` records how many alternatives existed at every step so
    a depth-first explorer can backtrack and enumerate siblings.

    Decisions are clamped to the number of ready processes, so a stale script
    never raises.
    """

    def __init__(self, decisions: Optional[Sequence[int]] = None) -> None:
        self.decisions: List[int] = list(decisions or [])
        self.branch_log: List[int] = []
        self.taken: List[int] = []
        self._cursor = 0

    def choose(self, ready: Sequence[SimProcess]) -> int:
        n = len(ready)
        if self._cursor < len(self.decisions):
            pick = min(self.decisions[self._cursor], n - 1)
        else:
            pick = 0
        self._cursor += 1
        self.branch_log.append(n)
        self.taken.append(pick)
        return pick

    def reset(self) -> None:
        self.branch_log = []
        self.taken = []
        self._cursor = 0


class NamedOrderPolicy(SchedulingPolicy):
    """Run processes following a scripted sequence of *names*.

    Each entry in ``order`` names the process that should run for the next
    step.  When the named process is not ready (blocked or finished) the
    entry is skipped; when the script runs out, falls back to FIFO.  This is
    the most readable way to pin down the paper's described interleavings::

        policy = NamedOrderPolicy(["W1", "W1", "R1", "W2", ...])
    """

    def __init__(self, order: Sequence[str]) -> None:
        self.order: List[str] = list(order)
        self._cursor = 0

    def choose(self, ready: Sequence[SimProcess]) -> int:
        while self._cursor < len(self.order):
            wanted = self.order[self._cursor]
            for index, proc in enumerate(ready):
                if proc.name == wanted:
                    self._cursor += 1
                    return index
            # Named process not ready: drop the entry and try the next one.
            self._cursor += 1
        return 0

    def reset(self) -> None:
        self._cursor = 0


class PriorityPolicy(SchedulingPolicy):
    """Pick the ready process with the highest static priority.

    Priorities are assigned per process name; unnamed processes default to
    priority 0.  Ties break in FIFO order.
    """

    def __init__(self, priorities: Optional[dict] = None, default: int = 0) -> None:
        self.priorities = dict(priorities or {})
        self.default = default

    def choose(self, ready: Sequence[SimProcess]) -> int:
        best_index = 0
        best_prio = self.priorities.get(ready[0].name, self.default)
        for index in range(1, len(ready)):
            prio = self.priorities.get(ready[index].name, self.default)
            if prio > best_prio:
                best_index, best_prio = index, prio
        return best_index
