"""Execution traces.

Every observable action taken by a process — acquiring a semaphore, entering a
monitor, starting a resource operation — is recorded as an :class:`Event` in a
:class:`Trace`.  Traces are the ground truth that the correctness oracles in
:mod:`repro.verify` consume: properties such as mutual exclusion, reader
priority, or FCFS ordering are all predicates over traces.

Event kinds are free-form strings; the conventional vocabulary used throughout
the library is:

========================  =====================================================
kind                      meaning
========================  =====================================================
``spawn`` / ``exit``      process lifecycle
``request``               a process asked to run a resource operation
``op_start``/``op_end``   a resource operation began / completed executing
``acquire``/``release``   low-level lock or semaphore transfer
``blocked``/``unblocked`` a process parked / was resumed
``enter``/``leave``       monitor or serializer possession transfer
``wait``/``signal``       condition-variable traffic
``custom``                anything problem-specific (payload in ``detail``)
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional


@dataclass(frozen=True)
class Event:
    """One observable step in an execution.

    Attributes:
        seq: global sequence number; totally orders all events in a run.
        time: virtual-clock reading when the event occurred.
        pid: id of the acting process (-1 for scheduler-originated events).
        pname: human-readable process name.
        kind: event vocabulary word (see module docstring).
        obj: name of the object acted upon (lock, monitor, operation, ...).
        detail: free-form payload (parameters, queue lengths, ...).
    """

    seq: int
    time: int
    pid: int
    pname: str
    kind: str
    obj: str = ""
    detail: Any = None

    def __str__(self) -> str:
        base = "[{:>4} t={:>4}] {:<14} {:<10} {}".format(
            self.seq, self.time, self.pname, self.kind, self.obj
        )
        if self.detail is not None:
            base += " {!r}".format(self.detail)
        return base

    def to_dict(self) -> dict:
        """The event as a plain dictionary (exporter/round-trip shape)."""
        return {
            "seq": self.seq,
            "time": self.time,
            "pid": self.pid,
            "pname": self.pname,
            "kind": self.kind,
            "obj": self.obj,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Event":
        """Rebuild an event from :meth:`to_dict` output (JSONL re-import)."""
        return cls(
            seq=data["seq"],
            time=data["time"],
            pid=data["pid"],
            pname=data["pname"],
            kind=data["kind"],
            obj=data.get("obj", ""),
            detail=data.get("detail"),
        )


class TraceView:
    """A lazy view over a filtered trace.

    Iterating the view scans the underlying event list once, yielding
    matches as it goes — oracle hot loops that only iterate (or stop early
    via ``next``/``first``) never build an intermediate list.  The list
    protocol (``len``, indexing, slicing, ``==``) still works: the first
    such call materializes the matches once and caches them, so existing
    callers that index into filter results are unaffected.
    """

    __slots__ = ("_source", "_match", "_cache")

    def __init__(self, source: List[Event],
                 match: Callable[[Event], bool]) -> None:
        self._source = source
        self._match = match
        self._cache: Optional[List[Event]] = None

    def __iter__(self) -> Iterator[Event]:
        if self._cache is not None:
            return iter(self._cache)
        return (ev for ev in self._source if self._match(ev))

    def _materialize(self) -> List[Event]:
        if self._cache is None:
            self._cache = [ev for ev in self._source if self._match(ev)]
        return self._cache

    def __len__(self) -> int:
        return len(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __bool__(self) -> bool:
        return next(iter(self), None) is not None

    def __eq__(self, other) -> bool:
        if isinstance(other, TraceView):
            other = other._materialize()
        if isinstance(other, list):
            return self._materialize() == other
        return NotImplemented

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    def __repr__(self) -> str:
        return "TraceView({!r})".format(self._materialize())


class Trace:
    """An append-only sequence of :class:`Event` objects with query helpers."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def append(self, event: Event) -> None:
        """Record one event (used by the scheduler; user code should go
        through :meth:`Scheduler.log`)."""
        self._events.append(event)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filter(
        self,
        kind: Optional[str] = None,
        obj: Optional[str] = None,
        pname: Optional[str] = None,
        pid: Optional[int] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
    ) -> TraceView:
        """A lazy :class:`TraceView` of events matching every criterion.

        ``kind`` may be a single vocabulary word or a ``|``-separated
        alternation, e.g. ``"op_start|op_end"``.  The view iterates without
        building a list; indexing/``len`` materialize (and cache) once.
        """
        kinds = set(kind.split("|")) if kind is not None else None

        def match(ev: Event) -> bool:
            if kinds is not None and ev.kind not in kinds:
                return False
            if obj is not None and ev.obj != obj:
                return False
            if pname is not None and ev.pname != pname:
                return False
            if pid is not None and ev.pid != pid:
                return False
            if predicate is not None and not predicate(ev):
                return False
            return True

        return TraceView(self._events, match)

    def kinds(self) -> List[str]:
        """The distinct event kinds present, in first-occurrence order."""
        seen = []
        for ev in self._events:
            if ev.kind not in seen:
                seen.append(ev.kind)
        return seen

    def first(self, **criteria) -> Optional[Event]:
        """First event matching :meth:`filter` criteria, or ``None``.
        Short-circuits: stops scanning at the first match."""
        return next(iter(self.filter(**criteria)), None)

    def last(self, **criteria) -> Optional[Event]:
        """Last event matching :meth:`filter` criteria, or ``None``."""
        found = None
        for ev in self.filter(**criteria):
            found = ev
        return found

    def projection(self, *kinds: str) -> List[Event]:
        """Events whose kind is one of ``kinds``, preserving order."""
        wanted = set(kinds)
        return [ev for ev in self._events if ev.kind in wanted]

    def per_process(self) -> "dict[str, List[Event]]":
        """Group events by process name, preserving per-process order."""
        grouped: dict = {}
        for ev in self._events:
            grouped.setdefault(ev.pname, []).append(ev)
        return grouped

    def render(self, limit: Optional[int] = None) -> str:
        """A human-readable dump of the trace (optionally truncated)."""
        events = self._events if limit is None else self._events[:limit]
        lines = [str(ev) for ev in events]
        if limit is not None and len(self._events) > limit:
            lines.append("... ({} more events)".format(len(self._events) - limit))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dicts(self) -> List[dict]:
        """The trace as plain dictionaries (for external analysis)."""
        return [ev.to_dict() for ev in self._events]

    def to_json(self, indent: Optional[int] = None) -> str:
        """JSON export; non-serializable details are stringified."""
        import json

        return json.dumps(self.to_dicts(), indent=indent, default=repr)


@dataclass
class RunResult:
    """Outcome of :meth:`Scheduler.run`.

    Attributes:
        trace: the complete event trace.
        deadlocked: ``True`` when the run ended with blocked processes and
            nothing runnable (only when ``on_deadlock='return'``).
        blocked: names of processes still blocked at the end of the run.
        steps: number of scheduling steps executed.
        time: final virtual-clock value.
        results: mapping of process name to the value its body returned.
        proc_steps: per-process step counts — the coordinate space a
            :class:`~repro.runtime.faults.FaultPlan` kills at, used by the
            chaos explorer to enumerate fault points.
        graph: the wait-for graph snapshot when the run ended deadlocked
            (``None`` otherwise).
        step_limited: ``True`` when the run was cut off by the step budget
            (only when ``on_steplimit='return'``).
        ready: names of still-runnable processes at the cutoff — non-empty
            means the system was making progress (livelock territory),
            empty means nothing was runnable (a wedge behind timers).
    """

    trace: Trace
    deadlocked: bool = False
    blocked: List[str] = field(default_factory=list)
    steps: int = 0
    time: int = 0
    results: dict = field(default_factory=dict)
    proc_steps: dict = field(default_factory=dict)
    graph: Optional[object] = None
    step_limited: bool = False
    ready: List[str] = field(default_factory=list)

    def failed(self) -> List[str]:
        """Names of processes that died (killed or raised), recovered from
        the trace — crash-semantics tests and the chaos oracles read this."""
        out: List[str] = []
        for ev in self.trace:
            if ev.kind in ("killed", "failed") and ev.obj not in out:
                out.append(ev.obj)
        return out
