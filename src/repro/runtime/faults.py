"""Fault injection and deadlock diagnosis (substrate S1's adversary).

The paper evaluates whether a mechanism keeps a resource's constraints
intact; this module lets the runtime *provoke* the adverse conditions the
evaluation cares about instead of waiting for scheduling to produce them:

* :class:`FaultPlan` — a declarative script of faults, wired into
  :meth:`Scheduler.run`:

  - ``kill(P, at_step=N)``     — kill process P before its Nth step;
  - ``kill(P, on_entry=obj)``  — kill P right after it enters object ``obj``
    (a mutex, monitor, serializer, channel, or resource operation), i.e.
    *inside* the construct;
  - ``kill(P, at_time=T)``     — kill P once virtual time reaches T, even if
    it is blocked;
  - ``delay_wakeups(P, ticks)`` — every wakeup of P is delivered ``ticks``
    units of virtual time late (models a slow or descheduled process);
  - ``drop_signal(obj, nth)``  — the nth ``V``/``signal`` on ``obj``
    vanishes (models a lost wakeup).

* :class:`WaitForGraph` — the diagnosis :class:`~repro.runtime.errors.
  DeadlockError` carries: who holds what, who waits on what, cycles rendered
  as ``P1 -> mutex m -> P2 -> condition c -> P1``, and every dead process
  with the resources it took to its grave.

* :func:`retrying` — deprecated shim for
  :func:`repro.recover.retry_with_backoff` (the bounded-retry helper now
  lives with the recovery subsystem's backoff policies).

Plans are deterministic and replayable: a (policy, plan) pair fully
determines a run, which is what lets :mod:`repro.verify.chaos` enumerate
schedules *and* fault points together.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

#: Event kinds that mean "the acting process just entered the named object".
#: ``kill(P, on_entry=obj)`` triggers on any of these; the kill lands before
#: P's next step, i.e. while it is inside the object.
ENTRY_KINDS = frozenset((
    "enter",        # monitor / serializer possession
    "acquire",      # mutex
    "sem_p",        # semaphore permit
    "op_start",     # path-controlled resource operation
    "join_crowd",   # serializer crowd
    "send",         # channel communication completed
    "recv",
))


@dataclass
class Fault:
    """One scripted fault.  Constructed via the :class:`FaultPlan` builder
    methods rather than directly."""

    action: str                       # "kill" | "delay" | "drop"
    process: Optional[str] = None     # target process name (kill / delay)
    at_step: Optional[int] = None     # kill before the target's Nth step
    on_entry: Optional[str] = None    # kill after entering this object
    at_time: Optional[int] = None     # kill once virtual time reaches this
    ticks: int = 0                    # delay amount (delay)
    obj: Optional[str] = None         # drop target object name (drop)
    nth: int = 1                      # drop the nth signal on obj (1-based)
    fired: bool = False

    def describe(self) -> str:
        if self.action == "kill":
            if self.at_step is not None:
                where = "at step {}".format(self.at_step)
            elif self.on_entry is not None:
                where = "on entry to {}".format(self.on_entry)
            else:
                where = "at time {}".format(self.at_time)
            return "kill {} {}".format(self.process, where)
        if self.action == "delay":
            return "delay wakeups of {} by {} ticks".format(
                self.process, self.ticks)
        return "drop signal #{} on {}".format(
            self.nth, "any object" if self.obj == "*" else self.obj)

    def to_dict(self) -> Dict[str, Any]:
        """Portable form (runtime state — ``fired`` — excluded)."""
        out: Dict[str, Any] = {"action": self.action}
        for key in ("process", "at_step", "on_entry", "at_time", "obj"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.action == "delay":
            out["ticks"] = self.ticks
        if self.action == "drop":
            out["nth"] = self.nth
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Fault":
        return cls(
            action=data["action"],
            process=data.get("process"),
            at_step=data.get("at_step"),
            on_entry=data.get("on_entry"),
            at_time=data.get("at_time"),
            ticks=int(data.get("ticks", 0)),
            obj=data.get("obj"),
            nth=int(data.get("nth", 1)),
        )


class FaultPlan:
    """A deterministic script of faults, consulted by the scheduler.

    Build with the chaining methods, pass to ``Scheduler(fault_plan=...)``
    or ``run_processes(..., fault_plan=...)``::

        plan = (FaultPlan()
                .kill("W1", on_entry="db.mon")
                .drop_signal("ok_to_read", nth=2))

    One plan instance may be reused across runs (the explorer does): the
    scheduler calls :meth:`begin` before each run to reset fired-flags and
    counters.
    """

    def __init__(self) -> None:
        self.faults: List[Fault] = []
        self._doomed: List[str] = []
        self._drop_counts: Dict[int, int] = {}  # fault index -> signals seen

    # ------------------------------------------------------------------
    # Builders
    # ------------------------------------------------------------------
    def kill(
        self,
        process: str,
        at_step: Optional[int] = None,
        on_entry: Optional[str] = None,
        at_time: Optional[int] = None,
    ) -> "FaultPlan":
        """Schedule the death of ``process`` (exactly one coordinate)."""
        coords = [at_step, on_entry, at_time]
        if sum(c is not None for c in coords) != 1:
            raise ValueError(
                "kill() needs exactly one of at_step / on_entry / at_time"
            )
        self.faults.append(Fault(
            "kill", process=process,
            at_step=at_step, on_entry=on_entry, at_time=at_time,
        ))
        return self

    def delay_wakeups(self, process: str, ticks: int) -> "FaultPlan":
        """Deliver every wakeup of ``process`` ``ticks`` late.

        ``process="*"`` delays every process — a uniform synthetic slowdown
        (what ``repro regress --inject-delay`` uses to prove the gate
        trips)."""
        if ticks <= 0:
            raise ValueError("delay must be positive")
        self.faults.append(Fault("delay", process=process, ticks=ticks))
        return self

    def drop_signal(self, obj: str, nth: int = 1) -> "FaultPlan":
        """Make the ``nth`` V/signal on object ``obj`` vanish (1-based).

        ``obj="*"`` counts every V/signal regardless of object — the nth
        wakeup *anywhere* vanishes.  Each fault keeps its own counter, so
        a wildcard and an exact entry never interfere."""
        if nth < 1:
            raise ValueError("nth is 1-based")
        self.faults.append(Fault("drop", obj=obj, nth=nth))
        return self

    # ------------------------------------------------------------------
    # Runtime hooks (called by the scheduler)
    # ------------------------------------------------------------------
    def begin(self) -> None:
        """Reset per-run state so the plan can be replayed."""
        for f in self.faults:
            f.fired = False
        self._doomed = []
        self._drop_counts = {}

    def kill_due(self, pname: str, steps: int, now: int) -> Optional[Fault]:
        """The first unfired kill fault due for ``pname`` about to run its
        next step (``steps`` completed so far) at virtual time ``now``."""
        for f in self.faults:
            if f.action != "kill" or f.fired or f.process != pname:
                continue
            if f.at_step is not None and steps >= f.at_step:
                f.fired = True
                return f
            if f.at_time is not None and now >= f.at_time:
                f.fired = True
                return f
        return None

    def time_kills_due(self, now: int) -> List[Fault]:
        """Unfired ``at_time`` kills due at ``now`` — checked every loop
        iteration so even a *blocked* process can die on schedule."""
        due = []
        for f in self.faults:
            if (f.action == "kill" and not f.fired
                    and f.at_time is not None and now >= f.at_time):
                f.fired = True
                due.append(f)
        return due

    def observe(self, pname: str, kind: str, obj: str) -> None:
        """Watch the event stream for ``on_entry`` triggers."""
        if kind not in ENTRY_KINDS:
            return
        for f in self.faults:
            if (f.action == "kill" and not f.fired
                    and f.on_entry is not None
                    and f.process == pname and f.on_entry == obj):
                f.fired = True
                self._doomed.append(pname)

    def take_doomed(self) -> List[str]:
        """Processes marked for death by ``on_entry`` triggers (drained)."""
        doomed, self._doomed = self._doomed, []
        return doomed

    def wake_delay(self, pname: str) -> int:
        """Extra ticks to delay a wakeup of ``pname`` (0 = deliver now)."""
        total = 0
        for f in self.faults:
            if f.action == "delay" and f.process in (pname, "*"):
                total += f.ticks
        return total

    def should_drop(self, obj: str) -> bool:
        """Consulted by V/signal sites: True when this signal must vanish.

        Counters are per-fault (keyed by the fault's position in the
        plan): every drop entry matching ``obj`` — exactly or via the
        ``"*"`` wildcard — advances its own count, and the signal vanishes
        if any unfired entry just reached its ``nth``."""
        drop = False
        for idx, f in enumerate(self.faults):
            if f.action != "drop" or f.obj not in (obj, "*"):
                continue
            count = self._drop_counts.get(idx, 0) + 1
            self._drop_counts[idx] = count
            if not f.fired and f.nth == count:
                f.fired = True
                drop = True
        return drop

    def describe(self) -> List[str]:
        """Human-readable rendering of every scripted fault."""
        return [f.describe() for f in self.faults]

    # ------------------------------------------------------------------
    # Serialization (run store / witness persistence)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-portable form of the *script* (no runtime state): a plan
        round-trips through ``FaultPlan.from_dict(plan.to_dict())`` into an
        exactly-replayable equal script."""
        return {"faults": [f.to_dict() for f in self.faults]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        plan = cls()
        plan.faults = [Fault.from_dict(f) for f in data.get("faults", [])]
        return plan

    def __repr__(self) -> str:
        return "<FaultPlan [{}]>".format("; ".join(self.describe()))


# ----------------------------------------------------------------------
# Wait-for graph
# ----------------------------------------------------------------------
@dataclass
class WaitForGraph:
    """The wait-for relation at the moment a run wedged.

    Attributes:
        waits: ``process name -> resource label`` it is parked on.
        holds: ``resource label -> holder names`` (insertion order; a label
            like ``"mutex m"`` or ``"monitor db.mon"``).
        dead: ``process name -> resource labels it still held when it died``
            (empty list when it held nothing).
    """

    waits: Dict[str, str] = field(default_factory=dict)
    holds: Dict[str, List[str]] = field(default_factory=dict)
    dead: Dict[str, List[str]] = field(default_factory=dict)

    @classmethod
    def snapshot(cls, processes, holds) -> "WaitForGraph":
        """Build from live scheduler state: ``processes`` are
        :class:`SimProcess` instances, ``holds`` maps resource label to a
        list of holder processes."""
        graph = cls()
        for p in processes:
            if p.state.value == "blocked" and p.wait_obj:
                graph.waits[p.name] = p.wait_obj
        for label, holders in holds.items():
            names = [h.name for h in holders]
            if names:
                graph.holds[label] = names
        for p in processes:
            if p.state.value == "failed":
                graph.dead[p.name] = [
                    label for label, holders in holds.items()
                    if any(h is p for h in holders)
                ]
        return graph

    # ------------------------------------------------------------------
    def edges_from(self, pname: str) -> List[Tuple[str, str]]:
        """``(resource, holder)`` pairs one hop from ``pname``."""
        resource = self.waits.get(pname)
        if resource is None:
            return []
        return [(resource, h) for h in self.holds.get(resource, [])]

    def cycles(self) -> List[List[str]]:
        """Every distinct wait-for cycle, as alternating
        ``[proc, resource, proc, resource, ...]`` node lists (first process
        repeated implicitly)."""
        found: List[List[str]] = []
        seen_keys = set()
        for start in self.waits:
            path: List[str] = []
            node = start
            visited = {}
            while node is not None and node not in visited:
                visited[node] = len(path)
                resource = self.waits.get(node)
                if resource is None:
                    break
                path.extend([node, resource])
                holders = self.holds.get(resource, [])
                node = holders[0] if holders else None
            else:
                if node is not None:  # cycle closes at `node`
                    cycle = path[visited[node]:]
                    key = frozenset(cycle)
                    if key not in seen_keys:
                        seen_keys.add(key)
                        found.append(cycle)
        return found

    def _decorate(self, pname: str) -> str:
        return pname + "[dead]" if pname in self.dead else pname

    def render(self) -> str:
        """Multi-line diagnosis: per-process wait chains, cycles, and the
        dead with what they still hold."""
        lines: List[str] = []
        for pname in sorted(self.waits):
            resource = self.waits[pname]
            holders = self.holds.get(resource, [])
            chain = "{} -> {}".format(self._decorate(pname), resource)
            if holders:
                chain += " -> " + ", ".join(
                    self._decorate(h) for h in holders
                )
            lines.append("  waits: " + chain)
        for cycle in self.cycles():
            rendered = " -> ".join(
                self._decorate(n) if i % 2 == 0 else n
                for i, n in enumerate(cycle)
            )
            lines.append("  cycle: {} -> {}".format(
                rendered, self._decorate(cycle[0])
            ))
        for pname in sorted(self.dead):
            held = self.dead[pname]
            lines.append("  dead:  {} (held: {})".format(
                pname, ", ".join(held) if held else "nothing"
            ))
        if not lines:
            return ""
        return "wait-for graph:\n" + "\n".join(lines)


# ----------------------------------------------------------------------
# Bounded retry (deprecated shim)
# ----------------------------------------------------------------------
def retrying(
    attempt: Callable[[int], Generator],
    attempts: int = 3,
    backoff: Optional[Callable[[int], int]] = None,
    sched=None,
) -> Generator:
    """Deprecated alias of :func:`repro.recover.retry_with_backoff`.

    The retry helper moved into the recovery subsystem, which unifies it
    with the deterministic :class:`~repro.recover.backoff.BackoffPolicy`
    family the supervisor uses.  This shim keeps the old signature working
    (``backoff`` may be a plain ``i -> ticks`` callable) and forwards.
    """
    import warnings

    warnings.warn(
        "repro.runtime.retrying is deprecated; use "
        "repro.recover.retry_with_backoff",
        DeprecationWarning,
        stacklevel=2,
    )
    from ..recover.backoff import retry_with_backoff

    result = yield from retry_with_backoff(
        attempt, attempts=attempts, backoff=backoff, sched=sched
    )
    return result


class _Failure:
    """Wake-value wrapper: ``park`` raises the wrapped exception instead of
    returning.  How :class:`WaitTimeout` and :class:`PeerFailed` are
    delivered to a parked process."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<_Failure {!r}>".format(self.exc)


def deliver(exc: BaseException) -> Any:
    """Public helper: build a wake value that makes ``park`` raise ``exc``.

    Mechanisms use this with :meth:`Scheduler.unpark` to propagate a failure
    into a parked process (e.g. a channel delivering :class:`PeerFailed`)."""
    return _Failure(exc)
