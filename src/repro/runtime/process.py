"""Simulated processes.

A *process* is a Python generator: every ``yield`` is a potential context
switch, and blocking primitives are generator functions that the process body
delegates to with ``yield from``.  This gives the scheduler complete control
over interleaving, which is what makes the reproduction's schedule scripting
and bounded model checking possible (DESIGN.md §6).

Typical process body::

    def reader(db, results):
        yield from db.start_read()
        results.append(db.resource.read())
        yield from db.end_read()
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional


class ProcessState(enum.Enum):
    """Lifecycle states of a :class:`SimProcess`."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class SimProcess:
    """A schedulable unit of execution.

    Instances are created by :meth:`Scheduler.spawn`; user code never
    constructs them directly.

    Attributes:
        pid: small integer id, unique within a scheduler.
        name: human-readable name used in traces and error messages.
        state: current :class:`ProcessState`.
        blocked_on: short description of what the process is parked on
            (``None`` while runnable).
        result: value returned by the generator body once ``DONE``.
        exception: exception raised by the body once ``FAILED``.
        arrival: sequence number of the spawn event — the canonical
            "request time" (information type T2) for FCFS analyses.
    """

    __slots__ = (
        "pid",
        "name",
        "state",
        "blocked_on",
        "wait_obj",
        "result",
        "exception",
        "arrival",
        "daemon",
        "steps",
        "park_seq",
        "cleanups",
        "_generator",
        "_wake_value",
    )

    def __init__(
        self,
        pid: int,
        name: str,
        generator: Generator,
        daemon: bool = False,
    ) -> None:
        self.pid = pid
        self.name = name
        self.state = ProcessState.NEW
        self.blocked_on: Optional[str] = None
        #: Wait-for-graph label of the resource this process is parked on
        #: (e.g. ``"mutex m"``); ``None`` while runnable.
        self.wait_obj: Optional[str] = None
        self.result: Any = None
        self.exception: Optional[BaseException] = None
        self.arrival: int = -1
        #: Daemon processes (e.g. forever-looping servers) do not keep the
        #: run alive: the scheduler stops once every non-daemon finishes.
        self.daemon = daemon
        #: Scheduler steps this process has executed — the coordinate a
        #: :class:`~repro.runtime.faults.FaultPlan` kills at.
        self.steps: int = 0
        #: Monotone stamp of the most recent transition to BLOCKED.  The
        #: *relative order* of these stamps across currently-blocked
        #: processes recovers every mechanism's FIFO wait-queue order, which
        #: is part of the canonical state fingerprint
        #: (:meth:`Scheduler.fingerprint`) the exploration engine prunes on.
        self.park_seq: int = -1
        #: Crash-cleanup stack: ``(key, fn)`` pairs registered by the
        #: mechanisms this process is currently inside.  Run LIFO by the
        #: scheduler when the process dies abnormally (killed or failed),
        #: never on normal exit.
        self.cleanups: list = []
        self._generator = generator
        self._wake_value: Any = None

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the body has not finished or failed."""
        return self.state not in (ProcessState.DONE, ProcessState.FAILED)

    @property
    def runnable(self) -> bool:
        """True when the scheduler may pick this process next."""
        return self.state in (ProcessState.NEW, ProcessState.READY)

    def step(self) -> bool:
        """Advance the body to its next yield point.

        Returns ``True`` when the body yielded (still alive) and ``False``
        when it returned.  Raises whatever the body raised.
        """
        wake = self._wake_value
        self._wake_value = None
        try:
            if self.state is ProcessState.NEW:
                next(self._generator)
            else:
                self._generator.send(wake)
        except StopIteration as stop:
            self.state = ProcessState.DONE
            self.result = stop.value
            return False
        return True

    def set_wake_value(self, value: Any) -> None:
        """Value delivered to the body at its next resumption (sent through
        the suspended ``yield``)."""
        self._wake_value = value

    def kill(self, exc: BaseException) -> None:
        """Mark the process failed with ``exc`` and close its generator."""
        self.fail(exc)
        self.close_body()

    def fail(self, exc: BaseException) -> None:
        """Mark the process failed with ``exc`` without touching the body.

        The scheduler uses the split form on injected kills: mark the process
        dead, run its registered cleanups, *then* close the generator — so a
        mechanism's cleanup sees a consistent FAILED state and any ``finally``
        blocks in the body find their resources already released.
        """
        self.state = ProcessState.FAILED
        self.exception = exc

    def close_body(self) -> None:
        """Close the generator, running the body's ``finally`` blocks.

        A closing body cannot block (a ``yield`` during close is a
        ``RuntimeError`` per the generator protocol); whatever it raises
        propagates to the caller, which records it in the trace.
        """
        self._generator.close()

    def __repr__(self) -> str:
        return "<SimProcess {} #{} {}>".format(self.name, self.pid, self.state.value)
