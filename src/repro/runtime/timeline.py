"""ASCII timeline rendering for traces.

Turns a trace's ``op_start``/``op_end`` pairs into a Gantt-style chart, one
row per process, one column per event-sequence slot — the quickest way to
*see* a schedule (reader bursts, writer exclusivity, the footnote-3
overtake).

Example output for the anomaly run::

    W1 |  WWWWWWWW................
    W2 |  ....------WWW...........
    R1 |  ......--------------RRR.

(``-`` = requested but waiting, letter = executing, ``.`` = elsewhere.)
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .trace import Trace


def render_timeline(
    trace: Trace,
    ops: Dict[str, str],
    width: Optional[int] = None,
    include: Optional[Iterable[str]] = None,
) -> str:
    """Render a Gantt chart of operation activity.

    Args:
        trace: the execution trace.
        ops: mapping of full operation object name to the single letter used
            while it executes, e.g. ``{"db.read": "R", "db.write": "W"}``.
        width: squeeze the chart to at most this many columns (sampling);
            default uses one column per event.
        include: restrict to these process names (default: every process
            that touches one of the ops).

    Returns a multi-line string, one row per process.
    """
    events = [ev for ev in trace if ev.obj in ops and ev.kind in
              ("request", "op_start", "op_end")]
    if not events:
        return "(no matching events)"
    horizon = max(ev.seq for ev in events) + 1
    # state per process: list of (seq, symbol) transitions
    transitions: Dict[str, List[Tuple[int, str]]] = {}
    for ev in events:
        symbol = None
        if ev.kind == "request":
            symbol = "-"
        elif ev.kind == "op_start":
            symbol = ops[ev.obj]
        else:
            symbol = "."
        transitions.setdefault(ev.pname, []).append((ev.seq, symbol))
    names = list(transitions)
    if include is not None:
        wanted = set(include)
        names = [n for n in names if n in wanted]
    rows = []
    label_width = max((len(n) for n in names), default=0)
    for name in names:
        cells = ["."] * horizon
        current = "."
        moves = dict(transitions[name])
        for seq in range(horizon):
            if seq in moves:
                current = moves[seq]
            cells[seq] = current
        line = "".join(cells)
        if width is not None and horizon > width:
            step = horizon / width
            line = "".join(
                line[min(int(i * step), horizon - 1)] for i in range(width)
            )
        rows.append("{} | {}".format(name.ljust(label_width), line))
    return "\n".join(rows)
