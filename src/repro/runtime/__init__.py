"""Deterministic cooperative concurrency runtime (substrates S1–S2).

The runtime replaces OS threads with generator-based processes scheduled by a
single deterministic loop (see DESIGN.md §6 for why).  Public surface:

* :class:`Scheduler` / :func:`run_processes` — spawn and run processes.
* :class:`SimProcess`, :class:`ProcessState` — process handles.
* Policies — :class:`FIFOPolicy`, :class:`RandomPolicy`,
  :class:`ScriptedPolicy`, :class:`NamedOrderPolicy`, :class:`PriorityPolicy`.
* Primitives — :class:`Semaphore`, :class:`Mutex`, :class:`BroadcastEvent`.
* Traces — :class:`Trace`, :class:`Event`, :class:`RunResult`.
* Errors — :class:`DeadlockError` and friends.
"""

from .errors import (
    DeadlockError,
    IllegalOperationError,
    PeerFailed,
    ProcessFailed,
    ProcessKilled,
    RuntimeBaseError,
    SchedulerStateError,
    StepLimitExceeded,
    WaitTimeout,
)
from .faults import Fault, FaultPlan, WaitForGraph, deliver, retrying
from .policies import (
    FIFOPolicy,
    NamedOrderPolicy,
    PriorityPolicy,
    RandomPolicy,
    SchedulingPolicy,
    ScriptedPolicy,
)
from .primitives import BroadcastEvent, Mutex, Semaphore
from .process import ProcessState, SimProcess
from .scheduler import Scheduler, run_processes
from .timeline import render_timeline
from .trace import Event, RunResult, Trace

__all__ = [
    "BroadcastEvent",
    "DeadlockError",
    "Event",
    "FIFOPolicy",
    "Fault",
    "FaultPlan",
    "IllegalOperationError",
    "Mutex",
    "NamedOrderPolicy",
    "PeerFailed",
    "PriorityPolicy",
    "ProcessFailed",
    "ProcessKilled",
    "ProcessState",
    "RandomPolicy",
    "RunResult",
    "RuntimeBaseError",
    "Scheduler",
    "SchedulerStateError",
    "SchedulingPolicy",
    "ScriptedPolicy",
    "Semaphore",
    "SimProcess",
    "StepLimitExceeded",
    "Trace",
    "WaitForGraph",
    "WaitTimeout",
    "deliver",
    "render_timeline",
    "retrying",
    "run_processes",
]
