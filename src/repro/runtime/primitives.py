"""Low-level synchronization primitives (substrate S2).

These are the Dijkstra-era building blocks every higher mechanism in the
library is compiled down to: counting semaphores with an explicit wait queue,
a mutex with holder tracking, and a broadcast event.

Two properties matter for the reproduction:

* **FIFO wakeup.**  The paper's analysis of path expressions assumes "the
  selection operator always chooses the process that has been waiting
  longest" (§5.1).  Our semaphores grant permits in strict arrival order by
  default, which realizes that assumption.  Experiment E9 ablates it via the
  ``wake_policy`` knob (``"fifo"``, ``"lifo"``, ``"random"``).
* **Direct handoff.**  ``V`` on a semaphore with waiters transfers the permit
  straight to the woken process instead of incrementing the counter, so a
  late-arriving process can never barge past a queued one.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from .errors import IllegalOperationError
from .process import SimProcess
from .scheduler import Scheduler


class Semaphore:
    """A counting semaphore with configurable wake order.

    Args:
        sched: owning scheduler.
        initial: initial permit count (>= 0).
        name: trace label.
        wake_policy: ``"fifo"`` (default, longest-waiting first), ``"lifo"``,
            or ``"random"`` (seeded by ``seed``).
    """

    def __init__(
        self,
        sched: Scheduler,
        initial: int = 0,
        name: str = "sem",
        wake_policy: str = "fifo",
        seed: int = 0,
    ) -> None:
        if initial < 0:
            raise ValueError("semaphore initial value must be >= 0")
        if wake_policy not in ("fifo", "lifo", "random"):
            raise ValueError("unknown wake policy {!r}".format(wake_policy))
        self._sched = sched
        self._value = initial
        self.name = name
        self._wake_policy = wake_policy
        self._rng = random.Random(seed)
        self._waiters: List[SimProcess] = []

    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """Current permit count (0 while processes wait)."""
        return self._value

    @property
    def waiters(self) -> int:
        """Number of processes blocked in :meth:`p`."""
        return len(self._waiters)

    # ------------------------------------------------------------------
    def p(self) -> Generator:
        """Dijkstra's P (wait/acquire).  ``yield from sem.p()``."""
        yield from self._sched.checkpoint()
        if self._value > 0 and not self._waiters:
            self._value -= 1
            self._sched.log("sem_p", self.name, self._value)
            return
        proc = self._sched.current
        self._waiters.append(proc)
        yield from self._sched.park("P({})".format(self.name), self.name)
        # Permit was handed to us directly by V; nothing to decrement.
        self._sched.log("sem_p", self.name, "handoff")

    # Alias matching the threading module vocabulary.
    acquire = p

    def v(self) -> None:
        """Dijkstra's V (signal/release).  Non-blocking."""
        if self._waiters:
            proc = self._pick_waiter()
            self._sched.log("sem_v", self.name, "wake:{}".format(proc.name))
            self._sched.unpark(proc)
        else:
            self._value += 1
            self._sched.log("sem_v", self.name, self._value)

    release = v

    def try_p(self) -> bool:
        """Non-blocking P: take a permit if immediately available."""
        if self._value > 0 and not self._waiters:
            self._value -= 1
            self._sched.log("sem_p", self.name, self._value)
            return True
        return False

    def _pick_waiter(self) -> SimProcess:
        if self._wake_policy == "fifo":
            return self._waiters.pop(0)
        if self._wake_policy == "lifo":
            return self._waiters.pop()
        return self._waiters.pop(self._rng.randrange(len(self._waiters)))


class Mutex:
    """A non-reentrant binary lock with holder tracking.

    Unlike a plain ``Semaphore(initial=1)``, a mutex knows its holder and
    refuses release by anyone else — protocol violations surface as
    :class:`IllegalOperationError` instead of silent corruption.
    """

    def __init__(self, sched: Scheduler, name: str = "mutex") -> None:
        self._sched = sched
        self.name = name
        self._holder: Optional[SimProcess] = None
        self._waiters: List[SimProcess] = []

    @property
    def held(self) -> bool:
        """True while some process holds the lock."""
        return self._holder is not None

    @property
    def holder_name(self) -> Optional[str]:
        """Name of the holding process, or ``None``."""
        return self._holder.name if self._holder else None

    def acquire(self) -> Generator:
        """Block until the lock is free, then take it."""
        yield from self._sched.checkpoint()
        me = self._sched.current
        if self._holder is me:
            raise IllegalOperationError(
                "{} attempted reentrant acquire of {}".format(me.name, self.name)
            )
        if self._holder is None and not self._waiters:
            self._holder = me
            self._sched.log("acquire", self.name)
            return
        self._waiters.append(me)
        yield from self._sched.park("lock({})".format(self.name), self.name)
        # Ownership was handed to us by release().
        self._sched.log("acquire", self.name, "handoff")

    def release(self) -> None:
        """Release the lock; hands it directly to the longest waiter."""
        me = self._sched.current
        if self._holder is not me:
            raise IllegalOperationError(
                "{} released {} held by {}".format(
                    me.name if me else "<sched>", self.name, self.holder_name
                )
            )
        if self._waiters:
            nxt = self._waiters.pop(0)
            self._holder = nxt
            self._sched.log("release", self.name, "handoff:{}".format(nxt.name))
            self._sched.unpark(nxt)
        else:
            self._holder = None
            self._sched.log("release", self.name)


class BroadcastEvent:
    """A one-shot gate: processes wait until some process sets it.

    Once set, the event stays set and :meth:`wait` returns immediately.
    """

    def __init__(self, sched: Scheduler, name: str = "event") -> None:
        self._sched = sched
        self.name = name
        self._set = False
        self._waiters: List[SimProcess] = []

    @property
    def is_set(self) -> bool:
        """True once :meth:`set` has been called."""
        return self._set

    def wait(self) -> Generator:
        """Block until the event is set (immediate if already set)."""
        yield from self._sched.checkpoint()
        if self._set:
            return
        self._waiters.append(self._sched.current)
        yield from self._sched.park("event({})".format(self.name), self.name)

    def set(self) -> None:
        """Set the event, waking every waiter in FIFO order."""
        if self._set:
            return
        self._set = True
        self._sched.log("event_set", self.name, len(self._waiters))
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._sched.unpark(proc)
