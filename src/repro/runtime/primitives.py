"""Low-level synchronization primitives (substrate S2).

These are the Dijkstra-era building blocks every higher mechanism in the
library is compiled down to: counting semaphores with an explicit wait queue,
a mutex with holder tracking, and a broadcast event.

Two properties matter for the reproduction:

* **FIFO wakeup.**  The paper's analysis of path expressions assumes "the
  selection operator always chooses the process that has been waiting
  longest" (§5.1).  Our semaphores grant permits in strict arrival order by
  default, which realizes that assumption.  Experiment E9 ablates it via the
  ``wake_policy`` knob (``"fifo"``, ``"lifo"``, ``"random"``).
* **Direct handoff.**  ``V`` on a semaphore with waiters transfers the permit
  straight to the woken process instead of incrementing the counter, so a
  late-arriving process can never barge past a queued one.

Crash semantics (see DESIGN.md "Fault model"):

* A process killed while *waiting* is dequeued — a later ``V``/``release``
  never targets a corpse.
* A :class:`Mutex` holder that dies releases the lock to the next waiter
  automatically (robust-mutex semantics): the mutex is **fault-containing**.
* A counting :class:`Semaphore` has no intrinsic ownership, so a permit held
  by a dead process is *lost* by default and survivors deadlock — with the
  dead holder named in the wait-for graph.  Opt-in ``crash_release=True``
  enables lock-style ownership tracking (each un-V'd ``P`` is returned on
  death); only sound when the acquiring process is the one that releases,
  i.e. *not* for token-passing protocols.
* Timed variants: ``p(timeout=...)`` / ``acquire(timeout=...)`` /
  ``wait(timeout=...)`` raise :class:`~repro.runtime.errors.WaitTimeout`
  after the given virtual-time budget, dequeuing the caller first.
"""

from __future__ import annotations

import random
from typing import Generator, List, Optional

from .errors import IllegalOperationError
from .process import SimProcess
from .scheduler import Scheduler


class Semaphore:
    """A counting semaphore with configurable wake order.

    Args:
        sched: owning scheduler.
        initial: initial permit count (>= 0).
        name: trace label.
        wake_policy: ``"fifo"`` (default, longest-waiting first), ``"lifo"``,
            or ``"random"`` (seeded by ``seed``).
        crash_release: return un-V'd permits when their acquirer dies
            (lock-style usage only; see module docstring).
    """

    def __init__(
        self,
        sched: Scheduler,
        initial: int = 0,
        name: str = "sem",
        wake_policy: str = "fifo",
        seed: int = 0,
        crash_release: bool = False,
    ) -> None:
        if initial < 0:
            raise ValueError("semaphore initial value must be >= 0")
        if wake_policy not in ("fifo", "lifo", "random"):
            raise ValueError("unknown wake policy {!r}".format(wake_policy))
        self._sched = sched
        self._value = initial
        self.name = name
        self._label = "semaphore {}".format(name)
        self._wait_key = ("sem_wait", id(self))
        self._hold_key = ("sem_hold", id(self))
        self._grant_key = ("sem_grant", id(self))
        self._wake_policy = wake_policy
        self._rng = random.Random(seed)
        self._crash_release = crash_release
        self._waiters: List[SimProcess] = []

    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        """Current permit count (0 while processes wait)."""
        return self._value

    @property
    def waiters(self) -> int:
        """Number of processes blocked in :meth:`p`."""
        return len(self._waiters)

    def holder_names(self) -> List[str]:
        """Recorded permit holders (diagnostic; may include the dead)."""
        return self._sched.holders_of(self._label)

    # ------------------------------------------------------------------
    def p(self, timeout: Optional[int] = None) -> Generator:
        """Dijkstra's P (wait/acquire).  ``yield from sem.p()``.

        ``timeout`` bounds the wait in virtual time; expiry dequeues the
        caller and raises :class:`WaitTimeout`.
        """
        yield from self._sched.checkpoint()
        me = self._sched.current
        if self._value > 0 and not self._waiters:
            self._value -= 1
            self._sched.log("sem_p", self.name, self._value)
            self._note_acquired(me)
            return
        self._waiters.append(me)
        self._sched.probe("semaphore", self._label, len(self._waiters))
        self._sched.register_cleanup(self._wait_key, self._on_waiter_death)
        try:
            yield from self._sched.park(
                "P({})".format(self.name), self.name,
                timeout=timeout,
                on_timeout=lambda: self._discard_waiter(me),
                resource=self._label,
            )
        finally:
            self._sched.unregister_cleanup(self._wait_key, me)
            self._sched.unregister_cleanup(self._grant_key, me)
        # Permit was handed to us directly by V (and recorded then).
        self._sched.log("sem_p", self.name, "handoff")

    # Alias matching the threading module vocabulary.
    acquire = p

    def v(self) -> None:
        """Dijkstra's V (signal/release).  Non-blocking.

        Subject to ``drop_signal`` fault injection: a dropped V vanishes —
        no waiter wakes and the counter stays put (a lost wakeup).
        """
        if self._sched.fault_drop(self.name):
            self._sched.log("fault_drop", self.name, "V")
            return
        self._note_released()
        if self._waiters:
            proc = self._pick_waiter()
            self._sched.log("sem_v", self.name, "wake:{}".format(proc.name))
            self._grant_to(proc)
            self._sched.unpark(proc)
        else:
            self._value += 1
            self._sched.log("sem_v", self.name, self._value)

    release = v

    def try_p(self) -> bool:
        """Non-blocking P: take a permit if immediately available."""
        if self._value > 0 and not self._waiters:
            self._value -= 1
            self._sched.log("sem_p", self.name, self._value)
            self._note_acquired(self._sched.current)
            return True
        return False

    def _pick_waiter(self) -> SimProcess:
        if self._wake_policy == "fifo":
            proc = self._waiters.pop(0)
        elif self._wake_policy == "lifo":
            proc = self._waiters.pop()
        else:
            proc = self._waiters.pop(self._rng.randrange(len(self._waiters)))
        self._sched.probe("semaphore", self._label, len(self._waiters))
        return proc

    # ------------------------------------------------------------------
    # Crash-semantics bookkeeping
    # ------------------------------------------------------------------
    def _note_acquired(self, proc: Optional[SimProcess]) -> None:
        if proc is None:
            return
        self._sched.note_hold(self._label, proc)
        if self._crash_release:
            self._sched.register_cleanup(
                self._hold_key, self._on_holder_death, proc=proc
            )

    def _note_released(self) -> None:
        # Token-passing V-ers never P'd this semaphore: attribute the
        # release to the longest-standing holder instead.
        self._sched.note_release(self._label, fallback_oldest=True)
        if self._crash_release:
            self._sched.unregister_cleanup(self._hold_key)

    def _grant_to(self, proc: SimProcess) -> None:
        """Record a direct handoff *at V time*, so a grantee killed before
        it ever resumes still shows as the permit holder.

        The handoff window (granted but not yet resumed) is scheduler
        machinery, not user code, so a death inside it returns the permit
        *regardless* of ``crash_release`` — otherwise every V would gamble
        the permit on its grantee surviving one more step."""
        self._note_acquired(proc)
        self._sched.register_cleanup(
            self._grant_key, self._on_grantee_death, proc=proc
        )

    def _on_grantee_death(self, proc: SimProcess) -> None:
        """The in-flight permit of a grantee that died before resuming is
        re-granted (or banked) instead of vanishing with the corpse."""
        self._sched.note_release(self._label, proc=proc)
        if self._crash_release:
            # The hold cleanup would return this same permit again.
            self._sched.unregister_cleanup(self._hold_key, proc)
        self._sched.log(
            "sem_v", self.name,
            "handoff_return:{}".format(proc.name), proc=proc,
        )
        if self._waiters:
            nxt = self._pick_waiter()
            self._grant_to(nxt)
            self._sched.unpark(nxt)
        else:
            self._value += 1

    def _discard_waiter(self, proc: SimProcess) -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)
            self._sched.probe("semaphore", self._label, len(self._waiters))

    def _on_waiter_death(self, proc: SimProcess) -> None:
        self._discard_waiter(proc)

    def _on_holder_death(self, proc: SimProcess) -> None:
        self._sched.note_release(self._label, proc=proc)
        self._sched.log(
            "sem_v", self.name, "crash_release:{}".format(proc.name), proc=proc
        )
        if self._waiters:
            nxt = self._pick_waiter()
            self._grant_to(nxt)
            self._sched.unpark(nxt)
        else:
            self._value += 1

    # ------------------------------------------------------------------
    # Recovery hooks (lease reclamation / graceful degradation)
    # ------------------------------------------------------------------
    def crash_reclaim(self, proc: SimProcess) -> Optional[str]:
        """Lease reclamation: return every permit still attributed to the
        dead ``proc``.  This is what makes a *raw* semaphore recoverable —
        without ``crash_release`` a lost permit normally dies with its
        holder; under lease management the supervisor revokes it and the
        next waiter is granted (or the counter is restored)."""
        count = self._sched.hold_count(self._label, proc)
        if count == 0:
            if self._discard_waiter_if(proc):
                return "dequeued"
            return None
        for __ in range(count):
            self._sched.note_release(self._label, proc=proc)
            self._sched.log(
                "sem_v", self.name,
                "reclaim:{}".format(proc.name), proc=proc,
            )
            if self._waiters:
                nxt = self._pick_waiter()
                self._grant_to(nxt)
                self._sched.unpark(nxt)
            else:
                self._value += 1
        self._discard_waiter_if(proc)
        return "released {} permit{}".format(count, "" if count == 1 else "s")

    def _discard_waiter_if(self, proc: SimProcess) -> bool:
        if proc in self._waiters:
            self._discard_waiter(proc)
            return True
        return False

    def degrade(self) -> Optional[str]:
        """Graceful degradation: fall back to FIFO wakeup.  Arrival order
        needs no cross-crash bookkeeping; permit exclusion (the counter) is
        untouched."""
        if self._wake_policy == "fifo":
            return None
        old = self._wake_policy
        self._wake_policy = "fifo"
        return "wake policy {} -> fifo".format(old)


class Mutex:
    """A non-reentrant binary lock with holder tracking.

    Unlike a plain ``Semaphore(initial=1)``, a mutex knows its holder and
    refuses release by anyone else — protocol violations surface as
    :class:`IllegalOperationError` instead of silent corruption.  The same
    ownership makes it *robust*: a holder that dies releases the lock to the
    next waiter automatically (logged as ``crash_release``), so one crash
    never wedges the survivors.
    """

    def __init__(self, sched: Scheduler, name: str = "mutex") -> None:
        self._sched = sched
        self.name = name
        self._label = "mutex {}".format(name)
        self._wait_key = ("mutex_wait", id(self))
        self._hold_key = ("mutex_hold", id(self))
        self._holder: Optional[SimProcess] = None
        self._waiters: List[SimProcess] = []

    @property
    def held(self) -> bool:
        """True while some process holds the lock."""
        return self._holder is not None

    @property
    def holder_name(self) -> Optional[str]:
        """Name of the holding process, or ``None``."""
        return self._holder.name if self._holder else None

    def acquire(self, timeout: Optional[int] = None) -> Generator:
        """Block until the lock is free, then take it.

        ``timeout`` bounds the wait in virtual time; expiry dequeues the
        caller and raises :class:`WaitTimeout`.
        """
        yield from self._sched.checkpoint()
        me = self._sched.current
        if self._holder is me:
            raise IllegalOperationError(
                "{} attempted reentrant acquire of {}".format(me.name, self.name)
            )
        if self._holder is None and not self._waiters:
            self._take(me)
            self._sched.log("acquire", self.name)
            return
        self._waiters.append(me)
        self._sched.probe("mutex", self._label, len(self._waiters))
        self._sched.register_cleanup(self._wait_key, self._on_waiter_death)
        try:
            yield from self._sched.park(
                "lock({})".format(self.name), self.name,
                timeout=timeout,
                on_timeout=lambda: self._discard_waiter(me),
                resource=self._label,
            )
        finally:
            self._sched.unregister_cleanup(self._wait_key, me)
        # Ownership was handed to us by release() (and recorded then).
        self._sched.log("acquire", self.name, "handoff")

    def release(self) -> None:
        """Release the lock; hands it directly to the longest waiter."""
        me = self._sched.current
        if self._holder is not me:
            raise IllegalOperationError(
                "{} released {} held by {}".format(
                    me.name if me else "<sched>", self.name, self.holder_name
                )
            )
        self._sched.unregister_cleanup(self._hold_key, me)
        self._sched.note_release(self._label, me)
        if self._waiters:
            nxt = self._waiters.pop(0)
            self._sched.probe("mutex", self._label, len(self._waiters))
            self._take(nxt)
            self._sched.log("release", self.name, "handoff:{}".format(nxt.name))
            self._sched.unpark(nxt)
        else:
            self._holder = None
            self._sched.log("release", self.name)

    # ------------------------------------------------------------------
    def _take(self, proc: SimProcess) -> None:
        self._holder = proc
        self._sched.note_hold(self._label, proc)
        self._sched.register_cleanup(
            self._hold_key, self._on_holder_death, proc=proc
        )

    def _discard_waiter(self, proc: SimProcess) -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)
            self._sched.probe("mutex", self._label, len(self._waiters))

    def _on_waiter_death(self, proc: SimProcess) -> None:
        self._discard_waiter(proc)

    def _on_holder_death(self, proc: SimProcess) -> None:
        if self._holder is not proc:
            return
        self._sched.note_release(self._label, proc)
        if self._waiters:
            nxt = self._waiters.pop(0)
            self._sched.probe("mutex", self._label, len(self._waiters))
            self._take(nxt)
            self._sched.log(
                "release", self.name,
                "crash_release:{}".format(nxt.name), proc=proc,
            )
            self._sched.unpark(nxt)
        else:
            self._holder = None
            self._sched.log("release", self.name, "crash_release", proc=proc)

    def crash_reclaim(self, proc: SimProcess) -> Optional[str]:
        """Lease reclamation.  The mutex is already robust (its holder-death
        cleanup hands the lock over), so this is a defensive sweep: release
        if the corpse somehow still holds, dequeue it if it still waits."""
        if self._holder is proc:
            self._on_holder_death(proc)
            return "released"
        if proc in self._waiters:
            self._discard_waiter(proc)
            return "dequeued"
        return None


class BroadcastEvent:
    """A one-shot gate: processes wait until some process sets it.

    Once set, the event stays set and :meth:`wait` returns immediately.
    A waiter that dies is dequeued; ``wait(timeout=...)`` gives up after the
    virtual-time budget with :class:`WaitTimeout`.
    """

    def __init__(self, sched: Scheduler, name: str = "event") -> None:
        self._sched = sched
        self.name = name
        self._label = "event {}".format(name)
        self._wait_key = ("event_wait", id(self))
        self._set = False
        self._waiters: List[SimProcess] = []

    @property
    def is_set(self) -> bool:
        """True once :meth:`set` has been called."""
        return self._set

    def wait(self, timeout: Optional[int] = None) -> Generator:
        """Block until the event is set (immediate if already set)."""
        yield from self._sched.checkpoint()
        if self._set:
            return
        me = self._sched.current
        self._waiters.append(me)
        self._sched.probe("event", self._label, len(self._waiters))
        self._sched.register_cleanup(self._wait_key, self._discard_waiter)
        try:
            yield from self._sched.park(
                "event({})".format(self.name), self.name,
                timeout=timeout,
                on_timeout=lambda: self._discard_waiter(me),
                resource=self._label,
            )
        finally:
            self._sched.unregister_cleanup(self._wait_key, me)

    def set(self) -> None:
        """Set the event, waking every waiter in FIFO order."""
        if self._set:
            return
        self._set = True
        self._sched.log("event_set", self.name, len(self._waiters))
        waiters, self._waiters = self._waiters, []
        self._sched.probe("event", self._label, 0)
        for proc in waiters:
            self._sched.unpark(proc)

    def _discard_waiter(self, proc: SimProcess) -> None:
        if proc in self._waiters:
            self._waiters.remove(proc)
            self._sched.probe("event", self._label, len(self._waiters))
