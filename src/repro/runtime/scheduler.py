"""The deterministic cooperative scheduler.

This is substrate S1 from DESIGN.md: a discrete-event, generator-based
run-to-yield scheduler.  Every blocking construct in the library (semaphores,
monitors, serializers, path expressions) is built on exactly two scheduler
services: :meth:`Scheduler.park` (suspend the current process) and
:meth:`Scheduler.unpark` (make a suspended process runnable again).  All
nondeterminism funnels through the :class:`~repro.runtime.policies.SchedulingPolicy`,
so runs are replayable and the schedule space is enumerable.

Virtual time is discrete-event style: the clock only advances when nothing is
runnable, jumping to the earliest pending timer.  The global event sequence
number (``seq``) provides the total order used for "request time"
(information type T2) reasoning.

Robustness services layered on the same two primitives:

* **timed blocking** — ``park(timeout=...)`` arms a timer-heap entry that
  delivers :class:`WaitTimeout` if no wakeup arrives in time; normal wakeups
  cancel the entry (lazily removed from the heap);
* **crash semantics** — :meth:`kill` terminates a process abruptly, running
  the cleanup callbacks mechanisms registered (release a held monitor,
  dequeue a dead waiter, break a channel) so survivors are never silently
  wedged;
* **fault injection** — a :class:`~repro.runtime.faults.FaultPlan` can
  script kills, delayed wakeups, and dropped signals into the run loop;
* **diagnosis** — the scheduler tracks who holds what (:meth:`note_hold`)
  and who waits on what, so deadlocks carry a wait-for graph naming even
  dead processes.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import Any, Callable, Dict, Generator, List, Optional

from .errors import (
    DeadlockError,
    ProcessFailed,
    ProcessKilled,
    SchedulerStateError,
    StepLimitExceeded,
    WaitTimeout,
)
from .faults import FaultPlan, WaitForGraph, _Failure
from .policies import FIFOPolicy, SchedulingPolicy
from .process import ProcessState, SimProcess
from .trace import Event, RunResult, Trace

#: Trace events carried by :class:`StepLimitExceeded` for diagnosis.
DIAGNOSTIC_TAIL = 20


class _TimerEntry:
    """One timer-heap entry.  ``kind`` selects the firing behaviour:

    * ``"sleep"``   — plain :meth:`Scheduler.sleep` wakeup;
    * ``"timeout"`` — timed ``park`` expiry: run the mechanism's
      ``on_fire`` dequeue callback, then deliver :class:`WaitTimeout`
      (unless ``on_fire`` returned ``True``, meaning it re-queued the
      wakeup itself — the monitor does this to re-enter before raising);
    * ``"delayed"`` — a fault-plan-delayed wakeup carrying the original
      wake value in ``payload``.

    Entries are cancelled lazily: normal wakeups set :attr:`cancelled` and
    the heap skips stale entries (cancelled, already-woken, or dead
    processes) when the clock advances.
    """

    __slots__ = ("proc", "kind", "on_fire", "payload", "what", "timeout",
                 "cancelled")

    def __init__(
        self,
        proc: SimProcess,
        kind: str,
        on_fire: Optional[Callable[[], Any]] = None,
        payload: Any = None,
        what: str = "",
        timeout: int = 0,
    ) -> None:
        self.proc = proc
        self.kind = kind
        self.on_fire = on_fire
        self.payload = payload
        self.what = what
        self.timeout = timeout
        self.cancelled = False


class Scheduler:
    """Owns the ready queue, virtual clock, timers, and trace.

    Args:
        policy: scheduling policy; defaults to deterministic FIFO.
        max_steps: hard step budget; exceeding it raises
            :class:`StepLimitExceeded` (livelock guard).
        preemptive: when ``True``, primitives insert extra context-switch
            points via :meth:`checkpoint`, widening the schedule space the
            explorer can reach.
        fault_plan: optional :class:`~repro.runtime.faults.FaultPlan` of
            kills / delays / dropped signals injected into the run.
        sink: optional :class:`~repro.obs.sink.InstrumentationSink` that
            receives every trace event, dispatch step, and mechanism probe.
            A sink whose class sets ``IS_NULL = True`` (the obs layer's
            ``NullSink``) is normalized to ``None`` here, so uninstrumented
            runs execute the identical code path and pay nothing.  Checked
            by duck-typing so the runtime never imports the obs package.
    """

    def __init__(
        self,
        policy: Optional[SchedulingPolicy] = None,
        max_steps: int = 500_000,
        preemptive: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        sink: Optional[Any] = None,
    ) -> None:
        self.policy = policy or FIFOPolicy()
        self.policy.reset()
        self.max_steps = max_steps
        self.preemptive = preemptive
        self.fault_plan = fault_plan
        if sink is not None and getattr(sink, "IS_NULL", False):
            sink = None
        self._sink = sink
        self.trace = Trace()
        self._ready: List[SimProcess] = []
        self._processes: List[SimProcess] = []
        self._timers: list = []  # heap of (deadline, seq, _TimerEntry)
        self._holds: Dict[str, List[SimProcess]] = {}
        self._time = 0
        self._seq = 0
        self._current: Optional[SimProcess] = None
        self._running = False
        self._finished = False
        self._live_nondaemons = 0
        self._park_counter = 0
        # Canonical-state fingerprinting (exploration support).  Disabled
        # until enable_fingerprinting(): ordinary runs pay one is-None test
        # per logged event, nothing more.
        self._fp_digest: Optional[int] = None
        self._fp_providers: List[Callable[[], Any]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual-clock reading."""
        return self._time

    @property
    def seq(self) -> int:
        """Next global sequence number (monotone event counter)."""
        return self._seq

    @property
    def current(self) -> Optional[SimProcess]:
        """The process executing right now (``None`` between steps)."""
        return self._current

    @property
    def processes(self) -> List[SimProcess]:
        """All processes ever spawned, in spawn order."""
        return list(self._processes)

    def wait_graph(self) -> WaitForGraph:
        """Snapshot of the current wait-for relation (see
        :class:`~repro.runtime.faults.WaitForGraph`)."""
        return WaitForGraph.snapshot(self._processes, self._holds)

    # ------------------------------------------------------------------
    # Canonical state fingerprint (exploration support)
    # ------------------------------------------------------------------
    def enable_fingerprinting(self) -> None:
        """Start maintaining the commutative event digest that
        :meth:`fingerprint` folds in.  Called once (idempotent) by
        exploration policies before the first scheduling decision; events
        logged earlier (the initial spawns) are identical across replays of
        the same system, so omitting them never conflates distinct states."""
        if self._fp_digest is None:
            self._fp_digest = 0

    def add_fingerprint_provider(self, fn: Callable[[], Any]) -> None:
        """Register a zero-argument snapshot of *shared user state* (buffer
        contents, counters...) to fold into :meth:`fingerprint`.  Mechanism
        state is already visible to the scheduler (queues, holds, timers,
        event digest); providers close the gap for state the mechanisms do
        not log.  The returned value is captured via ``repr``, so any
        printable structure works."""
        self._fp_providers.append(fn)

    def fingerprint(self) -> int:
        """A 64-bit canonical digest of the *scheduler-visible* state:

        * the runnable set, in ready-queue order;
        * every process's lifecycle coordinates (state, step count, what it
          is blocked on) plus the relative park order of blocked processes
          (recovering mechanism FIFO queue order);
        * the hold registry and live timer deltas;
        * a commutative (order-insensitive) digest of all events logged
          since fingerprinting was enabled — interleavings that are
          permutations of the same events converge, dependent interleavings
          diverge;
        * registered fingerprint providers (shared user state).

        Two prefixes with equal fingerprints have behaviourally identical
        continuations (see DESIGN.md §9 for the soundness argument), which
        is what lets the exploration engine visit each equivalence class of
        interleavings once.  Uses BLAKE2b, not ``hash()``, so digests agree
        across worker processes regardless of ``PYTHONHASHSEED``.
        """
        procs = tuple(
            (p.pid, p.state.value, p.steps, p.blocked_on or "",
             str(p.wait_obj or ""), p.daemon)
            for p in self._processes
        )
        ready = tuple(p.pid for p in self._ready)
        park_order = tuple(
            p.pid for p in sorted(
                (p for p in self._processes
                 if p.state is ProcessState.BLOCKED),
                key=lambda p: p.park_seq,
            )
        )
        holds = tuple(sorted(
            (resource, tuple(sorted(p.pid for p in holders)))
            for resource, holders in self._holds.items()
            if holders
        ))
        timers = tuple(sorted(
            (deadline - self._time, entry.proc.pid, entry.kind)
            for deadline, __, entry in self._timers
            if not entry.cancelled
            and entry.proc.state is ProcessState.BLOCKED
        ))
        extra = tuple(repr(fn()) for fn in self._fp_providers)
        # Absolute virtual time is state for timed problems (alarm clock
        # deadlines are clock-relative); untimed problems stay at t=0, so
        # including it never costs them a merge.
        payload = repr((self._time, ready, procs, park_order, holds, timers,
                        self._fp_digest, extra)).encode()
        return int.from_bytes(
            hashlib.blake2b(payload, digest_size=8).digest(), "big"
        )

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        body: Callable[..., Generator],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> SimProcess:
        """Create a process from a generator function and make it runnable.

        ``body(*args)`` must return a generator.  Processes may spawn other
        processes while running.  ``daemon`` processes (forever-looping
        servers) do not keep the run alive: :meth:`run` returns once every
        non-daemon process has finished.
        """
        if self._finished:
            raise SchedulerStateError("cannot spawn after the run completed")
        generator = body(*args)
        if not hasattr(generator, "send"):
            raise SchedulerStateError(
                "process body {!r} is not a generator function".format(body)
            )
        pid = len(self._processes)
        proc = SimProcess(pid, name or "P{}".format(pid), generator, daemon)
        self._processes.append(proc)
        proc.state = ProcessState.READY
        proc.arrival = self._seq
        if not daemon:
            self._live_nondaemons += 1
        self._ready.append(proc)
        self.log("spawn", proc.name, proc=proc)
        return proc

    def kill(
        self,
        proc: SimProcess,
        exc: Optional[BaseException] = None,
        why: str = "",
    ) -> None:
        """Terminate ``proc`` abruptly, running its registered cleanups.

        The crash sequence is: mark the process FAILED, run the cleanup
        callbacks mechanisms registered (LIFO — innermost construct first),
        then close the generator so the body's ``finally`` blocks run with
        their resources already released.  Cleanup or close errors are
        recorded in the trace, never raised: a crash must not crash the
        scheduler.
        """
        if proc is self._current:
            raise SchedulerStateError(
                "a process cannot kill itself mid-step; raise instead"
            )
        if not proc.alive:
            raise SchedulerStateError(
                "kill of already-finished process {!r}".format(proc.name)
            )
        if exc is None:
            exc = ProcessKilled(proc.name, why)
        if proc in self._ready:
            self._ready.remove(proc)
        if not proc.daemon:
            self._live_nondaemons -= 1
        proc.fail(exc)
        proc.blocked_on = None
        self.log("killed", proc.name, why or repr(exc), proc=proc)
        self._run_cleanups(proc)
        proc.wait_obj = None
        try:
            proc.close_body()
        except BaseException as close_exc:  # noqa: BLE001 - body finally bug
            self.log("kill_error", proc.name, repr(close_exc), proc=proc)

    # ------------------------------------------------------------------
    # Crash-cleanup registry (used by the mechanisms)
    # ------------------------------------------------------------------
    def register_cleanup(
        self,
        key: Any,
        fn: Callable[[SimProcess], None],
        proc: Optional[SimProcess] = None,
    ) -> None:
        """Register ``fn`` to run if ``proc`` (default: current) dies
        abnormally.  Mechanisms pair this with :meth:`unregister_cleanup`
        around every hold/wait so a dead process never strands survivors.
        Callbacks must not block; errors are logged, not raised."""
        target = proc if proc is not None else self._current
        if target is None:
            raise SchedulerStateError("register_cleanup outside a process")
        target.cleanups.append((key, fn))

    def unregister_cleanup(
        self, key: Any, proc: Optional[SimProcess] = None
    ) -> None:
        """Remove the most recent cleanup registered under ``key``.

        Tolerant of absence: a cleanup that already ran (the process is
        being killed and a body ``finally`` re-unregisters) is a no-op.
        """
        target = proc if proc is not None else self._current
        if target is None:
            return
        for index in range(len(target.cleanups) - 1, -1, -1):
            if target.cleanups[index][0] == key:
                del target.cleanups[index]
                return

    def _run_cleanups(self, proc: SimProcess) -> None:
        while proc.cleanups:
            key, fn = proc.cleanups.pop()
            try:
                fn(proc)
            except Exception as exc:  # noqa: BLE001 - cleanup bug
                self.log("cleanup_error", str(key), repr(exc), proc=proc)

    # ------------------------------------------------------------------
    # Hold registry (wait-for-graph bookkeeping)
    # ------------------------------------------------------------------
    def note_hold(
        self, resource: str, proc: Optional[SimProcess] = None
    ) -> None:
        """Record that ``proc`` (default: current) now holds ``resource``
        (a label like ``"mutex m"``).  Purely diagnostic — powers the
        wait-for graph; never affects scheduling."""
        target = proc if proc is not None else self._current
        if target is not None:
            self._holds.setdefault(resource, []).append(target)

    def note_release(
        self,
        resource: str,
        proc: Optional[SimProcess] = None,
        fallback_oldest: bool = False,
    ) -> None:
        """Forget one hold of ``resource`` by ``proc`` (default: current).

        ``fallback_oldest`` releases the longest-standing holder when the
        releaser is not itself recorded — the right attribution for
        token-passing semaphore patterns, where the V-er acquired a
        *different* semaphore than it releases.
        """
        holders = self._holds.get(resource)
        if not holders:
            return
        target = proc if proc is not None else self._current
        if target in holders:
            holders.remove(target)
        elif fallback_oldest:
            holders.pop(0)

    def holders_of(self, resource: str) -> List[str]:
        """Names of the recorded holders of ``resource`` (may include dead
        processes)."""
        return [p.name for p in self._holds.get(resource, [])]

    def hold_count(self, resource: str, proc: SimProcess) -> int:
        """How many holds of ``resource`` are recorded for exactly ``proc``
        (by identity, so a dead incarnation's holds stay attributable).
        Lease reclamation uses this to revoke a corpse's holds."""
        return sum(1 for h in self._holds.get(resource, []) if h is proc)

    # ------------------------------------------------------------------
    # Blocking services (used by primitives, via ``yield from``)
    # ------------------------------------------------------------------
    def park(
        self,
        reason: str,
        obj: str = "",
        timeout: Optional[int] = None,
        on_timeout: Optional[Callable[[], Any]] = None,
        resource: Optional[str] = None,
    ) -> Generator:
        """Suspend the current process until :meth:`unpark`.

        Must be delegated to with ``yield from``.  Returns the value passed
        to :meth:`unpark` (used e.g. to hand a monitor's possession token to
        a signalled process).

        Args:
            timeout: maximum *virtual-time* wait; expiry raises
                :class:`WaitTimeout` in the parked process.
            on_timeout: mechanism callback run when the timer fires, used to
                dequeue the caller so no later signal targets a process that
                gave up.  Returning ``True`` suppresses the immediate
                :class:`WaitTimeout` delivery (the callback re-queued the
                wakeup itself).
            resource: wait-for-graph label of what is awaited (defaults to
                ``obj``).
        """
        proc = self._current
        if proc is None:
            raise SchedulerStateError("park called outside a running process")
        proc.state = ProcessState.BLOCKED
        proc.blocked_on = reason
        proc.wait_obj = resource or obj or reason
        proc.park_seq = self._park_counter
        self._park_counter += 1
        entry = None
        if timeout is not None:
            if timeout <= 0:
                raise ValueError("park timeout must be positive")
            entry = _TimerEntry(
                proc, "timeout", on_fire=on_timeout,
                what=proc.wait_obj, timeout=timeout,
            )
            heapq.heappush(
                self._timers, (self._time + timeout, self._next_seq(), entry)
            )
        # The reason rides along as detail: the causal analyses classify
        # waits by it ("enter(m)" vs "wait(m.c)" vs "P(s)"...), and obj
        # alone does not distinguish an entry wait from a condition wait.
        self.log("blocked", obj or reason, reason)
        value = yield
        if entry is not None:
            entry.cancelled = True  # normal wakeup: the timer is now stale
        if isinstance(value, _Failure):
            raise value.exc
        return value

    def unpark(self, proc: SimProcess, value: Any = None) -> None:
        """Make a parked process runnable, delivering ``value`` to it.

        A fault plan may delay the delivery (the process stays blocked and a
        timer completes the wakeup later)."""
        if proc.state is not ProcessState.BLOCKED:
            raise SchedulerStateError(
                "unpark of non-blocked process {!r}".format(proc.name)
            )
        if self.fault_plan is not None:
            delay = self.fault_plan.wake_delay(proc.name)
            if delay > 0:
                entry = _TimerEntry(proc, "delayed", payload=value)
                heapq.heappush(
                    self._timers, (self._time + delay, self._next_seq(), entry)
                )
                self.log("wake_delayed", proc.name, delay)
                return
        self._wake(proc, value)

    def _wake(self, proc: SimProcess, value: Any = None) -> None:
        """Deliver a wakeup immediately (bypasses fault-plan delays)."""
        proc.state = ProcessState.READY
        proc.blocked_on = None
        proc.wait_obj = None
        proc.set_wake_value(value)
        self._ready.append(proc)
        self.log("unblocked", proc.name)

    def checkpoint(self) -> Generator:
        """An optional context-switch point (no-op unless ``preemptive``)."""
        if self.preemptive:
            yield

    def sleep(self, ticks: int) -> Generator:
        """Suspend the current process for ``ticks`` units of virtual time."""
        if ticks <= 0:
            yield from self.checkpoint()
            return
        proc = self._current
        if proc is None:
            raise SchedulerStateError("sleep called outside a running process")
        deadline = self._time + ticks
        heapq.heappush(
            self._timers,
            (deadline, self._next_seq(), _TimerEntry(proc, "sleep")),
        )
        proc.state = ProcessState.BLOCKED
        proc.blocked_on = "sleep({})".format(ticks)
        proc.wait_obj = "timer"
        proc.park_seq = self._park_counter
        self._park_counter += 1
        yield

    # ------------------------------------------------------------------
    # Fault hooks
    # ------------------------------------------------------------------
    def fault_drop(self, obj: str) -> bool:
        """Consulted by V/signal sites: True when the active fault plan
        wants this signal to vanish.  The call site logs the drop and simply
        returns without waking anyone."""
        return self.fault_plan is not None and self.fault_plan.should_drop(obj)

    def _find_alive(self, name: str) -> Optional[SimProcess]:
        for proc in self._processes:
            if proc.name == name and proc.alive:
                return proc
        return None

    def _fire_pending_faults(self) -> None:
        """Kill processes doomed by entry triggers or due time-based kills.
        Runs every loop iteration so even *blocked* processes die on cue."""
        plan = self.fault_plan
        for fault in plan.time_kills_due(self._time):
            victim = self._find_alive(fault.process)
            if victim is not None and victim is not self._current:
                self.kill(victim, why=fault.describe())
        for name in plan.take_doomed():
            victim = self._find_alive(name)
            if victim is not None and victim is not self._current:
                self.kill(victim, why="entered fault point")

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def log(
        self,
        kind: str,
        obj: str = "",
        detail: Any = None,
        proc: Optional[SimProcess] = None,
    ) -> Event:
        """Append an event to the trace, attributed to ``proc`` (default:
        the current process)."""
        actor = proc if proc is not None else self._current
        pid = actor.pid if actor is not None else -1
        pname = actor.name if actor is not None else "<sched>"
        event = Event(self._next_seq(), self._time, pid, pname, kind, obj, detail)
        self.trace.append(event)
        if self._fp_digest is not None:
            # Commutative (addition mod 2^64) so permutations of the same
            # event multiset — i.e. reorderings of independent steps —
            # produce the same digest.  seq/time are deliberately excluded:
            # they are positional, not state.
            self._fp_digest = (
                self._fp_digest + int.from_bytes(
                    hashlib.blake2b(
                        repr((pid, kind, obj, detail)).encode(),
                        digest_size=8,
                    ).digest(),
                    "big",
                )
            ) & 0xFFFFFFFFFFFFFFFF
        if self._sink is not None:
            self._sink.on_event(event)
        if self.fault_plan is not None and actor is not None:
            self.fault_plan.observe(pname, kind, obj)
        return event

    def probe(self, category: str, obj: str, value: Any) -> None:
        """Publish a mechanism gauge sample (queue depth, crowd size...) to
        the attached sink.  Free when no sink is attached — mechanisms call
        this unconditionally from their queue-mutation sites."""
        if self._sink is not None:
            self._sink.on_probe(category, obj, value, self._seq, self._time)

    def _next_seq(self) -> int:
        value = self._seq
        self._seq += 1
        return value

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(
        self,
        on_deadlock: str = "raise",
        on_error: str = "raise",
        on_steplimit: str = "raise",
    ) -> RunResult:
        """Execute until every process finishes (or deadlock / step limit).

        Args:
            on_deadlock: ``"raise"`` (default) raises :class:`DeadlockError`;
                ``"return"`` ends the run with ``RunResult.deadlocked=True``
                (used by experiment E7, which *wants* the deadlock, and by
                the chaos explorer).
            on_error: ``"raise"`` wraps a failing process body in
                :class:`ProcessFailed`; ``"record"`` marks the process FAILED
                and keeps going.  Either way the failed process's registered
                crash cleanups run, so survivors keep their locks consistent.
            on_steplimit: ``"raise"`` (default) raises
                :class:`StepLimitExceeded` when the step budget runs out;
                ``"return"`` ends the run with ``RunResult.step_limited=True``
                and the ready-queue snapshot in ``RunResult.ready``, so the
                chaos classifiers can tell a livelock (still runnable) from a
                timer-churning wedge (nothing runnable).

        Returns:
            A :class:`RunResult` with the trace and per-process results.
        """
        if self._running:
            raise SchedulerStateError("run() is not reentrant")
        self._running = True
        if self.fault_plan is not None:
            self.fault_plan.begin()
        steps = 0
        deadlocked = False
        step_limited = False
        ready_names: List[str] = []
        graph: Optional[WaitForGraph] = None
        # Exploration policies implement observe_state(scheduler) to capture
        # the canonical fingerprint at every decision point; plain policies
        # don't define it and pay nothing (hook resolved once, not per step).
        observe_state = getattr(self.policy, "observe_state", None)
        try:
            while True:
                if steps >= self.max_steps:
                    if on_steplimit == "return":
                        step_limited = True
                        ready_names = [p.name for p in self._ready]
                        break
                    raise StepLimitExceeded(
                        "exceeded {} scheduling steps".format(self.max_steps),
                        recent_events=self.trace[-DIAGNOSTIC_TAIL:],
                        ready=[p.name for p in self._ready],
                    )
                if self.fault_plan is not None:
                    self._fire_pending_faults()
                if self._live_nondaemons == 0:
                    break  # only daemons remain; the run is over
                if not self._ready:
                    if self._timers:
                        self._advance_clock()
                        continue
                    blocked = [
                        p for p in self._processes
                        if p.state is ProcessState.BLOCKED
                    ]
                    if blocked:
                        graph = self.wait_graph()
                        if on_deadlock == "return":
                            deadlocked = True
                            break
                        raise DeadlockError(blocked, graph)
                    break  # everything finished
                if observe_state is not None:
                    observe_state(self)
                index = self.policy.choose(self._ready)
                proc = self._ready.pop(index)
                if self.fault_plan is not None:
                    fault = self.fault_plan.kill_due(
                        proc.name, proc.steps, self._time
                    )
                    if fault is not None:
                        self.kill(proc, why=fault.describe())
                        steps += 1
                        continue
                proc.state = ProcessState.RUNNING
                self._current = proc
                if self._sink is not None:
                    self._sink.on_step(proc, self._seq, self._time)
                try:
                    alive = proc.step()
                except Exception as exc:  # noqa: BLE001 - process body failure
                    proc.kill(exc)
                    self.log("failed", proc.name, repr(exc), proc=proc)
                    if not proc.daemon:
                        self._live_nondaemons -= 1
                    self._current = None
                    self._run_cleanups(proc)
                    if on_error == "raise":
                        raise ProcessFailed(proc, exc) from exc
                    alive = False
                finally:
                    self._current = None
                proc.steps += 1
                if alive and proc.state is ProcessState.RUNNING:
                    proc.state = ProcessState.READY
                    self._ready.append(proc)
                elif not alive and proc.state is ProcessState.DONE:
                    if not proc.daemon:
                        self._live_nondaemons -= 1
                    self.log("exit", proc.name, proc=proc)
                steps += 1
        finally:
            self._running = False
            self._finished = True
        results = {
            p.name: p.result
            for p in self._processes
            if p.state is ProcessState.DONE
        }
        blocked_names = [
            p.name
            for p in self._processes
            if p.state is ProcessState.BLOCKED and not p.daemon
        ]
        result = RunResult(
            trace=self.trace,
            deadlocked=deadlocked,
            blocked=blocked_names,
            steps=steps,
            time=self._time,
            results=results,
            proc_steps={p.name: p.steps for p in self._processes},
            graph=graph,
            step_limited=step_limited,
            ready=ready_names,
        )
        if self._sink is not None:
            self._sink.on_run_end(result)
        return result

    def _advance_clock(self) -> None:
        """Jump virtual time to the earliest *live* timer and fire
        everything due.

        Stale entries — cancelled by a normal wakeup, or belonging to a
        process that is no longer BLOCKED (already woken, killed, or
        finished) — are discarded without waking anyone: a process that was
        already unparked must never be woken a second time by its leftover
        timer.
        """
        while self._timers:
            __, __, entry = self._timers[0]
            if entry.cancelled or entry.proc.state is not ProcessState.BLOCKED:
                heapq.heappop(self._timers)
                continue
            break
        if not self._timers:
            return
        deadline = self._timers[0][0]
        self._time = deadline
        while self._timers and self._timers[0][0] == deadline:
            __, __, entry = heapq.heappop(self._timers)
            proc = entry.proc
            if entry.cancelled or proc.state is not ProcessState.BLOCKED:
                continue  # stale: woken or killed before the deadline
            if entry.kind == "sleep":
                proc.state = ProcessState.READY
                proc.blocked_on = None
                proc.wait_obj = None
                self._ready.append(proc)
                self.log("unblocked", proc.name, "timer", proc=proc)
            elif entry.kind == "timeout":
                handled = entry.on_fire() if entry.on_fire is not None else None
                self.log("timeout", entry.what, entry.timeout, proc=proc)
                if handled is not True:
                    self._wake(
                        proc, _Failure(WaitTimeout(entry.what, entry.timeout))
                    )
            else:  # "delayed" — a fault-plan-postponed wakeup
                self._wake(proc, entry.payload)


def run_processes(
    *bodies,
    policy: Optional[SchedulingPolicy] = None,
    names: Optional[List[str]] = None,
    on_deadlock: str = "raise",
    on_error: str = "raise",
    on_steplimit: str = "raise",
    max_steps: int = 500_000,
    preemptive: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    sink: Optional[Any] = None,
) -> RunResult:
    """Convenience wrapper: spawn each generator-returning thunk and run.

    Each element of ``bodies`` must be a zero-argument callable returning a
    generator (use closures or ``functools.partial`` to bind arguments).
    All :class:`Scheduler` and :meth:`Scheduler.run` knobs are plumbed
    through, so callers never need to hand-build a scheduler just to set
    ``preemptive``, ``on_error``, a fault plan, or an instrumentation sink.
    """
    sched = Scheduler(
        policy=policy,
        max_steps=max_steps,
        preemptive=preemptive,
        fault_plan=fault_plan,
        sink=sink,
    )
    for i, body in enumerate(bodies):
        name = names[i] if names else None
        sched.spawn(body, name=name)
    return sched.run(
        on_deadlock=on_deadlock, on_error=on_error, on_steplimit=on_steplimit
    )
