"""The deterministic cooperative scheduler.

This is substrate S1 from DESIGN.md: a discrete-event, generator-based
run-to-yield scheduler.  Every blocking construct in the library (semaphores,
monitors, serializers, path expressions) is built on exactly two scheduler
services: :meth:`Scheduler.park` (suspend the current process) and
:meth:`Scheduler.unpark` (make a suspended process runnable again).  All
nondeterminism funnels through the :class:`~repro.runtime.policies.SchedulingPolicy`,
so runs are replayable and the schedule space is enumerable.

Virtual time is discrete-event style: the clock only advances when nothing is
runnable, jumping to the earliest pending timer.  The global event sequence
number (``seq``) provides the total order used for "request time"
(information type T2) reasoning.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional

from .errors import (
    DeadlockError,
    ProcessFailed,
    SchedulerStateError,
    StepLimitExceeded,
)
from .policies import FIFOPolicy, SchedulingPolicy
from .process import ProcessState, SimProcess
from .trace import Event, RunResult, Trace


class Scheduler:
    """Owns the ready queue, virtual clock, timers, and trace.

    Args:
        policy: scheduling policy; defaults to deterministic FIFO.
        max_steps: hard step budget; exceeding it raises
            :class:`StepLimitExceeded` (livelock guard).
        preemptive: when ``True``, primitives insert extra context-switch
            points via :meth:`checkpoint`, widening the schedule space the
            explorer can reach.
    """

    def __init__(
        self,
        policy: Optional[SchedulingPolicy] = None,
        max_steps: int = 500_000,
        preemptive: bool = False,
    ) -> None:
        self.policy = policy or FIFOPolicy()
        self.policy.reset()
        self.max_steps = max_steps
        self.preemptive = preemptive
        self.trace = Trace()
        self._ready: List[SimProcess] = []
        self._processes: List[SimProcess] = []
        self._timers: list = []  # heap of (deadline, seq, process)
        self._time = 0
        self._seq = 0
        self._current: Optional[SimProcess] = None
        self._running = False
        self._finished = False
        self._live_nondaemons = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual-clock reading."""
        return self._time

    @property
    def seq(self) -> int:
        """Next global sequence number (monotone event counter)."""
        return self._seq

    @property
    def current(self) -> Optional[SimProcess]:
        """The process executing right now (``None`` between steps)."""
        return self._current

    @property
    def processes(self) -> List[SimProcess]:
        """All processes ever spawned, in spawn order."""
        return list(self._processes)

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        body: Callable[..., Generator],
        *args: Any,
        name: Optional[str] = None,
        daemon: bool = False,
    ) -> SimProcess:
        """Create a process from a generator function and make it runnable.

        ``body(*args)`` must return a generator.  Processes may spawn other
        processes while running.  ``daemon`` processes (forever-looping
        servers) do not keep the run alive: :meth:`run` returns once every
        non-daemon process has finished.
        """
        if self._finished:
            raise SchedulerStateError("cannot spawn after the run completed")
        generator = body(*args)
        if not hasattr(generator, "send"):
            raise SchedulerStateError(
                "process body {!r} is not a generator function".format(body)
            )
        pid = len(self._processes)
        proc = SimProcess(pid, name or "P{}".format(pid), generator, daemon)
        self._processes.append(proc)
        proc.state = ProcessState.READY
        proc.arrival = self._seq
        if not daemon:
            self._live_nondaemons += 1
        self._ready.append(proc)
        self.log("spawn", proc.name, proc=proc)
        return proc

    # ------------------------------------------------------------------
    # Blocking services (used by primitives, via ``yield from``)
    # ------------------------------------------------------------------
    def park(self, reason: str, obj: str = "") -> Generator:
        """Suspend the current process until :meth:`unpark`.

        Must be delegated to with ``yield from``.  Returns the value passed
        to :meth:`unpark` (used e.g. to hand a monitor's possession token to
        a signalled process).
        """
        proc = self._current
        if proc is None:
            raise SchedulerStateError("park called outside a running process")
        proc.state = ProcessState.BLOCKED
        proc.blocked_on = reason
        self.log("blocked", obj or reason)
        value = yield
        return value

    def unpark(self, proc: SimProcess, value: Any = None) -> None:
        """Make a parked process runnable, delivering ``value`` to it."""
        if proc.state is not ProcessState.BLOCKED:
            raise SchedulerStateError(
                "unpark of non-blocked process {!r}".format(proc.name)
            )
        proc.state = ProcessState.READY
        proc.blocked_on = None
        proc.set_wake_value(value)
        self._ready.append(proc)
        self.log("unblocked", proc.name)

    def checkpoint(self) -> Generator:
        """An optional context-switch point (no-op unless ``preemptive``)."""
        if self.preemptive:
            yield

    def sleep(self, ticks: int) -> Generator:
        """Suspend the current process for ``ticks`` units of virtual time."""
        if ticks <= 0:
            yield from self.checkpoint()
            return
        proc = self._current
        if proc is None:
            raise SchedulerStateError("sleep called outside a running process")
        deadline = self._time + ticks
        heapq.heappush(self._timers, (deadline, self._next_seq(), proc))
        proc.state = ProcessState.BLOCKED
        proc.blocked_on = "sleep({})".format(ticks)
        self.log("blocked", "sleep", ticks)
        yield

    # ------------------------------------------------------------------
    # Tracing
    # ------------------------------------------------------------------
    def log(
        self,
        kind: str,
        obj: str = "",
        detail: Any = None,
        proc: Optional[SimProcess] = None,
    ) -> Event:
        """Append an event to the trace, attributed to ``proc`` (default:
        the current process)."""
        actor = proc if proc is not None else self._current
        pid = actor.pid if actor is not None else -1
        pname = actor.name if actor is not None else "<sched>"
        event = Event(self._next_seq(), self._time, pid, pname, kind, obj, detail)
        self.trace.append(event)
        return event

    def _next_seq(self) -> int:
        value = self._seq
        self._seq += 1
        return value

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------
    def run(
        self,
        on_deadlock: str = "raise",
        on_error: str = "raise",
    ) -> RunResult:
        """Execute until every process finishes (or deadlock / step limit).

        Args:
            on_deadlock: ``"raise"`` (default) raises :class:`DeadlockError`;
                ``"return"`` ends the run with ``RunResult.deadlocked=True``
                (used by experiment E7, which *wants* the deadlock).
            on_error: ``"raise"`` wraps a failing process body in
                :class:`ProcessFailed`; ``"record"`` marks the process FAILED
                and keeps going.

        Returns:
            A :class:`RunResult` with the trace and per-process results.
        """
        if self._running:
            raise SchedulerStateError("run() is not reentrant")
        self._running = True
        steps = 0
        deadlocked = False
        try:
            while True:
                if steps >= self.max_steps:
                    raise StepLimitExceeded(
                        "exceeded {} scheduling steps".format(self.max_steps)
                    )
                if self._live_nondaemons == 0:
                    break  # only daemons remain; the run is over
                if not self._ready:
                    if self._timers:
                        self._advance_clock()
                        continue
                    blocked = [
                        p for p in self._processes
                        if p.state is ProcessState.BLOCKED
                    ]
                    if blocked:
                        if on_deadlock == "return":
                            deadlocked = True
                            break
                        raise DeadlockError(blocked)
                    break  # everything finished
                index = self.policy.choose(self._ready)
                proc = self._ready.pop(index)
                proc.state = ProcessState.RUNNING
                self._current = proc
                try:
                    alive = proc.step()
                except Exception as exc:  # noqa: BLE001 - process body failure
                    proc.kill(exc)
                    self.log("failed", proc.name, repr(exc), proc=proc)
                    if not proc.daemon:
                        self._live_nondaemons -= 1
                    if on_error == "raise":
                        raise ProcessFailed(proc, exc) from exc
                    alive = False
                finally:
                    self._current = None
                if alive and proc.state is ProcessState.RUNNING:
                    proc.state = ProcessState.READY
                    self._ready.append(proc)
                elif not alive and proc.state is ProcessState.DONE:
                    if not proc.daemon:
                        self._live_nondaemons -= 1
                    self.log("exit", proc.name, proc=proc)
                steps += 1
        finally:
            self._running = False
            self._finished = True
        results = {
            p.name: p.result
            for p in self._processes
            if p.state is ProcessState.DONE
        }
        blocked_names = [
            p.name
            for p in self._processes
            if p.state is ProcessState.BLOCKED and not p.daemon
        ]
        return RunResult(
            trace=self.trace,
            deadlocked=deadlocked,
            blocked=blocked_names,
            steps=steps,
            time=self._time,
            results=results,
        )

    def _advance_clock(self) -> None:
        """Jump virtual time to the earliest timer and wake everything due."""
        deadline = self._timers[0][0]
        self._time = deadline
        while self._timers and self._timers[0][0] == deadline:
            __, __, proc = heapq.heappop(self._timers)
            proc.state = ProcessState.READY
            proc.blocked_on = None
            self._ready.append(proc)
            self.log("unblocked", proc.name, "timer", proc=proc)


def run_processes(
    *bodies,
    policy: Optional[SchedulingPolicy] = None,
    names: Optional[List[str]] = None,
    on_deadlock: str = "raise",
    max_steps: int = 500_000,
) -> RunResult:
    """Convenience wrapper: spawn each generator-returning thunk and run.

    Each element of ``bodies`` must be a zero-argument callable returning a
    generator (use closures or ``functools.partial`` to bind arguments).
    """
    sched = Scheduler(policy=policy, max_steps=max_steps)
    for i, body in enumerate(bodies):
        name = names[i] if names else None
        sched.spawn(body, name=name)
    return sched.run(on_deadlock=on_deadlock)
