"""Buffer resources: the bounded buffer (T5) and the one-slot buffer (T6).

Both detect synchronization failures at the resource level: overflow,
underflow, overlapping operations, and (for the one-slot buffer) broken
put/get alternation all raise :class:`ResourceIntegrityError`.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from .base import check


class BoundedBuffer:
    """An unsynchronized FIFO buffer of fixed capacity.

    Operations are generators with an internal yield point, so an unprotected
    concurrent put/put or put/get interleaving is observable.  The surrounding
    synchronization scheme must guarantee:

    * no ``put`` when full, no ``get`` when empty (constraint
      ``buffer_bounds``, local state T5);
    * operations do not overlap (constraint ``buffer_mutex``).
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: List[Any] = []
        self._in_operation: Optional[str] = None

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of items currently stored."""
        return len(self._items)

    @property
    def full(self) -> bool:
        """True when at capacity (the T5 condition for excluding put)."""
        return len(self._items) >= self.capacity

    @property
    def empty(self) -> bool:
        """True when no items (the T5 condition for excluding get)."""
        return not self._items

    def peek(self) -> Any:
        """The item :meth:`get` would return, without removing it (used by
        CSP servers whose send-arm value must be known before the select)."""
        check(not self.empty, "peek into empty buffer")
        return self._items[0]

    # ------------------------------------------------------------------
    def _begin(self, op: str) -> None:
        check(
            self._in_operation is None,
            "buffer operation {} overlaps {}".format(op, self._in_operation),
        )
        self._in_operation = op

    def _finish(self) -> None:
        self._in_operation = None

    def put(self, item: Any) -> Generator:
        """Append an item; integrity failure if full or overlapping."""
        self._begin("put")
        check(not self.full, "put into full buffer")
        yield
        self._items.append(item)
        self._finish()

    def get(self) -> Generator:
        """Remove and return the oldest item; integrity failure if empty or
        overlapping."""
        self._begin("get")
        check(not self.empty, "get from empty buffer")
        yield
        item = self._items.pop(0)
        self._finish()
        return item


class SlotBuffer:
    """The one-slot buffer of Campbell–Habermann [7]: a single cell whose
    put and get must strictly alternate, starting with put.

    The alternation requirement is *history* information (T6): whether the
    last completed operation was a put or a get.
    """

    def __init__(self) -> None:
        self._value: Any = None
        self._occupied = False
        self._in_operation: Optional[str] = None

    @property
    def occupied(self) -> bool:
        """True while the slot holds an unconsumed value."""
        return self._occupied

    def peek(self) -> Any:
        """The value :meth:`get` would return, without consuming it."""
        check(self._occupied, "peek into vacant slot")
        return self._value

    def _begin(self, op: str) -> None:
        check(
            self._in_operation is None,
            "slot operation {} overlaps {}".format(op, self._in_operation),
        )
        self._in_operation = op

    def put(self, item: Any) -> Generator:
        """Fill the slot; integrity failure if already occupied."""
        self._begin("put")
        check(not self._occupied, "put into occupied slot (missed get)")
        yield
        self._value = item
        self._occupied = True
        self._in_operation = None

    def get(self) -> Generator:
        """Empty the slot; integrity failure if vacant."""
        self._begin("get")
        check(self._occupied, "get from vacant slot (missed put)")
        yield
        item = self._value
        self._value = None
        self._occupied = False
        self._in_operation = None
        return item
