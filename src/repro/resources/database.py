"""The readers/writers database resource (Courtois–Heymans–Parnas [8]).

An unsynchronized store whose read and write operations carry internal yield
points, making torn reads and overlapping writes observable.  The
synchronization scheme around it must provide the ``rw_exclusion``
constraint: concurrent reads are fine; a write excludes everything.
"""

from __future__ import annotations

from typing import Any, Generator

from .base import check


class Database:
    """A single-value versioned store with race detection.

    Attributes:
        reads_served / writes_served: completed-operation counters, useful
            as ground truth in workload assertions.
    """

    def __init__(self, initial: Any = 0) -> None:
        self._value = initial
        self._version = 0
        self._active_readers = 0
        self._writer_active = False
        self.reads_served = 0
        self.writes_served = 0

    # ------------------------------------------------------------------
    @property
    def value(self) -> Any:
        """Current committed value."""
        return self._value

    @property
    def version(self) -> int:
        """Number of committed writes."""
        return self._version

    @property
    def active_readers(self) -> int:
        """Readers currently inside :meth:`read`."""
        return self._active_readers

    @property
    def writer_active(self) -> bool:
        """True while a :meth:`write` is in progress."""
        return self._writer_active

    # ------------------------------------------------------------------
    def read(self) -> Generator:
        """Read the value; integrity failure on overlap with a write.

        The version is sampled before and after the internal yield: a torn
        read (write committed mid-read) is detected even if the writer flag
        was clear at both ends.
        """
        check(not self._writer_active, "read started during a write")
        self._active_readers += 1
        version_before = self._version
        yield
        check(
            not self._writer_active and self._version == version_before,
            "torn read: write overlapped the read",
        )
        self._active_readers -= 1
        self.reads_served += 1
        return self._value

    def write(self, value: Any) -> Generator:
        """Replace the value; integrity failure on any overlap."""
        check(not self._writer_active, "two writes overlapped")
        check(
            self._active_readers == 0, "write started while reads in progress"
        )
        self._writer_active = True
        yield
        check(
            self._active_readers == 0, "read slipped in during a write"
        )
        self._value = value
        self._version += 1
        self._writer_active = False
        self.writes_served += 1
        return self._version
