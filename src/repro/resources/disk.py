"""The moving-head disk resource (Hoare [13]'s disk head scheduler).

The disk serves one transfer at a time; each transfer seeks the head to the
requested track.  The scheduler around it decides the *order* of service —
the elevator/SCAN discipline uses the request's track parameter (information
type T3).  The resource records served order and total seek distance so
benches can compare scheduling disciplines quantitatively (experiment E10
context) and the oracle can validate SCAN order.
"""

from __future__ import annotations

from typing import Generator, List

from .base import check


class Disk:
    """An unsynchronized disk with ``tracks`` cylinders (0-based)."""

    def __init__(self, tracks: int = 200, start_track: int = 0) -> None:
        if tracks <= 0:
            raise ValueError("tracks must be positive")
        if not 0 <= start_track < tracks:
            raise ValueError("start_track out of range")
        self.tracks = tracks
        self.head = start_track
        self.total_seek = 0
        self.served: List[int] = []
        self._busy = False

    @property
    def busy(self) -> bool:
        """True while a transfer is in progress."""
        return self._busy

    def transfer(self, track: int) -> Generator:
        """Seek to ``track`` and perform one transfer.

        Integrity failure on overlapping transfers (the surrounding
        scheduler must serialize) or out-of-range tracks.
        """
        check(0 <= track < self.tracks, "track {} out of range".format(track))
        check(not self._busy, "overlapping disk transfers")
        self._busy = True
        self.total_seek += abs(track - self.head)
        yield  # the seek + rotational latency
        self.head = track
        self.served.append(track)
        self._busy = False


def fcfs_seek_distance(start: int, requests: List[int]) -> int:
    """Total seek distance if requests were served strictly in order —
    the baseline the elevator discipline is measured against."""
    distance = 0
    head = start
    for track in requests:
        distance += abs(track - head)
        head = track
    return distance


def scan_order(start: int, requests: List[int], ascending: bool = True) -> List[int]:
    """The elevator service order for a *batch* of pending requests.

    Serves everything at-or-ahead of the head in the current direction,
    then reverses.  Reference implementation used by tests and the oracle.
    """
    pending = sorted(requests)
    order: List[int] = []
    head = start
    up = ascending
    while pending:
        if up:
            ahead = [t for t in pending if t >= head]
            if not ahead:
                up = False
                continue
            nxt = ahead[0]
        else:
            behind = [t for t in pending if t <= head]
            if not behind:
                up = True
                continue
            nxt = behind[-1]
        order.append(nxt)
        pending.remove(nxt)
        head = nxt
    return order
