"""The shared-resource model of Section 2.

The paper models a shared resource as an abstract data type and requires the
*protected resource* structure::

    protected resource
        resource        -- the unsynchronized abstraction
        synchronizer    -- the synchronization scheme

Unsynchronized resources in this package are plain Python objects whose
operations are generators with deliberate internal yield points: a failed
synchronization scheme produces *observable* interleavings, which the
resources turn into :class:`ResourceIntegrityError` — so "the exclusion
constraint was violated" is a hard failure, not a silent corruption.

:class:`ProtectedResource` is the generic §2 composition: it wraps each
resource operation in ``synchronizer.before`` / ``synchronizer.after`` hooks
and emits the uniform ``request`` / ``op_start`` / ``op_end`` trace events
the oracles consume.
"""

from __future__ import annotations

from typing import Any, Generator, Tuple

from ..runtime.errors import RuntimeBaseError
from ..runtime.scheduler import Scheduler


class ResourceIntegrityError(RuntimeBaseError):
    """An unsynchronized resource was driven into an inconsistent state —
    evidence that the synchronization scheme around it is broken."""


class Synchronizer:
    """Hook interface for :class:`ProtectedResource`.

    ``before``/``after`` are generator functions so they can block; the
    default implementations do nothing (an unprotected resource).
    """

    def before(self, op: str, args: Tuple[Any, ...]) -> Generator:
        """Runs before the resource operation; may block."""
        return
        yield  # pragma: no cover - generator marker

    def after(self, op: str, args: Tuple[Any, ...]) -> Generator:
        """Runs after the resource operation; may block."""
        return
        yield  # pragma: no cover - generator marker

    def describe(self) -> str:
        """Label used in traces and reports."""
        return type(self).__name__


class ProtectedResource:
    """The §2 structure: ``protected resource = resource + synchronizer``.

    Args:
        sched: owning scheduler.
        resource: the unsynchronized resource object; operation ``op`` is
            the generator method ``resource.op``.
        synchronizer: the synchronization scheme.
        name: trace prefix for operations (events are ``<name>.<op>``).
    """

    def __init__(
        self,
        sched: Scheduler,
        resource: Any,
        synchronizer: Synchronizer,
        name: str = "shared",
    ) -> None:
        self._sched = sched
        self.resource = resource
        self.synchronizer = synchronizer
        self.name = name

    def invoke(self, op: str, *args: Any) -> Generator:
        """Run one synchronized resource operation; returns its value."""
        method = getattr(self.resource, op)
        self._sched.log("request", "{}.{}".format(self.name, op), args or None)
        yield from self.synchronizer.before(op, args)
        self._sched.log("op_start", "{}.{}".format(self.name, op))
        result = yield from method(*args)
        self._sched.log("op_end", "{}.{}".format(self.name, op))
        yield from self.synchronizer.after(op, args)
        return result


def check(condition: bool, message: str) -> None:
    """Raise :class:`ResourceIntegrityError` unless ``condition`` holds."""
    if not condition:
        raise ResourceIntegrityError(message)
