"""Unsynchronized resources and the §2 protected-resource structure (S7).

Every resource operation is a generator with internal yield points, so a
broken synchronization scheme produces an observable interleaving, which the
resource converts into :class:`ResourceIntegrityError`.
"""

from .base import (
    ProtectedResource,
    ResourceIntegrityError,
    Synchronizer,
    check,
)
from .buffer import BoundedBuffer, SlotBuffer
from .database import Database
from .disk import Disk, fcfs_seek_distance, scan_order

__all__ = [
    "BoundedBuffer",
    "Database",
    "Disk",
    "ProtectedResource",
    "ResourceIntegrityError",
    "SlotBuffer",
    "Synchronizer",
    "check",
    "fcfs_seek_distance",
    "scan_order",
]
