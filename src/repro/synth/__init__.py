"""Synthesis & repair: CEGIS over the explore engine.

The paper evaluates synchronization mechanisms by writing solutions by
hand and judging them; this package closes the loop by *searching* for
solutions.  A bounded grammar of candidate synchronizers (path programs +
guard predicates, :mod:`repro.synth.grammar`) is enumerated smallest
first; a CEGIS loop (:mod:`repro.synth.cegis`) judges each candidate with
the explore engine as verifier, banking ddmin-minimized counterexample
schedules that reject later candidates without exploration; every oracle
verdict is logged to a replayable cache (:mod:`repro.synth.cache`) so
interrupted runs resume for free.  The flagship application
(:mod:`repro.synth.repair`) auto-repairs the paper's own footnote-3
anomaly in its Figure-1 readers/writers path expression.
"""

from .cache import (
    CORRECT,
    INCONCLUSIVE,
    NO_CONCURRENCY,
    ORACLE_CACHE_SCHEMA,
    VIOLATION,
    OracleCache,
    cache_key,
    replay_verdict,
)
from .candidates import (
    ATOM_EVALS,
    CONCURRENCY_WORKLOAD,
    FOOTNOTE3_WORKLOAD,
    SynthGuardedRW,
    reads_overlap,
    run_candidate_footnote3,
    run_candidate_two_readers,
)
from .cegis import (
    Counterexample,
    SynthConfig,
    SynthOutcome,
    SynthStats,
    synthesize,
)
from .grammar import (
    Candidate,
    PathProgram,
    enumerate_candidates,
    enumerate_path_programs,
)
from .repair import RepairReport, repair_footnote3

__all__ = [
    "ATOM_EVALS",
    "CONCURRENCY_WORKLOAD",
    "CORRECT",
    "Candidate",
    "Counterexample",
    "FOOTNOTE3_WORKLOAD",
    "INCONCLUSIVE",
    "NO_CONCURRENCY",
    "ORACLE_CACHE_SCHEMA",
    "OracleCache",
    "PathProgram",
    "RepairReport",
    "SynthConfig",
    "SynthGuardedRW",
    "SynthOutcome",
    "SynthStats",
    "VIOLATION",
    "cache_key",
    "enumerate_candidates",
    "enumerate_path_programs",
    "reads_overlap",
    "repair_footnote3",
    "replay_verdict",
    "run_candidate_footnote3",
    "run_candidate_two_readers",
    "synthesize",
]
