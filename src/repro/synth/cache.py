"""The replayable oracle cache: logged verdict I/O for resumable synthesis.

Modelled on easyila's ``OracleInterface`` (SNIPPETS.md): an oracle call is
expensive (here: an exhaustive exploration), so every call's inputs and
outputs are logged to disk, and a later run presented with the same inputs
replays the logged answer instead of calling the oracle again.  An
interrupted ``repro synth`` resumes exactly where it stopped — already-
judged candidates cost one file read each.

The cache key is the content fingerprint of ``(candidate, workload id,
oracle battery)`` — the full input of the verdict.  Changing the workload,
the battery, or the candidate grammar changes the key, so stale verdicts
are never replayed; they are simply never looked up again.

Each entry also stores the *witness* decision string that produced a
violation verdict (the logged I/O proper): :func:`replay_verdict` re-runs
that single schedule and re-derives the verdict without any exploration,
which is how the determinism tests validate the cache and how a skeptical
caller can audit any cached rejection in one run.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Any, Dict, List, Optional, Tuple

from ..obs.runstore import canonical_json
from .grammar import Candidate

#: Cache-entry schema.
ORACLE_CACHE_SCHEMA = 1

#: Default location, beside the run store's other artifacts.
DEFAULT_ROOT = os.path.join(".repro", "runs", "synthesis")

#: Verdict statuses.
CORRECT = "correct"
VIOLATION = "violation"
NO_CONCURRENCY = "no_concurrency"
INCONCLUSIVE = "inconclusive"


def cache_key(candidate: Candidate, workload: str,
              battery_names: Tuple[str, ...]) -> str:
    """Content fingerprint of one oracle call's full input."""
    payload = repr((candidate.paths_text, candidate.read_guard,
                    candidate.write_guard, workload,
                    tuple(battery_names))).encode()
    return hashlib.blake2b(payload, digest_size=12).hexdigest()


class OracleCache:
    """Filesystem log of synthesis oracle verdicts, one file per key."""

    def __init__(self, root: str = DEFAULT_ROOT) -> None:
        self.root = root

    def _path(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    # ------------------------------------------------------------------
    def lookup(self, candidate: Candidate, workload: str,
               battery_names: Tuple[str, ...]) -> Optional[Dict[str, Any]]:
        """The logged verdict for this exact oracle input, or ``None``."""
        path = self._path(cache_key(candidate, workload, battery_names))
        if not os.path.exists(path):
            return None
        with open(path) as fh:
            entry = json.load(fh)
        if int(entry.get("schema", 1)) > ORACLE_CACHE_SCHEMA:
            return None
        return entry.get("verdict")

    def store(self, candidate: Candidate, workload: str,
              battery_names: Tuple[str, ...],
              verdict: Dict[str, Any]) -> str:
        """Log one oracle call; returns the entry path."""
        os.makedirs(self.root, exist_ok=True)
        key = cache_key(candidate, workload, battery_names)
        entry = {
            "schema": ORACLE_CACHE_SCHEMA,
            "key": key,
            "workload": workload,
            "battery": list(battery_names),
            "candidate": candidate.to_dict(),
            "verdict": verdict,
        }
        path = self._path(key)
        with open(path, "w") as fh:
            fh.write(canonical_json(entry))
        return path

    def entries(self) -> List[Dict[str, Any]]:
        """Every logged entry, key-sorted (inspection/reporting)."""
        if not os.path.isdir(self.root):
            return []
        out = []
        for name in sorted(os.listdir(self.root)):
            if name.endswith(".json"):
                with open(os.path.join(self.root, name)) as fh:
                    out.append(json.load(fh))
        return out


def replay_verdict(candidate: Candidate,
                   verdict: Dict[str, Any]) -> List[str]:
    """Re-derive a violation verdict from its logged witness in ONE run.

    Runs the witness decision string against the candidate and returns the
    battery's messages — non-empty confirms the logged rejection without
    re-exploring.  Returns ``[]`` for verdicts that carry no witness
    (``correct`` entries are certified by exhaustive exploration, which a
    single replay cannot reproduce)."""
    from ..runtime.policies import ScriptedPolicy
    from ..verify.registry import battery
    from .candidates import run_candidate_footnote3

    witness = verdict.get("witness")
    if witness is None:
        # An empty list is a real witness (the default schedule violates);
        # only a *missing* witness is non-replayable.
        return []
    check = battery(*verdict.get("battery",
                                 ("rw_exclusion", "footnote3_strict",
                                  "all_served")))
    run = run_candidate_footnote3(candidate,
                                  ScriptedPolicy([int(d) for d in witness]))
    return check(run)
