"""The CEGIS loop: counterexample-guided search for a correct synchronizer.

The loop (after Samanta's synthesis-of-synchronization blueprint, with the
explore engine as the verifier) judges candidates smallest-first; each
candidate passes through three gates of sharply increasing cost:

1. **Oracle-cache lookup** (one file read) — a previous run already judged
   this exact candidate; replay the logged verdict
   (:mod:`repro.synth.cache`).
2. **Counterexample screening** (one scheduled run per banked trace) —
   every violation found so far is banked as a ddmin-minimized decision
   string; a new candidate that fails any banked schedule is rejected
   without exploration.  Replaying a decision string against a *different*
   candidate is well-defined because scripted policies clamp decisions to
   the live ready-set, and sound as a rejector because the battery judges
   the actual resulting run.
3. **Full verification** (an exhaustive pruned exploration) — only
   candidates that survive screening pay this.  Violators contribute a
   fresh minimized counterexample to the bank; survivors face the
   reader-concurrency probe (a correct repair must still *admit* a
   schedule with overlapping reads — safety via serialization is not a
   repair), for which previously-found overlap witnesses are replayed
   before any new search is spent.

Determinism: candidate order, exploration, ddmin, and screening order are
all deterministic, so two runs with the same configuration judge the same
candidates the same way — which is what lets the oracle cache resume an
interrupted run verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..explore.engine import ExplorationEngine
from ..explore.minimize import minimize_witness
from ..obs.runstore import FingerprintCache
from ..runtime.policies import ScriptedPolicy
from ..verify.registry import SYNTH_RW_BATTERY, battery
from .cache import (
    CORRECT,
    INCONCLUSIVE,
    NO_CONCURRENCY,
    VIOLATION,
    OracleCache,
)
from .candidates import (
    CONCURRENCY_WORKLOAD,
    FOOTNOTE3_WORKLOAD,
    reads_overlap,
    run_candidate_footnote3,
    run_candidate_two_readers,
)
from .grammar import Candidate, enumerate_candidates


@dataclass(frozen=True)
class Counterexample:
    """One banked, minimized violating schedule."""

    decisions: Tuple[int, ...]
    messages: Tuple[str, ...]
    source: str  # fingerprint of the candidate that produced it


@dataclass
class SynthConfig:
    """Search-space and budget knobs for one synthesis run."""

    max_size: int = 8
    max_candidates: int = 600
    max_runs: int = 4000          # exploration budget per candidate
    max_depth: int = 60
    concurrency_max_runs: int = 400
    include_serializer: bool = True
    use_cache: bool = True
    cache_root: Optional[str] = None
    use_fp_cache: bool = True

    @classmethod
    def fast(cls) -> "SynthConfig":
        """The CI smoke configuration: monitor+path families only."""
        return cls(max_size=7, max_candidates=200, max_runs=2000,
                   include_serializer=False)


@dataclass
class SynthStats:
    """E20's raw numbers: what each gate saved."""

    candidates_tried: int = 0
    cache_hits: int = 0
    cex_rejected: int = 0
    cex_replays: int = 0
    explored: int = 0
    exploration_runs: int = 0
    overlap_searches: int = 0
    overlap_reused: int = 0
    minimize_tests: int = 0
    bank_size: int = 0
    by_family: Dict[str, int] = field(default_factory=dict)

    @property
    def explorations_skipped(self) -> int:
        """Candidates judged without a full exploration."""
        return self.cache_hits + self.cex_rejected

    def to_dict(self) -> Dict[str, object]:
        return {
            "candidates_tried": self.candidates_tried,
            "cache_hits": self.cache_hits,
            "cex_rejected": self.cex_rejected,
            "cex_replays": self.cex_replays,
            "explored": self.explored,
            "exploration_runs": self.exploration_runs,
            "overlap_searches": self.overlap_searches,
            "overlap_reused": self.overlap_reused,
            "minimize_tests": self.minimize_tests,
            "bank_size": self.bank_size,
            "explorations_skipped": self.explorations_skipped,
            "by_family": dict(sorted(self.by_family.items())),
        }


@dataclass
class SynthOutcome:
    """Result of one synthesis run."""

    winner: Optional[Candidate]
    stats: SynthStats
    bank: List[Counterexample]
    verification: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.winner is not None


def synthesize(
    config: Optional[SynthConfig] = None,
    log: Optional[Callable[[str], None]] = None,
) -> SynthOutcome:
    """Search the candidate grammar for the smallest correct synchronizer.

    Returns the first (therefore minimal) candidate whose footnote-3
    exploration is exhaustively violation-free AND which admits a
    reader-overlap schedule — or ``winner=None`` when the bounded space
    contains no such candidate (raise ``max_size``).
    """
    config = config or SynthConfig()
    say = log or (lambda message: None)
    check = battery(*SYNTH_RW_BATTERY)
    cache = (OracleCache(config.cache_root) if config.cache_root
             else OracleCache()) if config.use_cache else None
    fp_cache = FingerprintCache() if config.use_fp_cache else None
    stats = SynthStats()
    bank: List[Counterexample] = []
    overlap_witnesses: List[Tuple[int, ...]] = []

    def store(candidate: Candidate, verdict: Dict[str, object]) -> None:
        if cache is not None:
            verdict = dict(verdict)
            verdict["battery"] = list(SYNTH_RW_BATTERY)
            cache.store(candidate, FOOTNOTE3_WORKLOAD, SYNTH_RW_BATTERY,
                        verdict)

    def bank_add(cex: Counterexample) -> None:
        if all(c.decisions != cex.decisions for c in bank):
            bank.append(cex)
            stats.bank_size = len(bank)

    for candidate in enumerate_candidates(
            config.max_size, include_serializer=config.include_serializer):
        if stats.candidates_tried >= config.max_candidates:
            say("candidate budget exhausted")
            break
        stats.candidates_tried += 1
        family = candidate.family
        stats.by_family[family] = stats.by_family.get(family, 0) + 1

        # Gate 1: the oracle cache.
        cached = (cache.lookup(candidate, FOOTNOTE3_WORKLOAD,
                               SYNTH_RW_BATTERY)
                  if cache is not None else None)
        if cached is not None:
            stats.cache_hits += 1
            if cached.get("witness") is not None:
                bank_add(Counterexample(
                    decisions=tuple(int(d) for d in cached["witness"]),
                    messages=tuple(cached.get("messages", ())),
                    source=candidate.fingerprint,
                ))
            if cached.get("status") == CORRECT:
                say("cache: {} already certified".format(
                    candidate.describe()))
                return SynthOutcome(candidate, stats, bank,
                                    verification=dict(cached))
            continue

        # Gate 2: banked counterexamples, one scripted run each.
        screened = None
        for cex in bank:
            stats.cex_replays += 1
            run = run_candidate_footnote3(
                candidate, ScriptedPolicy(list(cex.decisions)))
            messages = check(run)
            if messages:
                screened = (cex, messages)
                break
        if screened is not None:
            cex, messages = screened
            stats.cex_rejected += 1
            store(candidate, {
                "status": VIOLATION,
                "via": "counterexample",
                "witness": list(cex.decisions),
                "messages": list(messages),
                "runs": 1,
            })
            continue

        # Gate 3: full exploration.
        warm = None
        if fp_cache is not None:
            warm = fp_cache.load("synth_footnote3", "synth",
                                 variant=candidate.fingerprint,
                                 max_depth=config.max_depth)
        runner = (lambda cand: lambda policy:
                  run_candidate_footnote3(cand, policy))(candidate)
        engine = ExplorationEngine(runner, max_runs=config.max_runs,
                                   max_depth=config.max_depth, prune=True)
        result = engine.explore(check, warm=warm)
        stats.explored += 1
        stats.exploration_runs += result.runs
        if fp_cache is not None and warm is not None:
            fp_cache.save("synth_footnote3", "synth", warm,
                          variant=candidate.fingerprint,
                          max_depth=config.max_depth,
                          exhausted=result.exhausted)
        if not result.exhausted:
            say("budget hit on {} — rejected as inconclusive".format(
                candidate.describe()))
            store(candidate, {"status": INCONCLUSIVE,
                              "runs": result.runs})
            continue
        if not result.ok:
            minimized = minimize_witness(runner, check, result.witness)
            stats.minimize_tests += minimized.tests
            bank_add(Counterexample(
                decisions=minimized.minimized,
                messages=minimized.messages,
                source=candidate.fingerprint,
            ))
            say("size {} {}: violated ({} runs; banked cex of {} "
                "decision(s))".format(
                    candidate.size, candidate.describe(), result.runs,
                    len(minimized.minimized)))
            store(candidate, {
                "status": VIOLATION,
                "via": "exploration",
                "witness": list(minimized.minimized),
                "messages": list(minimized.messages),
                "runs": result.runs,
            })
            continue

        # Safety holds on every schedule; now demand reader concurrency.
        overlap: Optional[Tuple[int, ...]] = None
        for witness in overlap_witnesses:
            run = run_candidate_two_readers(
                candidate, ScriptedPolicy(list(witness)))
            if reads_overlap(run):
                overlap = witness
                stats.overlap_reused += 1
                break
        if overlap is None:
            stats.overlap_searches += 1
            probe = ExplorationEngine(
                (lambda cand: lambda policy:
                 run_candidate_two_readers(cand, policy))(candidate),
                max_runs=config.concurrency_max_runs,
                max_depth=config.max_depth, prune=True)
            overlap = probe.find_schedule(reads_overlap)
            if overlap is not None:
                overlap_witnesses.append(overlap)
        if overlap is None:
            say("size {} {}: safe but serializes readers — rejected".format(
                candidate.size, candidate.describe()))
            store(candidate, {"status": NO_CONCURRENCY,
                              "runs": result.runs})
            continue

        verification = {
            "status": CORRECT,
            "runs": result.runs,
            "states": result.states,
            "pruned": result.pruned,
            "overlap_witness": list(overlap),
            "concurrency_workload": CONCURRENCY_WORKLOAD,
        }
        say("size {} {}: CORRECT ({} schedules, exhaustive)".format(
            candidate.size, candidate.describe(), result.runs))
        store(candidate, verification)
        return SynthOutcome(candidate, stats, bank,
                            verification=verification)

    return SynthOutcome(None, stats, bank)
