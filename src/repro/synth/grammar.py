"""The candidate grammar: bounded, smallest-first enumeration of
readers/writers synchronizers.

A candidate (:class:`Candidate`) is a *path program* plus one *guard
conjunction* per operation, executed on the
:class:`~repro.mechanisms.pathexpr.extended.GuardedPathResource` substrate
(see :mod:`repro.synth.candidates`).  The one grammar spans the three
predicate families the paper's mechanisms suggest:

* **path-expression terms** — enumerated path programs over ``read`` /
  ``write`` built from the paper's own combinators (selection ``,``,
  sequence ``;``, burst ``{}``), including the unconstrained two-path
  program that delegates everything to guards;
* **monitor wait-condition predicates** — guard atoms over occupancy and
  demand counters (``active(op)``, ``pending(op)``), the vocabulary a
  monitor's condition-variable wait loops range over;
* **serializer queue predicates** — guard atoms over the parked-request
  queue (``waiting(op)``), the vocabulary of serializer crowd/queue
  conditions.

Enumeration is **deterministic and smallest-first**: candidates are
ordered by total size (path-AST nodes + guard atoms), ties broken
lexicographically — so the first correct candidate the CEGIS loop meets is
a minimal one, and re-runs enumerate identically (the oracle cache and
counterexample bank rely on that).

The atom vocabulary is deliberately *relational* rather than syntactic:
``pending(op)`` counts requests announced but not yet started — exactly
the quantity the strict Courtois–Heymans–Parnas oracle
(:func:`repro.verify.oracles.check_readers_priority_strict`) is defined
over — so the grammar can express the condition the paper's Figure-1
program fails to enforce.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from ..mechanisms.pathexpr.ast import Burst, Name, PathExpr, PathNode, Selection, Sequence

#: The two operations every candidate synchronizes.
OPS = ("read", "write")

#: Guard-atom vocabulary, per guarded operation.  Atoms are named by the
#: condition they assert; evaluation lives in repro.synth.candidates.
#: A read may be conditioned on writer state; a write on reader demand /
#: occupancy and on other writers.  ``waiting`` atoms are the serializer
#: family (parked-queue predicates); ``pending``/``active`` the monitor
#: family (counter predicates).
READ_ATOMS: Tuple[str, ...] = (
    "active(write)==0",
    "pending(write)==0",
    "waiting(write)==0",
)
WRITE_ATOMS: Tuple[str, ...] = (
    "pending(read)==0",
    "active(read)==0",
    "waiting(read)==0",
    "active(write)==0",
)


def _node_size(node: PathNode) -> int:
    """AST size: one per operation occurrence and one per combinator."""
    if isinstance(node, Name):
        return 1
    if isinstance(node, Burst):
        return 1 + _node_size(node.body)
    if isinstance(node, (Sequence, Selection)):
        children = (node.elements if isinstance(node, Sequence)
                    else node.alternatives)
        return 1 + sum(_node_size(child) for child in children)
    if isinstance(node, PathExpr):
        return _node_size(node.body)
    raise TypeError("unsized node {!r}".format(node))


@dataclass(frozen=True)
class PathProgram:
    """One enumerated path program: canonical text plus its grammar size."""

    text: str
    size: int


def enumerate_path_programs() -> List[PathProgram]:
    """Every path program in the grammar, smallest first.

    Shapes, with ``r`` ranging over ``read`` / ``{ read }`` and ``w`` over
    ``write`` / ``{ write }``:

    * ``path r , w end`` — exclusive selection (the paper's isolated
      exclusion path when ``r`` is the read burst);
    * ``path r ; w end`` and ``path w ; r end`` — strict alternation;
    * ``path r end`` + ``path w end`` — two independent paths, i.e. **no**
      path constraint: the monitor-family substrate where guards carry the
      entire discipline.

    Each operation appears exactly once per program (repetition is already
    implicit in path semantics), so the space is finite by construction.
    """
    read_terms: List[PathNode] = [Name("read"), Burst(Name("read"))]
    write_terms: List[PathNode] = [Name("write"), Burst(Name("write"))]
    programs: List[PathProgram] = []
    for r, w in itertools.product(read_terms, write_terms):
        shapes: List[PathNode] = [
            Selection((r, w)),
            Sequence((r, w)),
            Sequence((w, r)),
        ]
        for body in shapes:
            expr = PathExpr(body)
            programs.append(PathProgram(
                text=expr.unparse() + "\n",
                size=_node_size(body),
            ))
    for r, w in itertools.product(read_terms, write_terms):
        text = PathExpr(r).unparse() + "\n" + PathExpr(w).unparse() + "\n"
        programs.append(PathProgram(
            text=text, size=_node_size(r) + _node_size(w)))
    programs.sort(key=lambda p: (p.size, p.text))
    return programs


def _conjunctions(atoms: Tuple[str, ...]) -> List[Tuple[str, ...]]:
    """All conjunctions (subsets) of ``atoms``, smallest first, in the
    vocabulary's own order within each length."""
    out: List[Tuple[str, ...]] = []
    for length in range(len(atoms) + 1):
        out.extend(itertools.combinations(atoms, length))
    return out


@dataclass(frozen=True)
class Candidate:
    """One candidate synchronizer: a path program plus per-op guards."""

    paths_text: str
    read_guard: Tuple[str, ...]
    write_guard: Tuple[str, ...]
    path_size: int

    @property
    def size(self) -> int:
        """Grammar size: path-AST nodes + guard atoms (the minimality
        metric smallest-first enumeration orders by)."""
        return self.path_size + len(self.read_guard) + len(self.write_guard)

    @property
    def family(self) -> str:
        """Which grammar family the candidate draws on: ``path`` (no
        guards), ``serializer`` (any queue atom), else ``monitor``."""
        atoms = self.read_guard + self.write_guard
        if not atoms:
            return "path"
        if any(atom.startswith("waiting(") for atom in atoms):
            return "serializer"
        return "monitor"

    @property
    def fingerprint(self) -> str:
        """Stable content hash — the oracle-cache key."""
        payload = repr((self.paths_text, self.read_guard,
                        self.write_guard)).encode()
        return hashlib.blake2b(payload, digest_size=8).hexdigest()

    def describe(self) -> str:
        lines = [line.strip() for line in self.paths_text.strip().split("\n")]
        for op, guard in (("read", self.read_guard),
                          ("write", self.write_guard)):
            if guard:
                lines.append("guard {}: {}".format(op, " and ".join(guard)))
        return "; ".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "paths": self.paths_text,
            "read_guard": list(self.read_guard),
            "write_guard": list(self.write_guard),
            "size": self.size,
            "family": self.family,
            "fingerprint": self.fingerprint,
        }


def enumerate_candidates(
    max_size: int = 10,
    include_serializer: bool = True,
) -> Iterator[Candidate]:
    """All candidates with ``size <= max_size``, smallest first,
    deterministically ordered (size, then path text, then guards).

    Args:
        max_size: total-size bound (path nodes + guard atoms).
        include_serializer: drop ``waiting()`` atoms when False — the CLI
            ``--fast`` mode, which shrinks the space ~4x without touching
            the monitor/path families the known repairs live in.
    """
    read_atoms = tuple(a for a in READ_ATOMS
                       if include_serializer or not a.startswith("waiting("))
    write_atoms = tuple(a for a in WRITE_ATOMS
                        if include_serializer or not a.startswith("waiting("))
    programs = enumerate_path_programs()
    candidates: List[Candidate] = []
    for program in programs:
        if program.size >= max_size + 1:
            continue
        for read_guard in _conjunctions(read_atoms):
            for write_guard in _conjunctions(write_atoms):
                candidate = Candidate(
                    paths_text=program.text,
                    read_guard=read_guard,
                    write_guard=write_guard,
                    path_size=program.size,
                )
                if candidate.size <= max_size:
                    candidates.append(candidate)
    candidates.sort(key=lambda c: (c.size, c.paths_text,
                                   c.read_guard, c.write_guard))
    for candidate in candidates:
        yield candidate
