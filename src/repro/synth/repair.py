"""Auto-repair of the paper's footnote-3 anomaly, end to end.

The paper's Figure-1 path-expression readers/writers program is reproduced
verbatim in :mod:`repro.problems.readers_writers.pathexpr_impl`, anomaly
included: footnote 3 concedes that under the Figure-1 program a second
writer can overtake a reader that arrived while the first writer was
writing — readers priority, the stated goal, is not actually enforced.

:func:`repair_footnote3` closes the loop the paper could only gesture at:

1. **Diagnose** — explore the verbatim Figure-1 program under the
   footnote-3 arrival pattern until the strict priority oracle finds a
   violating schedule; ddmin the witness and attach the causal chain that
   explains *why* the overtake happens (who ran, who waited on what).
2. **Repair** — run the CEGIS loop (:func:`repro.synth.cegis.synthesize`)
   over the candidate grammar until it finds a minimal synchronizer that
   is exhaustively violation-free on the same arrival pattern *and* still
   admits concurrent readers.

The report carries both halves, so the artifact reads as: here is the
bug, here is the schedule that triggers it, here is why, and here is the
smallest program in the grammar that does not have it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..explore.engine import ExplorationEngine
from ..explore.minimize import MinimizedWitness, minimize_witness
from ..explore.targets import get_target
from ..problems.readers_writers.pathexpr_impl import FIGURE1_PATHS
from .cegis import SynthConfig, SynthOutcome, synthesize


@dataclass
class RepairReport:
    """Diagnosis + synthesized repair for the footnote-3 anomaly."""

    broken_paths: str
    diagnosis_runs: int
    witness: MinimizedWitness
    outcome: SynthOutcome

    @property
    def ok(self) -> bool:
        return self.outcome.ok

    def to_dict(self) -> Dict[str, object]:
        winner = self.outcome.winner
        return {
            "broken": {
                "paths": self.broken_paths,
                "diagnosis_runs": self.diagnosis_runs,
                "witness": list(self.witness.minimized),
                "messages": list(self.witness.messages),
                "causal": list(self.witness.causal),
            },
            "repair": {
                "found": self.ok,
                "winner": winner.to_dict() if winner else None,
                "verification": dict(self.outcome.verification),
            },
            "stats": self.outcome.stats.to_dict(),
        }

    def render(self) -> str:
        """Human-readable repair report."""
        out: List[str] = []
        out.append("== broken program (Figure 1, verbatim) ==")
        out.append(self.broken_paths.strip())
        out.append("")
        out.append("== diagnosis ==")
        out.append("violation found after {} run(s); minimized witness: "
                   "{} decision(s)".format(
                       self.diagnosis_runs, len(self.witness.minimized)))
        for message in self.witness.messages:
            out.append("  violation: {}".format(message))
        if self.witness.causal:
            out.append("  causal chain:")
            for line in self.witness.causal:
                out.append("    {}".format(line))
        out.append("")
        out.append(self.witness.timeline)
        out.append("")
        out.append("== synthesized repair ==")
        if self.ok:
            winner = self.outcome.winner
            out.append(winner.describe())
            out.append("  size {} ({} family)".format(
                winner.size, winner.family))
            verification = self.outcome.verification
            out.append(
                "  verified: {} schedule(s), exhaustive, violation-free; "
                "reader-overlap witness {}".format(
                    verification.get("runs", "?"),
                    tuple(verification.get("overlap_witness", ()))))
        else:
            out.append("no correct candidate within bounds — raise "
                       "--max-size")
        out.append("")
        stats = self.outcome.stats
        out.append("== search ==")
        out.append(
            "  {} candidate(s): {} via cache, {} via banked "
            "counterexample, {} explored ({} schedules)".format(
                stats.candidates_tried, stats.cache_hits,
                stats.cex_rejected, stats.explored,
                stats.exploration_runs))
        out.append("  counterexample bank: {} trace(s); overlap witnesses "
                   "reused {}x".format(stats.bank_size,
                                       stats.overlap_reused))
        return "\n".join(out)


def repair_footnote3(
    config: Optional[SynthConfig] = None,
    log: Optional[Callable[[str], None]] = None,
    diagnose_max_runs: int = 2000,
    diagnose_max_depth: int = 60,
) -> RepairReport:
    """Diagnose the Figure-1 anomaly, then synthesize a minimal repair."""
    say = log or (lambda message: None)
    target = get_target("footnote3", "pathexpr")
    say("diagnosing Figure 1 under the footnote-3 arrival pattern...")
    engine = ExplorationEngine(target.runner(), max_runs=diagnose_max_runs,
                               max_depth=diagnose_max_depth, prune=True)
    found = engine.explore(target.checker, stop_at_first=True)
    if found.witness is None:
        raise RuntimeError(
            "Figure-1 exploration found no violation within budget — the "
            "anomaly demo needs a witness; raise diagnose_max_runs")
    witness = minimize_witness(target.runner(), target.checker,
                               found.witness)
    say("anomaly reproduced in {} run(s); witness minimized to {} "
        "decision(s)".format(found.runs, len(witness.minimized)))
    say("synthesizing a repair...")
    outcome = synthesize(config, log=log)
    return RepairReport(
        broken_paths=FIGURE1_PATHS,
        diagnosis_runs=found.runs,
        witness=witness,
        outcome=outcome,
    )
