"""Executable candidate synchronizers and the synthesis workloads.

Every grammar candidate (:class:`~repro.synth.grammar.Candidate`) runs on
one substrate: :class:`SynthGuardedRW`, a readers/writers solution whose
path program *and* per-operation guard predicates come from the candidate.
Guard atoms evaluate over three counter families:

* ``active(op)`` — path-level occupancy (``PathResource.active``);
* ``pending(op)`` — demand: requests announced (``req`` counters bumped at
  request-log time, before any blocking) minus starts — exactly the
  quantity the strict priority oracle is stated over;
* ``waiting(op)`` — parked entries in the guard gate (the serializer
  queue-depth view).

The request counters and gate composition are registered as scheduler
fingerprint providers, so equivalence pruning stays sound for guarded
candidates (two states that differ in demand or queue order never merge).

Workloads:

* :func:`run_candidate_footnote3` — the paper's footnote-3 arrival pattern
  (writer working, second writer arrives, then a reader) on the candidate;
  the schedule space where the priority anomaly lives.
* :func:`run_candidate_two_readers` — two readers, no writers;
  :func:`reads_overlap` detects schedules where both are simultaneously
  active.  A correct repair must *admit* such a schedule — this is the
  check that rejects trivially-serial candidates which satisfy safety by
  destroying the reader concurrency the paper's burst construct exists
  to provide.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..mechanisms.pathexpr.extended import GuardedPathResource
from ..problems.base import SolutionBase
from ..resources import Database
from ..runtime.policies import SchedulingPolicy
from ..runtime.scheduler import Scheduler
from ..runtime.trace import RunResult
from .grammar import Candidate

#: Atom name -> evaluator over the solution instance.
AtomEval = Callable[["SynthGuardedRW"], bool]

ATOM_EVALS: Dict[str, AtomEval] = {
    "pending(read)==0": lambda s: s.pending("read") == 0,
    "pending(write)==0": lambda s: s.pending("write") == 0,
    "active(read)==0": lambda s: s.paths.active("read") == 0,
    "active(write)==0": lambda s: s.paths.active("write") == 0,
    "waiting(read)==0": lambda s: s.waiting("read") == 0,
    "waiting(write)==0": lambda s: s.waiting("write") == 0,
}


class SynthGuardedRW(SolutionBase):
    """Readers/writers on a guarded path resource, shaped by a candidate.

    The operation bodies are the standard database read/write (identical
    to the hand-written solutions, so traces feed the same oracles); the
    entire synchronization discipline — path program and guards — is the
    candidate's.
    """

    problem = "readers_priority"
    mechanism = "synth"

    def __init__(
        self,
        sched: Scheduler,
        candidate: Candidate,
        name: str = "db",
        wake_policy: str = "fifo",
        seed: int = 0,
    ) -> None:
        super().__init__(sched, name)
        self.candidate = candidate
        self.db = Database()
        #: Requests announced per op (bumped before any blocking point).
        self.req: Dict[str, int] = {"read": 0, "write": 0}
        solution = self

        def conjunction(atoms: Tuple[str, ...]):
            evals = tuple(ATOM_EVALS[a] for a in atoms)

            def predicate(res, args) -> bool:
                return all(ev(solution) for ev in evals)

            return predicate

        guards = {}
        if candidate.read_guard:
            guards["read"] = conjunction(candidate.read_guard)
        if candidate.write_guard:
            guards["write"] = conjunction(candidate.write_guard)

        self.paths = GuardedPathResource(
            sched,
            candidate.paths_text,
            guards=guards,
            name=name + ".paths",
            wake_policy=wake_policy,
            seed=seed,
        )

        def read_body(res, work: int):
            solution._start("read")
            value = yield from solution.db.read()
            yield from solution._work(work)
            solution._finish("read")
            return value

        def write_body(res, value, work: int):
            solution._start("write")
            yield from solution.db.write(value)
            yield from solution._work(work)
            solution._finish("write")

        self.paths.define("read", read_body)
        self.paths.define("write", write_body)
        sched.add_fingerprint_provider(self._fingerprint_state)

    # ------------------------------------------------------------------
    def pending(self, op: str) -> int:
        """Requests announced but not yet started at the path level."""
        return self.req[op] - self.paths.started(op)

    def waiting(self, op: str) -> int:
        """Parked guard-gate entries for ``op``."""
        return sum(1 for entry in self.paths._gate if entry[3] == op)

    def _fingerprint_state(self):
        # Demand counters and gate composition drive guard truth values,
        # so they must distinguish canonical states.  Gate entries are
        # reduced to (pid, op) in queue order: absolute arrival stamps are
        # monotone within a run and never affect relative admission order.
        gate = tuple((entry[2].pid, entry[3])
                     for entry in self.paths._gate)
        return (
            self.req["read"], self.req["write"],
            self.paths.started("read"), self.paths.started("write"),
            self.paths.completed("read"), self.paths.completed("write"),
            gate,
        )

    # ------------------------------------------------------------------
    def read(self, work: int = 1):
        """Perform one read; returns the database value."""
        self._request("read")
        self.req["read"] += 1
        value = yield from self.paths.invoke("read", work)
        return value

    def write(self, value, work: int = 1):
        """Perform one write."""
        self._request("write")
        self.req["write"] += 1
        yield from self.paths.invoke("write", value, work)


# ----------------------------------------------------------------------
# Workloads
# ----------------------------------------------------------------------
#: Identifies the workload+battery a cached verdict was computed against.
FOOTNOTE3_WORKLOAD = "footnote3_rw_v1"
CONCURRENCY_WORKLOAD = "two_readers_v1"


def run_candidate_footnote3(
    candidate: Candidate,
    policy: SchedulingPolicy,
    sink=None,
) -> RunResult:
    """The paper's footnote-3 arrival pattern on ``candidate``: W1 starts
    a long write, W2's write and R1's read arrive while it runs.  The
    broken Figure-1 program lets W2 overtake R1 here."""
    sched = Scheduler(policy=policy, sink=sink)
    impl = SynthGuardedRW(sched, candidate)

    def first_writer():
        yield from impl.write(1, work=3)

    def second_writer():
        yield
        yield from impl.write(2, work=1)

    def reader():
        yield
        yield
        yield from impl.read(work=1)

    sched.spawn(first_writer, name="W1")
    sched.spawn(second_writer, name="W2")
    sched.spawn(reader, name="R1")
    return sched.run(on_deadlock="return", on_error="record")


def run_candidate_two_readers(
    candidate: Candidate,
    policy: SchedulingPolicy,
) -> RunResult:
    """Two readers, no writers — the reader-concurrency probe."""
    sched = Scheduler(policy=policy)
    impl = SynthGuardedRW(sched, candidate)

    def reader(name):
        def body():
            yield from impl.read(work=2)
        return body

    sched.spawn(reader("Ra"), name="Ra")
    sched.spawn(reader("Rb"), name="Rb")
    return sched.run(on_deadlock="return", on_error="record")


def reads_overlap(run: RunResult) -> List[str]:
    """Non-empty iff two reads were simultaneously active on ``db`` —
    checker-shaped so it plugs into ``ExplorationEngine.find_schedule``
    (which hunts for schedules with non-empty messages)."""
    active = 0
    for event in run.trace.filter(obj="db.read"):
        if event.kind == "op_start":
            active += 1
            if active >= 2:
                return ["two reads active simultaneously"]
        elif event.kind == "op_end":
            active -= 1
    return []
