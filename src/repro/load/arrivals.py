"""Open arrival processes on the virtual clock.

Each generator yields successive **inter-arrival gaps** in virtual ticks
(non-negative ints).  They are deterministic functions of ``(rate, seed)``
— seeded Mersenne-Twister draws, stable across Python versions and worker
processes — so every load run is replayable, the property the whole
runtime is built on.

Rates are in *clients per tick*; gaps accumulate fractional residue so the
long-run realized rate matches the requested one even though individual
gaps are integers (a gap of 0 means two clients arrive on the same tick).

* :func:`poisson` — memoryless exponential gaps, the M/·/· open-arrival
  baseline.
* :func:`bursty` — an on/off (interrupted Poisson) process: bursts at
  ``burst_factor``× the base rate, then silent gaps; same mean rate, much
  nastier queue-depth tails.
* :func:`diurnal` — sinusoidal rate modulation with period ``period``
  ticks: a day-curve in miniature, peak at mid-period, trough at the
  edges.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Iterator


def _gaps(raw: Iterator[float]) -> Iterator[int]:
    """Quantize float gaps to integer ticks, carrying the residue."""
    residue = 0.0
    for gap in raw:
        total = gap + residue
        ticks = int(total)
        residue = total - ticks
        yield ticks


def poisson(rate: float, seed: int = 0) -> Iterator[int]:
    """Exponential inter-arrival gaps with mean ``1/rate`` ticks."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)

    def raw() -> Iterator[float]:
        while True:
            yield rng.expovariate(rate)

    return _gaps(raw())


def bursty(
    rate: float,
    seed: int = 0,
    burst_factor: float = 8.0,
    burst_len: int = 16,
) -> Iterator[int]:
    """On/off arrivals: ``burst_len`` clients at ``burst_factor * rate``,
    then one compensating silent gap, keeping the mean rate at ``rate``."""
    if rate <= 0 or burst_factor <= 1.0:
        raise ValueError("rate must be positive and burst_factor > 1")
    rng = random.Random(seed)
    # Mean gap inside a burst and the silence that restores the average.
    burst_gap = 1.0 / (rate * burst_factor)
    silence = burst_len * (1.0 / rate - burst_gap)

    def raw() -> Iterator[float]:
        while True:
            for __ in range(burst_len):
                yield rng.expovariate(1.0 / burst_gap)
            yield silence * (0.5 + rng.random())

    return _gaps(raw())


def diurnal(
    rate: float,
    seed: int = 0,
    period: int = 256,
    depth: float = 0.9,
) -> Iterator[int]:
    """Sinusoidally modulated Poisson arrivals: instantaneous rate
    ``rate * (1 + depth·sin)``, peaking once per ``period`` ticks."""
    if rate <= 0 or not 0.0 < depth <= 1.0:
        raise ValueError("rate must be positive and depth in (0, 1]")
    rng = random.Random(seed)

    def raw() -> Iterator[float]:
        now = 0.0
        while True:
            phase = 2.0 * math.pi * (now % period) / period
            local = rate * (1.0 + depth * math.sin(phase))
            gap = rng.expovariate(max(local, rate * (1.0 - depth) * 0.5
                                      or 1e-9))
            now += gap
            yield gap

    return _gaps(raw())


#: name -> factory(rate, seed) — what ``repro load --arrival`` selects.
ARRIVALS: Dict[str, object] = {
    "poisson": poisson,
    "bursty": bursty,
    "diurnal": diurnal,
}


def make_arrivals(name: str, rate: float, seed: int = 0) -> Iterator[int]:
    try:
        factory = ARRIVALS[name]
    except KeyError:
        raise KeyError("unknown arrival process {!r}; choose one of {}"
                       .format(name, ", ".join(sorted(ARRIVALS))))
    return factory(rate, seed)
