"""Heavy-traffic load observatory: open arrivals, client swarms, and
per-mechanism saturation curves over the streaming telemetry sink.

Quick use::

    from repro.load import saturation_curve
    points = saturation_curve("monitor", [16, 64, 256])
    for p in points:
        print(p.clients, p.throughput, p.latency["p95"])

or from the command line::

    python -m repro load --mechanism monitor --clients 16,64,256
"""

from .arrivals import ARRIVALS, bursty, diurnal, make_arrivals, poisson
from .engine import (
    DEFAULT_HORIZON,
    LOAD_MECHANISMS,
    LoadPoint,
    ShardedResource,
    ascii_curve,
    render_curves,
    run_load,
    saturation_curve,
)

__all__ = [
    "ARRIVALS",
    "poisson",
    "bursty",
    "diurnal",
    "make_arrivals",
    "LOAD_MECHANISMS",
    "DEFAULT_HORIZON",
    "ShardedResource",
    "LoadPoint",
    "run_load",
    "saturation_curve",
    "ascii_curve",
    "render_curves",
]
