"""The heavy-traffic workload engine: client swarms over sharded resources.

This is the load observatory's generator half.  A *load run* is:

* **N sharded resource instances** — independent bounded buffers, one per
  shard, each synchronized by the mechanism under test (the same solution
  classes the correctness suite verifies — nothing is reimplemented for
  load);
* a **router** placing client ``j`` on shard ``j % shards`` (deterministic,
  so replays and cross-mechanism comparisons see identical placement);
* an **open arrival process** (:mod:`repro.load.arrivals`) on the virtual
  clock: a driver process sleeps out the inter-arrival gaps and spawns one
  lightweight client per arrival — clients are *not* pre-spawned, so the
  ready queue stays proportional to concurrency, not to total population;
* each client runs ``ops`` put→get cycles against its shard and exits.
  Put-then-get keeps every shard conservation-balanced at any population
  (a full buffer implies ≥capacity clients holding an item they are about
  to get back, so the swarm can never wedge itself), which is what lets
  the sweep scale to arbitrary client counts.

Telemetry is the :class:`~repro.obs.streaming.StreamingSink` — the whole
point: a sweep point logs O(clients × ops) events but retains only
O(shards × windows) state, so the observatory can watch runs the
recording pipeline cannot hold.

**Axes.**  Throughput is ops per 1000 virtual ticks (arrivals drive the
clock); the *mechanism cost* is scheduler steps per completed op (the
§5.3 "serializers cost more" claim, measured); latency percentiles are on
the seq axis, the runtime's meaningful clock.  :func:`saturation_curve`
sweeps client count with a fixed arrival horizon, so offered load rises
with population and the latency tail shows each mechanism's saturation
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Generator, Iterable, List, Optional

from ..obs.streaming import StreamingSink
from ..problems import bounded_buffer, eventcount_impls
from ..runtime.scheduler import Scheduler
from .arrivals import make_arrivals

#: The six §5 mechanisms E19 compares (eventcount rides along as the
#: seventh where callers ask for it explicitly).
LOAD_MECHANISMS = ("semaphore", "monitor", "serializer", "pathexpr_open",
                   "csp", "ccr")

_IMPLS = {
    "semaphore": bounded_buffer.SemaphoreBoundedBuffer,
    "monitor": bounded_buffer.MonitorBoundedBuffer,
    "serializer": bounded_buffer.SerializerBoundedBuffer,
    "pathexpr_open": bounded_buffer.OpenPathBoundedBuffer,
    "csp": bounded_buffer.CspBoundedBuffer,
    "ccr": bounded_buffer.CcrBoundedBuffer,
    "eventcount": eventcount_impls.EventCountBoundedBuffer,
}


class ShardedResource:
    """N independent mechanism-synchronized buffers behind a router."""

    def __init__(self, sched: Scheduler, mechanism: str, shards: int = 2,
                 capacity: int = 8) -> None:
        try:
            cls = _IMPLS[mechanism]
        except KeyError:
            raise KeyError("no load implementation for mechanism {!r}; "
                           "choose one of {}".format(
                               mechanism, ", ".join(sorted(_IMPLS))))
        if shards <= 0:
            raise ValueError("shards must be positive")
        self.mechanism = mechanism
        self.instances = [
            cls(sched, capacity=capacity, name="shard{}".format(i))
            for i in range(shards)
        ]

    def route(self, client: int):
        """The shard instance serving client ``client`` (deterministic)."""
        return self.instances[client % len(self.instances)]


@dataclass
class LoadPoint:
    """One sweep point: a (mechanism, client count) measurement."""

    mechanism: str
    clients: int
    shards: int
    offered_rate: float
    completed: int
    duration_ticks: int
    steps: int
    wall_seconds: float
    throughput: float            # ops per 1000 virtual ticks
    steps_per_op: float          # mechanism cost (§5.3, measured)
    latency: Dict[str, float]    # p50/p95/p99/mean on the seq axis
    wait: Dict[str, float]
    max_depth: int
    memory_cells: int
    events: int
    windows: List[Dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "mechanism": self.mechanism,
            "clients": self.clients,
            "shards": self.shards,
            "offered_rate": round(self.offered_rate, 4),
            "completed": self.completed,
            "duration_ticks": self.duration_ticks,
            "steps": self.steps,
            "wall_seconds": round(self.wall_seconds, 4),
            "throughput": round(self.throughput, 3),
            "steps_per_op": round(self.steps_per_op, 3),
            "latency": self.latency,
            "wait": self.wait,
            "max_depth": self.max_depth,
            "memory_cells": self.memory_cells,
            "events": self.events,
        }


def run_load(
    mechanism: str,
    clients: int = 64,
    shards: int = 2,
    arrival: str = "poisson",
    rate: float = 0.5,
    ops: int = 1,
    capacity: int = 8,
    seed: int = 0,
    window: int = 32,
    max_windows: int = 64,
    sink: Optional[StreamingSink] = None,
    keep_windows: bool = True,
):
    """One load run; returns ``(LoadPoint, sink)``.

    ``sink`` injects a pre-configured :class:`StreamingSink` (the memory
    bench does this); by default one is built with ``shard_prefix=True``
    so sketches are keyed per shard.
    """
    if sink is None:
        sink = StreamingSink(window=window, max_windows=max_windows,
                             shard_prefix=True)
    # Step budget scales with the swarm; per-op step costs are two orders
    # of magnitude below this, so the limit only catches genuine wedges.
    budget = max(500_000, clients * ops * 400)
    sched = Scheduler(sink=sink, max_steps=budget)
    resource = ShardedResource(sched, mechanism, shards=shards,
                               capacity=capacity)
    gaps = make_arrivals(arrival, rate, seed=seed)

    def client_body(j: int):
        impl = resource.route(j)

        def body() -> Generator:
            for k in range(ops):
                yield from impl.put((j, k))
                yield from impl.get()
        return body

    def driver() -> Generator:
        for j in range(clients):
            gap = next(gaps)
            if gap > 0:
                yield from sched.sleep(gap)
            sched.spawn(client_body(j), name="c{}".format(j))

    sched.spawn(driver, name="driver")
    start = perf_counter()
    result = sched.run()
    wall = perf_counter() - start

    total = sink.merged_latency("total")
    waits = sink.merged_wait()
    ticks = max(result.time, 1)
    completed = sink.completed
    point = LoadPoint(
        mechanism=mechanism,
        clients=clients,
        shards=shards,
        offered_rate=rate,
        completed=completed,
        duration_ticks=result.time,
        steps=result.steps,
        wall_seconds=wall,
        throughput=1000.0 * completed / ticks,
        steps_per_op=result.steps / float(max(completed, 1)),
        latency={
            "p50": round(total.quantile(50), 2),
            "p95": round(total.quantile(95), 2),
            "p99": round(total.quantile(99), 2),
            "mean": round(total.mean, 2),
            "max": total.max,
        },
        wait={
            "p50": round(waits.quantile(50), 2),
            "p95": round(waits.quantile(95), 2),
            "p99": round(waits.quantile(99), 2),
            "count": waits.count,
        },
        max_depth=max(sink.max_depth.values(), default=0),
        memory_cells=sink.memory_cells(),
        events=sink.events,
        windows=sink.windows.series() if keep_windows else [],
    )
    return point, sink


#: Default sweep horizon: arrivals for every sweep point are spread over
#: this many virtual ticks, so a bigger population means a higher offered
#: rate — that is what makes the sweep a *saturation* curve.
DEFAULT_HORIZON = 256


def saturation_curve(
    mechanism: str,
    client_counts: Iterable[int],
    shards: int = 2,
    arrival: str = "poisson",
    horizon: int = DEFAULT_HORIZON,
    ops: int = 1,
    capacity: int = 8,
    seed: int = 0,
    window: int = 32,
) -> List[LoadPoint]:
    """Sweep client counts at a fixed arrival horizon; one
    :class:`LoadPoint` per population size."""
    points = []
    for clients in client_counts:
        point, __ = run_load(
            mechanism, clients=clients, shards=shards, arrival=arrival,
            rate=clients / float(horizon), ops=ops, capacity=capacity,
            seed=seed, window=window, keep_windows=False,
        )
        points.append(point)
    return points


# ----------------------------------------------------------------------
# ASCII views
# ----------------------------------------------------------------------
def ascii_curve(points: List[LoadPoint], value, label: str,
                width: int = 44) -> str:
    """One bar per sweep point: ``value(point)`` scaled to ``width``."""
    if not points:
        return "(no points)"
    rows = [(p.clients, float(value(p))) for p in points]
    peak = max(v for __, v in rows) or 1.0
    lines = ["{} vs clients".format(label)]
    for clients, v in rows:
        bar = "#" * max(1 if v else 0, int(v * width / peak))
        lines.append("  %7d %10.1f %s" % (clients, v, bar))
    return "\n".join(lines)


def render_curves(curves: Dict[str, List[LoadPoint]]) -> str:
    """The full observatory report: a per-mechanism sweep table plus
    throughput and p95-latency ASCII curves."""
    lines = [
        "%-14s %8s %10s %9s %9s %9s %9s %7s"
        % ("mechanism", "clients", "throughput", "steps/op",
           "lat-p50", "lat-p95", "lat-p99", "maxQ"),
    ]
    for mechanism in curves:
        for p in curves[mechanism]:
            lines.append(
                "%-14s %8d %10.1f %9.2f %9.1f %9.1f %9.1f %7d"
                % (mechanism[:14], p.clients, p.throughput, p.steps_per_op,
                   p.latency["p50"], p.latency["p95"], p.latency["p99"],
                   p.max_depth))
    for mechanism, points in curves.items():
        lines.append("")
        lines.append("-- {} --".format(mechanism))
        lines.append(ascii_curve(points, lambda p: p.throughput,
                                 "throughput (ops/ktick)"))
        lines.append(ascii_curve(points, lambda p: p.latency["p95"],
                                 "latency p95 (seq)"))
    return "\n".join(lines)
