"""E13 — liveness quantified: starvation and waiting-time profiles.

The paper states liveness properties qualitatively: readers-priority
"allows writers to starve" (§5.1.1), and FCFS exists precisely to bound
bypass.  This bench turns those statements into waiting-time numbers:

* under both readers-priority solutions (path Figure 1 and the monitor), a
  writer facing a sustained reader stream waits for the *entire* stream;
* under the FCFS variants, maximum waits stay within a small factor of the
  mean and nothing goes unserved;
* the per-class waiting table is printed for all three disciplines.
"""

from conftest import emit

from repro.problems.readers_writers import (
    BURST_PLAN,
    MonitorReadersPriority,
    MonitorRWFcfs,
    MonitorWritersPriority,
    PathReadersPriority,
    run_workload,
)
from repro.runtime import Scheduler
from repro.verify import (
    class_wait_summary,
    starvation_report,
    unserved_requests,
    waiting_times,
)


def reader_stream_run(cls, rounds=6):
    sched = Scheduler()
    impl = cls(sched)

    def reader_stream():
        for __ in range(rounds):
            yield from impl.read(work=2)

    def writer():
        yield
        yield from impl.write(1, work=1)

    sched.spawn(reader_stream, name="Ra")
    sched.spawn(reader_stream, name="Rb")
    sched.spawn(writer, name="W")
    return sched.run()


def compute():
    out = {}
    for label, cls in (
        ("pathexpr readers_priority", PathReadersPriority),
        ("monitor readers_priority", MonitorReadersPriority),
    ):
        result = reader_stream_run(cls)
        out[label] = class_wait_summary(result.trace, "db", ["read", "write"])
    fcfs_result = run_workload(
        lambda sched: MonitorRWFcfs(sched), BURST_PLAN * 2
    )
    out["monitor rw_fcfs (burst)"] = class_wait_summary(
        fcfs_result.trace, "db", ["read", "write"]
    )
    out["_fcfs_unserved"] = unserved_requests(
        fcfs_result.trace, "db", ["read", "write"]
    )
    out["_fcfs_waits"] = waiting_times(
        fcfs_result.trace, "db", ["read", "write"]
    )
    wp_result = reader_stream_run(MonitorWritersPriority)
    out["monitor writers_priority"] = class_wait_summary(
        wp_result.trace, "db", ["read", "write"]
    )
    out["_traces"] = {
        "pathexpr readers_priority": reader_stream_run(PathReadersPriority),
    }
    return out


def test_e13_starvation_profiles(benchmark):
    data = benchmark(compute)

    # Readers-priority starves the writer behind the whole stream.
    for label in ("pathexpr readers_priority", "monitor readers_priority"):
        summary = data[label]
        assert summary["write"].max_wait > summary["read"].max_wait * 3, label

    # Writers-priority inverts the profile: the writer jumps the stream.
    wp = data["monitor writers_priority"]
    assert wp["write"].max_wait < data["monitor readers_priority"]["write"].max_wait

    # FCFS: everything served, and waits bounded by the queue ahead.
    assert data["_fcfs_unserved"] == []
    fcfs = data["monitor rw_fcfs (burst)"]
    assert fcfs["read"].served + fcfs["write"].served == len(BURST_PLAN) * 2

    lines = []
    for label in (
        "pathexpr readers_priority",
        "monitor readers_priority",
        "monitor writers_priority",
        "monitor rw_fcfs (burst)",
    ):
        summary = data[label]
        lines.append(label + ":")
        for op in ("read", "write"):
            s = summary[op]
            lines.append(
                "    {:<9} served={:<3} wait min/mean/max = "
                "{}/{:.0f}/{}  unserved={}".format(
                    op, s.served, s.min_wait, s.mean_wait, s.max_wait,
                    s.unserved,
                )
            )
    report_trace = data["_traces"]["pathexpr readers_priority"].trace
    lines.append("")
    lines.append("full waiting table (pathexpr readers_priority):")
    lines.append(starvation_report(report_trace, "db", ["read", "write"]))
    emit("E13: starvation and waiting-time profiles", "\n".join(lines))
