"""E2 — constraint independence (§4.2 / §5 findings).

Runs the modification probes over the registry and asserts the paper's
verdicts: path expressions violate independence wholesale; monitors are
independent except the explicit-signal/T1×T2 conflict (resolved by two-stage
queuing); serializers are independent; semaphores (the baseline) are not.
Also regenerates the modularity table (§2 requirements) and the gate-usage
signal (§5.1.1).
"""

from conftest import emit

from repro.analysis import render_independence, summarize_independence
from repro.core import (
    InformationType,
    conflicting_pairs,
    pair_coverage,
    render_modularity,
    render_pair_coverage,
    uncovered_pairs,
)
from repro.problems.registry import all_solutions, build_evaluator


def compute():
    descriptions = [entry.description for entry in all_solutions()]
    summaries = summarize_independence(descriptions)
    report = build_evaluator().evaluate(run_verifiers=False)
    return summaries, report


def test_e2_constraint_independence(benchmark):
    summaries, report = benchmark(compute)

    assert summaries["pathexpr"].verdict == "VIOLATED"
    assert summaries["pathexpr"].mean_change_fraction == 1.0

    monitor = summaries["monitor"]
    assert monitor.verdict == "partially violated"
    assert monitor.conflicts == ["rw_fcfs/arrival_order"]
    flip = [p for p in monitor.probes
            if p.probe == ("readers_priority", "writers_priority")][0]
    assert flip.independent is True

    assert summaries["serializer"].verdict == "independent"
    assert summaries["semaphore"].verdict == "VIOLATED"

    # Modularity (§2): serializers enforce the structure, monitors allow it
    # (discipline), semaphores satisfy neither requirement.
    modularity = report.modularity
    assert modularity["serializer"]["enforced_by_mechanism"] is True
    assert modularity["monitor"]["enforced_by_mechanism"] is False
    assert modularity["monitor"]["resource_separable"] is True
    assert modularity["semaphore"]["synchronization_with_resource"] is False
    assert modularity["pathexpr"]["resource_separable"] is False  # gates blur

    # Gate usage (§5.1.1): only path expressions need sync procedures.
    gates = report.gates
    assert gates["pathexpr"] > 0
    assert gates["monitor"] == 0
    assert gates["serializer"] == 0

    # Pairwise conflict check (§4.2 last paragraph): the monitor T1×T2
    # conflict is recovered from the descriptions; no other mechanism
    # needed a conflict-resolving idiom; uncovered pairs are reported
    # honestly (the paper: complete pair checking "is not as easy").
    descriptions = [e.description for e in all_solutions()]
    pairs_found = conflicting_pairs(descriptions)
    T1 = InformationType.REQUEST_TYPE
    T2 = InformationType.REQUEST_TIME
    assert frozenset({T1, T2}) in pairs_found["monitor"]
    assert "serializer" not in pairs_found
    assert len(uncovered_pairs()) == 10

    emit("E2: constraint independence", render_independence(summaries))
    emit("E2: modularity requirements", render_modularity(modularity))
    emit(
        "E2: gate usage",
        "\n".join("{:<14} {}".format(m, g) for m, g in sorted(gates.items())),
    )
    emit(
        "E2: pairwise information-type check",
        render_pair_coverage(pair_coverage(), pairs_found),
    )
