"""Shared helpers for the experiment benches.

Every bench module regenerates one row of the DESIGN.md experiment index
(E1–E10): it *computes* the paper artifact, *asserts* the paper's claim
about its shape, and *prints* the regenerated table (visible with
``pytest benchmarks/ -s`` and in the captured output of failures).

Benches that produce numbers worth keeping (overhead ratios, contention
profiles) additionally :func:`persist` them to ``benchmarks/BENCH_<name>.json``
so runs are diffable across commits without scraping pytest output.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict

_HERE = os.path.dirname(os.path.abspath(__file__))


def emit(title: str, body: str) -> None:
    """Print one regenerated artifact with a banner."""
    print()
    print("#" * 72)
    print("# " + title)
    print("#" * 72)
    print(body)


def persist(name: str, payload: Dict[str, Any],
            directory: str = _HERE) -> str:
    """Merge ``payload`` into ``<directory>/BENCH_<name>.json`` and return
    the path.

    Top-level keys overwrite; untouched keys survive, so several tests (or
    several bench modules sharing one report file) can each contribute their
    own section without clobbering the rest.  Serialization is canonical —
    sorted keys, two-space indent, ASCII, trailing newline, non-JSON values
    coerced through ``str`` — so re-running a bench with unchanged numbers
    produces a byte-identical file and commits diff cleanly.
    """
    path = os.path.join(directory, "BENCH_{}.json".format(name))
    data: Dict[str, Any] = {}
    if os.path.exists(path):
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (ValueError, OSError):
            data = {}
    data.update(payload)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True, ensure_ascii=True,
                  default=str)
        handle.write("\n")
    return path
