"""Shared helpers for the experiment benches.

Every bench module regenerates one row of the DESIGN.md experiment index
(E1–E10): it *computes* the paper artifact, *asserts* the paper's claim
about its shape, and *prints* the regenerated table (visible with
``pytest benchmarks/ -s`` and in the captured output of failures).
"""

from __future__ import annotations


def emit(title: str, body: str) -> None:
    """Print one regenerated artifact with a banner."""
    print()
    print("#" * 72)
    print("# " + title)
    print("#" * 72)
    print(body)
