"""E21 — harness observatory: the explorer measured like a mechanism.

The paper's method is to compare mechanisms by measuring them under
identical conditions; this bench turns that discipline on the harness
itself (the ROADMAP's "make exploration fast" prerequisite):

* **Phase tiling** — with :class:`~repro.obs.harness.HarnessTelemetry`
  attached, the per-phase wall-clock attribution must *tile* the measured
  elapsed time (sum of phases >= 90%), serial and parallel alike — the
  same conservation standard E16 holds the critical path to against the
  makespan.  An accounting that doesn't tile can hide exactly the
  bottleneck it was built to find.
* **Null-path overhead** — the disabled telemetry path
  (:class:`~repro.obs.harness.NullHarnessTelemetry`, normalized to
  ``None`` at the entry points) must stay within 5% of a plain run on the
  E14b exploration target, the same gate E15 holds the trace sink to.
  Min-of-N timing: the workload is deterministic, so the minimum is the
  noise-robust estimator.
* **Speedup attribution** — the parallel frontier's worker timeline must
  explain the observed speedup: utilization in (0, 1], oversubscription
  flagged exactly when workers exceed cpus, busy + idle tiling pool
  capacity.
* **Hotspots** — ``self_profile`` must surface a non-empty, ranked
  hotspot list over the explore hot loop (the scheduler-core refactor's
  work queue).

Everything persists to ``BENCH_harness.json``.
"""

import os
import time

from conftest import emit, persist

from repro.explore import explore_parallel, get_target
from repro.obs import HarnessTelemetry, NullHarnessTelemetry, self_profile

#: The E14b exploration target and budget (bench_exploration.py) — the
#: workload the overhead gate is defined against.
TARGET = ("fcfs_resource", "monitor")
BUDGET = dict(max_runs=20000, max_depth=80)

#: E15/E14b standard: min-of-N wall-clock over a deterministic workload.
TIMING_REPEATS = 7

#: Phase accounting must cover at least this share of measured elapsed.
TILING_FLOOR = 0.90

#: Null telemetry path must stay within this factor of a plain run.
NULL_OVERHEAD_CEILING = 1.05


def _explore(telemetry=None, workers=1, prune=True):
    target = get_target(*TARGET)
    return explore_parallel(target, workers=workers, prune=prune,
                            telemetry=telemetry, **BUDGET)


def _min_of(repeats, fn):
    best = None
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        seconds = time.perf_counter() - start
        best = seconds if best is None else min(best, seconds)
    return best


def test_e21_phase_tiling_serial():
    telemetry = HarnessTelemetry()
    result = _explore(telemetry)
    assert result.exhausted
    coverage = telemetry.coverage()
    assert coverage >= TILING_FLOOR, (
        "serial phase accounting covers only {:.1%} of elapsed "
        "(floor {:.0%})".format(coverage, TILING_FLOOR))
    # Serial searches must attribute the actual work phases, not just
    # loop bookkeeping.
    for phase in ("step", "fingerprint", "check", "record", "collect"):
        assert telemetry.phase_seconds.get(phase, 0.0) > 0.0, phase
    assert telemetry.phase_seconds.get("execute") is None, (
        "no pool phase on a serial search")
    persist("harness", {"serial": telemetry.to_dict()})
    emit("E21: serial phase tiling ({}/{})".format(*TARGET),
         telemetry.render())


def test_e21_phase_tiling_parallel_attribution():
    telemetry = HarnessTelemetry()
    result = _explore(telemetry, workers=2, prune=False)
    assert result.exhausted
    coverage = telemetry.coverage()
    assert coverage >= TILING_FLOOR, (
        "parallel phase accounting covers only {:.1%} of elapsed "
        "(floor {:.0%})".format(coverage, TILING_FLOOR))

    attribution = telemetry.attribution()
    cpus = os.cpu_count() or 1
    assert attribution["oversubscribed"] == (2 > cpus)
    assert attribution["effective_workers"] == min(2, cpus)
    utilization = attribution["worker_utilization"]
    assert utilization is not None and 0.0 < utilization <= 1.0
    # Busy + idle tile pool capacity (worker lanes x execute seconds).
    capacity = attribution["execute_seconds"] * attribution["workers"]
    tiled = (attribution["worker_busy_seconds"]
             + attribution["worker_idle_seconds"])
    assert abs(tiled - capacity) <= 0.02 * max(capacity, 1e-9)
    # IPC byte accounting flows both ways.
    assert attribution["pickle_bytes_out"] > 0
    assert attribution["pickle_bytes_in"] > 0
    assert attribution["explanation"]
    # Every worker the pool forked shows up in the utilization table.
    assert len(telemetry.utilization()) == 2
    persist("harness", {"parallel": telemetry.to_dict()})
    emit("E21: parallel attribution ({}/{}, 2 workers)".format(*TARGET),
         telemetry.render())


def test_e21_null_path_overhead():
    # Warm-up (imports, pyc, allocator) outside the timed region.
    _explore()
    bare_s = _min_of(TIMING_REPEATS, lambda: _explore(telemetry=None))
    null_s = _min_of(TIMING_REPEATS,
                     lambda: _explore(telemetry=NullHarnessTelemetry()))
    ratio = null_s / bare_s if bare_s else 1.0
    persist("harness", {"null_overhead": {
        "bare_seconds": round(bare_s, 4),
        "null_sink_seconds": round(null_s, 4),
        "ratio": round(ratio, 4),
        "repeats": TIMING_REPEATS,
        "ceiling": NULL_OVERHEAD_CEILING,
    }})
    emit("E21: null telemetry path overhead",
         "bare {:.4f}s vs null sink {:.4f}s -> ratio {:.3f} "
         "(ceiling {})".format(bare_s, null_s, ratio,
                               NULL_OVERHEAD_CEILING))
    assert ratio <= NULL_OVERHEAD_CEILING, (
        "null telemetry path costs {:.1%} over a plain run".format(
            ratio - 1.0))


def test_e21_self_profile_hotspots():
    report = self_profile(lambda: _explore(HarnessTelemetry()), top=10)
    assert report.value.exhausted
    assert report.seconds > 0
    assert report.hotspots, "profiling an exploration must find hotspots"
    # Ranked by exclusive time, and every entry carries a location the
    # next PR can jump to.
    tottimes = [spot.tottime for spot in report.hotspots]
    assert tottimes == sorted(tottimes, reverse=True)
    assert all(":" in spot.location for spot in report.hotspots)
    persist("harness", {"self_profile": report.to_dict()})
    emit("E21: harness hotspots (cProfile over the explore loop)",
         report.render())
