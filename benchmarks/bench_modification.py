"""E6 — modification distance (the §4.2 probes, quantified).

Regenerates the table: for each mechanism, the cost of turning the
readers-priority solution into writers-priority and into FCFS.  The paper's
shape assertions:

* path expressions: ~100% of the solution touched in BOTH probes
  ("changing every synchronization procedure and every path");
* monitors: the priority flip is tiny; the FCFS change is large (the T1×T2
  conflict);
* serializers: both changes are small and the exclusion core survives;
* semaphores: the CHP priority flip rewrites nearly everything.
"""

from conftest import emit

from repro.analysis import run_probes
from repro.problems.registry import all_solutions


def compute():
    descriptions = [entry.description for entry in all_solutions()]
    results = run_probes(descriptions)
    table = {}
    for probe in results:
        if probe.report is not None:
            table[(probe.mechanism, probe.probe)] = probe.report
    return table


def test_e6_modification_distance(benchmark):
    table = benchmark(compute)
    flip = ("readers_priority", "writers_priority")
    to_fcfs = ("readers_priority", "rw_fcfs")

    assert table[("pathexpr", flip)].change_fraction == 1.0
    assert table[("pathexpr", to_fcfs)].change_fraction == 1.0

    monitor_flip = table[("monitor", flip)]
    assert monitor_flip.change_fraction < 0.3
    assert monitor_flip.shared_constraints_stable
    monitor_fcfs = table[("monitor", to_fcfs)]
    assert monitor_fcfs.change_fraction > 0.5  # the conflict case

    serializer_flip = table[("serializer", flip)]
    assert serializer_flip.change_fraction < 0.5
    assert serializer_flip.shared_constraints_stable
    serializer_fcfs = table[("serializer", to_fcfs)]
    assert serializer_fcfs.change_fraction < 0.5
    assert serializer_fcfs.shared_constraints_stable

    semaphore_flip = table[("semaphore", flip)]
    assert semaphore_flip.change_fraction > 0.8

    # Ordering claim: paths cost strictly more than monitors/serializers on
    # the priority flip; on the FCFS probe serializers beat monitors.
    assert (
        table[("pathexpr", flip)].change_fraction
        > table[("serializer", flip)].change_fraction
        > table[("monitor", flip)].change_fraction
    )
    assert (
        table[("serializer", to_fcfs)].change_fraction
        < table[("monitor", to_fcfs)].change_fraction
    )

    body = "\n\n".join(report.render() for report in table.values())
    emit("E6: modification distance", body)
