"""E1 — the expressive-power matrix (§4.1 / §5 findings).

Regenerates the mechanism × information-type matrix from the full solution
registry and asserts the paper's §5 claims cell by cell:

* monitors: every information type accessible; sync state only as hand-kept
  local data (indirect);
* base path expressions: request type direct, request time only via the
  longest-waiting assumption (indirect), parameters and local state
  inexpressible (NONE), priority constraints indirect;
* serializers: everything accessible; crowds make sync state direct;
  parameters need the later extensions (indirect);
* open/extended paths close the base gaps (everything at least indirect).
"""

from conftest import emit

from repro.core import (
    ConstraintKind,
    Directness,
    InformationType,
    render_expressive_power,
    render_kind_support,
)
from repro.problems.registry import build_evaluator

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T3 = InformationType.PARAMETERS
T4 = InformationType.SYNC_STATE
T5 = InformationType.LOCAL_STATE
T6 = InformationType.HISTORY

DIRECT = Directness.DIRECT
INDIRECT = Directness.INDIRECT
NONE = Directness.UNSUPPORTED


def compute_matrices():
    report = build_evaluator().evaluate(run_verifiers=False)
    return report.power, report.kinds


def test_e1_expressive_power_matrix(benchmark):
    power, kinds = benchmark(compute_matrices)

    # Monitors (§5.2): "Monitors allow access to all of the information
    # types described"; sync state hand-kept.
    monitor = power["monitor"]
    assert monitor[T1] is DIRECT
    assert monitor[T2] is DIRECT
    assert monitor[T3] is DIRECT          # priority wait
    assert monitor[T4] is INDIRECT        # explicit counts
    assert monitor[T5] is DIRECT
    assert monitor[T6] is DIRECT

    # Base path expressions (§5.1.2).
    path = power["pathexpr"]
    assert path[T1] is DIRECT             # request-type distinctions in paths
    assert path[T2] is INDIRECT           # needs the selection assumption
    assert path[T3] is NONE               # "no way to use parameter values"
    assert path[T4] is INDIRECT           # automatic exclusion only
    assert path[T5] is NONE               # "nor is local resource state"
    assert path[T6] is DIRECT             # the one-slot buffer shines

    # Serializers (§5.2).
    serializer = power["serializer"]
    assert serializer[T4] is DIRECT       # crowds
    assert serializer[T2] is DIRECT       # queues
    assert serializer[T3] is INDIRECT     # priority queues added later

    # Extended paths fill the base gaps.
    open_path = power["pathexpr_open"]
    assert open_path[T3] is not None and open_path[T3] is not NONE
    assert open_path[T5] is not None and open_path[T5] is not NONE

    # Constraint kinds: paths have no direct priority construct (§5.1.1).
    assert kinds["pathexpr"][ConstraintKind.PRIORITY] is INDIRECT
    assert kinds["pathexpr"][ConstraintKind.EXCLUSION] is DIRECT
    assert kinds["monitor"][ConstraintKind.PRIORITY] is DIRECT
    assert kinds["serializer"][ConstraintKind.PRIORITY] is DIRECT

    emit("E1: expressive power", render_expressive_power(power))
    emit("E1: constraint-kind support", render_kind_support(kinds))
