"""E3 / E4 — the paper's Figure 1 and Figure 2 as executable artifacts.

Runs the transcribed path programs under contended workloads, asserts the
behaviour the figures are *supposed* to deliver (exclusion safety, reader
concurrency, the weak-priority discipline; writer starvation possibility for
Figure 1), and times a full workload execution.
"""

from conftest import emit

from repro.problems.readers_writers import (
    BURST_PLAN,
    FIGURE1_PATHS,
    FIGURE2_PATHS,
    PathReadersPriority,
    PathWritersPriority,
    run_workload,
)
from repro.runtime import Scheduler
from repro.verify import check_mutual_exclusion, check_no_overtake


def run_figure1():
    return run_workload(lambda sched: PathReadersPriority(sched), BURST_PLAN)


def run_figure2():
    return run_workload(lambda sched: PathWritersPriority(sched), BURST_PLAN)


def test_e3_figure1_readers_priority(benchmark):
    result = benchmark(run_figure1)
    assert not result.deadlocked
    assert check_mutual_exclusion(
        result.trace, "db", ["write"], ["read"]
    ) == []
    assert check_no_overtake(result.trace, "db", "read", "write") == []
    emit(
        "E3: Figure 1 (readers priority, path expressions)",
        FIGURE1_PATHS
        + "\naccess order: "
        + " -> ".join(
            "{}:{}".format(ev.pname, ev.obj.rsplit('.', 1)[1])
            for ev in result.trace.projection("op_start")
            if ev.obj in ("db.read", "db.write")
        ),
    )


def test_e3_figure1_readers_share(benchmark):
    """Reader concurrency: two long reads must overlap."""

    def scenario():
        sched = Scheduler()
        impl = PathReadersPriority(sched)

        def reader():
            yield from impl.read(work=5)

        sched.spawn(reader, name="R1")
        sched.spawn(reader, name="R2")
        return sched.run()

    result = benchmark(scenario)
    starts = result.trace.filter(kind="op_start", obj="db.read")
    ends = result.trace.filter(kind="op_end", obj="db.read")
    assert starts[1].seq < ends[0].seq


def test_e3_figure1_writer_starvation_possible(benchmark):
    """The spec 'allows writers to starve': a steady reader stream keeps a
    writer out indefinitely."""

    def scenario():
        sched = Scheduler()
        impl = PathReadersPriority(sched)

        def reader_stream(rounds):
            def body():
                for __ in range(rounds):
                    yield from impl.read(work=2)
            return body

        def writer():
            yield
            yield from impl.write(1, work=1)

        # Two overlapping readers keep the burst open for many rounds.
        sched.spawn(reader_stream(6), name="Ra")
        sched.spawn(reader_stream(6), name="Rb")
        sched.spawn(writer, name="W")
        return sched.run()

    result = benchmark(scenario)
    write_start = result.trace.first(kind="op_start", obj="db.write")
    last_read_end = result.trace.last(kind="op_end", obj="db.read")
    # The writer only got in after the reader stream dried up entirely.
    assert write_start.seq > last_read_end.seq


def test_e4_figure2_writers_priority(benchmark):
    result = benchmark(run_figure2)
    assert not result.deadlocked
    assert check_mutual_exclusion(
        result.trace, "db", ["write"], ["read"]
    ) == []
    assert check_no_overtake(result.trace, "db", "write", "read") == []
    emit(
        "E4: Figure 2 (writers priority, path expressions)",
        FIGURE2_PATHS
        + "\naccess order: "
        + " -> ".join(
            "{}:{}".format(ev.pname, ev.obj.rsplit('.', 1)[1])
            for ev in result.trace.projection("op_start")
            if ev.obj in ("db.read", "db.write")
        ),
    )


def test_e4_figure2_writers_block_new_readers(benchmark):
    """While writers queue, arriving readers wait (the mirror discipline)."""

    def scenario():
        sched = Scheduler()
        impl = PathWritersPriority(sched)
        order = []

        def early_reader():
            yield from impl.read(work=6)
            order.append("R1")

        def writer():
            yield
            yield from impl.write(1, work=1)
            order.append("W")

        def late_reader():
            yield
            yield
            yield from impl.read(work=1)
            order.append("R2")

        sched.spawn(early_reader, name="R1")
        sched.spawn(writer, name="W")
        sched.spawn(late_reader, name="R2")
        sched.run()
        return order

    order = benchmark(scenario)
    assert order.index("W") < order.index("R2")
