"""E5 — the footnote-3 anomaly.

Regenerates the paper's strongest concrete finding: the published
readers-priority path-expression solution (Figure 1) "does not produce the
same behavior as the readers_priority example presented by Courtois,
Heymans, and Parnas".  Asserts that the anomaly schedule exists for the path
solution, that the monitor solution is clean on the identical scenario, and
that the schedule explorer can find the anomaly unaided.
"""

from conftest import emit

from repro.problems.readers_writers.anomaly import (
    render_report,
    run_footnote3_comparison,
)


def test_e5_footnote3_anomaly(benchmark):
    report = benchmark(run_footnote3_comparison, explore=False)
    assert report.reproduced
    assert report.path_order == ["W1:write", "W2:write", "R1:read"]
    assert report.monitor_order == ["W1:write", "R1:read", "W2:write"]
    emit("E5: footnote-3 anomaly", render_report(report))


def test_e5_explorer_finds_witness(benchmark):
    def search():
        return run_footnote3_comparison(explore=True, max_runs=100)

    report = benchmark(search)
    assert report.explorer_witness is not None
    assert report.explorer_runs >= 1
