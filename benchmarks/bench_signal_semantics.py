"""E12 — ablation: Hoare vs. Mesa signal semantics.

DESIGN.md §6 commits to Hoare signalling (signal hands possession to the
woken process immediately) because the paper's monitor is Hoare's.  This
ablation substitutes Mesa (signal-and-continue) semantics and measures what
the choice is load-bearing for:

* an *if*-guarded Hoare-style solution (Hoare's actual readers/writers
  code) stays safe under Hoare semantics but breaks under Mesa — the woken
  process's condition may no longer hold when it finally runs;
* re-checking guards in a *while* loop restores safety under Mesa;
* the strict signal→run handoff ordering is observable in traces.
"""

from conftest import emit

from repro.mechanisms.monitor import Monitor
from repro.resources import ResourceIntegrityError
from repro.runtime import ProcessFailed, Scheduler


class IfGuardedCell:
    """A one-slot cell with Hoare-style *if* guards: correct exactly when
    the signaller hands over possession atomically."""

    def __init__(self, sched, semantics):
        self._sched = sched
        self.mon = Monitor(sched, "cell.mon", signal_semantics=semantics)
        self.nonempty = self.mon.condition("nonempty")
        self.nonfull = self.mon.condition("nonfull")
        self.slots = []
        self.capacity = 1

    def put(self, item, rechecking=False):
        yield from self.mon.enter()
        if rechecking:
            while len(self.slots) >= self.capacity:
                yield from self.nonfull.wait()
        elif len(self.slots) >= self.capacity:
            yield from self.nonfull.wait()
        if len(self.slots) >= self.capacity:  # integrity check
            self.mon.exit()
            raise ResourceIntegrityError("overfilled cell (stale guard)")
        self.slots.append(item)
        yield from self.nonempty.signal()
        self.mon.exit()

    def get(self, rechecking=False):
        yield from self.mon.enter()
        if rechecking:
            while not self.slots:
                yield from self.nonempty.wait()
        elif not self.slots:
            yield from self.nonempty.wait()
        if not self.slots:
            self.mon.exit()
            raise ResourceIntegrityError("get from empty cell (stale guard)")
        item = self.slots.pop(0)
        yield from self.nonfull.signal()
        self.mon.exit()
        return item


def run_cell(semantics, rechecking):
    """Two producers and two consumers hammering a 1-slot cell.

    Returns ``None`` on success or the integrity error message.
    """
    sched = Scheduler()
    cell = IfGuardedCell(sched, semantics)

    def producer(base):
        def body():
            for i in range(4):
                yield from cell.put(base + i, rechecking)
        return body

    def consumer():
        def body():
            for __ in range(4):
                yield from cell.get(rechecking)
        return body

    sched.spawn(producer(100), name="P1")
    sched.spawn(producer(200), name="P2")
    sched.spawn(consumer(), name="C1")
    sched.spawn(consumer(), name="C2")
    try:
        sched.run()
    except ProcessFailed as failure:
        return str(failure.__cause__)
    return None


def compute():
    return {
        ("hoare", "if"): run_cell("hoare", rechecking=False),
        ("mesa", "if"): run_cell("mesa", rechecking=False),
        ("mesa", "while"): run_cell("mesa", rechecking=True),
        ("hoare", "while"): run_cell("hoare", rechecking=True),
    }


def test_e12_signal_semantics_ablation(benchmark):
    outcomes = benchmark(compute)

    assert outcomes[("hoare", "if")] is None, (
        "Hoare handoff must make if-guards safe"
    )
    assert outcomes[("mesa", "if")] is not None, (
        "Mesa + if-guards must exhibit the stale-guard failure"
    )
    assert "stale guard" in outcomes[("mesa", "if")] or "empty cell" in outcomes[("mesa", "if")]
    assert outcomes[("mesa", "while")] is None, (
        "re-checking loops must restore safety under Mesa"
    )
    assert outcomes[("hoare", "while")] is None

    lines = []
    for (semantics, guard), failure in outcomes.items():
        verdict = "ok" if failure is None else "FAILS ({})".format(failure)
        lines.append(
            "  {:<6} signalling + {:<5} guards -> {}".format(
                semantics, guard, verdict
            )
        )
    lines.append(
        "The Hoare choice in DESIGN.md is load-bearing: the paper-era "
        "monitor solutions use if-guards, which are only correct with "
        "signal-and-urgent-wait handoff."
    )
    emit("E12: Hoare vs Mesa signal semantics", "\n".join(lines))
