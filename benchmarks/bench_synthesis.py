"""E20 — CEGIS synthesis & repair of the footnote-3 anomaly.

The synthesis engine (DESIGN.md §14) must not just *find* the repair — it
must find it economically and resumably.  This bench runs the full
pipeline in an isolated cache directory and asserts the three properties
the subsystem is sold on:

* **repair found** — the CEGIS loop terminates with a minimal candidate
  that is exhaustively violation-free on the footnote-3 arrival pattern
  and still admits concurrent readers;
* **counterexample leverage** — banked ddmin-minimized counterexamples
  reject at least 2x as many candidates as full explorations are paid
  for (the CEGIS economy: one exploration's witness prices out a family
  of candidates at one run each);
* **replayable oracle cache** — a second run over the same cache judges
  every candidate without a single exploration, and each cached
  violation verdict re-derives from its logged witness in one run.

Numbers land in ``BENCH_synthesis.json``.
"""

import os
import shutil
import tempfile
import time

from conftest import emit, persist

from repro.synth import (
    OracleCache,
    SynthConfig,
    repair_footnote3,
    replay_verdict,
)
from repro.synth.cache import VIOLATION
from repro.synth.grammar import Candidate


def _config(root: str) -> SynthConfig:
    config = SynthConfig.fast()
    config.cache_root = os.path.join(root, "oracle")
    config.use_fp_cache = False
    return config


def test_e20_synthesis_repair():
    root = tempfile.mkdtemp(prefix="bench_synth_")
    try:
        config = _config(root)

        start = time.perf_counter()
        report = repair_footnote3(config)
        cold_s = time.perf_counter() - start
        stats = report.outcome.stats

        # The flagship claim: the anomaly is diagnosed and repaired.
        assert report.witness.messages, "diagnosis must reproduce footnote 3"
        assert report.ok, "no repair found within --fast bounds"
        winner = report.outcome.winner
        assert report.outcome.verification.get("runs", 0) > 0
        assert report.outcome.verification.get("overlap_witness") is not None

        # The CEGIS economy: counterexamples must carry >=2x the load of
        # exploration (E20 acceptance threshold).
        assert stats.explored > 0
        assert stats.cex_rejected >= 2 * stats.explored, (
            "counterexample reuse pruned only {} candidates vs {} "
            "explorations".format(stats.cex_rejected, stats.explored))

        # Warm resume: same cache, zero explorations, same winner.
        start = time.perf_counter()
        resumed = repair_footnote3(config)
        warm_s = time.perf_counter() - start
        rstats = resumed.outcome.stats
        assert resumed.outcome.winner == winner
        assert rstats.explored == 0, "resume must not re-explore"
        assert rstats.cache_hits == rstats.candidates_tried

        # Replayable verdicts: every cached violation re-derives from its
        # logged witness in exactly one scheduled run.
        cache = OracleCache(config.cache_root)
        replayed = audited = 0
        for entry in cache.entries():
            verdict = entry["verdict"]
            if verdict.get("status") != VIOLATION:
                continue
            audited += 1
            candidate = Candidate(
                paths_text=entry["candidate"]["paths"],
                read_guard=tuple(entry["candidate"]["read_guard"]),
                write_guard=tuple(entry["candidate"]["write_guard"]),
                path_size=(entry["candidate"]["size"]
                           - len(entry["candidate"]["read_guard"])
                           - len(entry["candidate"]["write_guard"])),
            )
            if replay_verdict(candidate, verdict):
                replayed += 1
        assert audited > 0
        assert replayed == audited, (
            "{}/{} cached violations failed to re-derive from their "
            "witness".format(audited - replayed, audited))

        payload = {
            "winner": winner.to_dict(),
            "diagnosis": {
                "runs": report.diagnosis_runs,
                "witness_decisions": len(report.witness.minimized),
                "messages": list(report.witness.messages),
            },
            "verification": dict(report.outcome.verification),
            "cold": dict(stats.to_dict(), seconds=round(cold_s, 3)),
            "warm": dict(rstats.to_dict(), seconds=round(warm_s, 3)),
            "cex_leverage": round(
                stats.cex_rejected / float(stats.explored), 2),
            "violation_verdicts_replayed": replayed,
        }
        persist("synthesis", payload)
        emit(
            "E20: CEGIS synthesis & repair (footnote-3)",
            "winner: {}\n"
            "cold: {} candidate(s), {} explored ({} schedules), {} "
            "rejected by banked counterexamples ({:.1f}x leverage), "
            "{:.2f}s\n"
            "warm: {} cache hit(s), 0 explorations, {:.2f}s\n"
            "cache audit: {}/{} violation verdicts re-derived from logged "
            "witnesses".format(
                winner.describe(),
                stats.candidates_tried, stats.explored,
                stats.exploration_runs, stats.cex_rejected,
                stats.cex_rejected / float(stats.explored), cold_s,
                rstats.cache_hits, warm_s,
                replayed, audited,
            ),
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
