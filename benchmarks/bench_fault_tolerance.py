"""Experiment E12 — fault tolerance of the evaluated mechanisms.

The paper evaluates mechanisms on *expressive power* (§4–§5); this bench
applies the same comparative table style to *robustness*: what happens to
the survivors when a process dies inside each mechanism's protected region?

The chaos explorer kills the victim at every reachable fault point and
explores the schedule space around each kill.  The fault model (DESIGN.md
"Fault model") predicts one classification per mechanism:

=======================  ===================  =====================================
mechanism                classification       why
=======================  ===================  =====================================
semaphore                fault-deadlocking    a permit has no owner; it dies with
                                              its holder and waiters starve
semaphore+crash_release  fault-containing     opt-in ownership returns the permit
mutex                    fault-containing     robust-mutex handoff to next waiter
monitor                  fault-containing     dead occupant's possession passes on
serializer               fault-containing     dead possessor/crowd member cleaned up
pathexpr                 fault-containing     semaphore network repaired (V forward
                                              / undo backward)
channel                  fault-propagating    partner is *told* via PeerFailed
                                              (Erlang-link style) instead of wedged
=======================  ===================  =====================================
"""

from conftest import emit

from repro.verify.chaos import (
    CONTAINING,
    DEADLOCKING,
    expected_classifications,
    robustness_report,
)


def test_bench_fault_tolerance_table() -> None:
    """Regenerate the fault-containment table; assert the fault model."""
    results, table = robustness_report(fast=False)
    emit("E12: fault containment by mechanism", table)

    expected = expected_classifications()
    got = {r.name: r.classification for r in results}
    assert got == expected

    by_name = {r.name: r for r in results}
    # The raw semaphore must actually exhibit the deadlock (not vacuously).
    assert by_name["semaphore"].deadlocked > 0
    assert by_name["semaphore"].classification == DEADLOCKING
    # Its crash_release variant repairs exactly that failure mode.
    assert by_name["semaphore+crash_release"].deadlocked == 0
    assert by_name["semaphore+crash_release"].classification == CONTAINING
    # The channel variant propagates but never wedges.
    assert by_name["channel"].propagated > 0
    assert by_name["channel"].deadlocked == 0
    # Containing mechanisms contain in *every* explored schedule.
    for name in ("mutex", "monitor", "serializer", "pathexpr"):
        res = by_name[name]
        assert res.propagated == 0 and res.deadlocked == 0, name
        assert res.contained > 0, name
