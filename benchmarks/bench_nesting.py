"""E7 — nested monitor calls (§5.2).

Regenerates the three-way comparison: naive nested monitors deadlock; the
§2 protected-resource structure avoids the deadlock; serializer
crowds avoid it by construction.
"""

from conftest import emit

from repro.problems.hierarchy import (
    run_layered_protected,
    run_nested_monitors,
    run_serializer_nested,
)


def compute():
    return (
        run_nested_monitors(),
        run_layered_protected(),
        run_serializer_nested(),
    )


def test_e7_nested_monitor_calls(benchmark):
    nested, layered, serializer = benchmark(compute)

    assert nested.deadlocked
    assert set(nested.blocked) == {"consumer0", "producer"}

    assert not layered.deadlocked
    assert layered.results["received"] == [42]

    assert not serializer.deadlocked
    assert serializer.results["received"] == [42]

    lines = [
        "naive nested monitors:       DEADLOCK  (blocked: {})".format(
            ", ".join(nested.blocked)
        ),
        "section-2 layered structure: completes (received {})".format(
            layered.results["received"]
        ),
        "serializer join_crowd:       completes (received {})".format(
            serializer.results["received"]
        ),
    ]
    emit("E7: nested monitor calls", "\n".join(lines))
