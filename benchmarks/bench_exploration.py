"""E14 — exhaustive schedule-space verification (the simulator dividend).

DESIGN.md §6 justifies the deterministic runtime by what it enables: every
interleaving of a small configuration can be *enumerated*, turning the
paper's behavioural claims into exhaustively checked facts rather than
test-sampled ones.  This bench:

* verifies readers/writers exclusion over the complete schedule space of a
  1-reader/1-writer workload for each core mechanism;
* reports the size of each mechanism's schedule space — a quantitative
  proxy for how much nondeterminism the construct leaves exposed (more
  internal hand-offs ⇒ more interleavings to get right);
* confirms the footnote-3 anomaly is the ONLY strict-priority violation
  class in the explored space of the Figure-1 program (every violating
  schedule has W2 overtaking a pending read).
"""

from conftest import emit

from repro.core import ascii_table
from repro.problems.readers_writers import (
    CcrReadersPriority,
    MonitorReadersPriority,
    PathReadersPriority,
    SemaphoreReadersPriority,
    SerializerReadersPriority,
)
from repro.problems.readers_writers.anomaly import footnote3_workload
from repro.runtime import Scheduler
from repro.verify import (
    ScheduleExplorer,
    check_mutual_exclusion,
    check_readers_priority_strict,
)

MECHANISMS = [
    ("semaphore", SemaphoreReadersPriority),
    ("monitor", MonitorReadersPriority),
    ("serializer", SerializerReadersPriority),
    ("pathexpr", PathReadersPriority),
    ("ccr", CcrReadersPriority),
]


def build_for(cls):
    def build(policy):
        sched = Scheduler(policy=policy)
        impl = cls(sched)

        def reader():
            yield from impl.read(work=1)

        def writer():
            yield from impl.write(1, work=1)

        sched.spawn(reader, name="R")
        sched.spawn(writer, name="W")
        return sched.run()

    return build


def exclusion_check(run):
    return check_mutual_exclusion(
        run.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
    )


def compute():
    spaces = {}
    for name, cls in MECHANISMS:
        explorer = ScheduleExplorer(
            build_for(cls), max_runs=20000, max_depth=150
        )
        outcome = explorer.explore(exclusion_check)
        spaces[name] = (outcome.runs, outcome.exhausted, outcome.ok)
    # Anomaly-space audit of the Figure-1 program.
    explorer = ScheduleExplorer(
        lambda policy: footnote3_workload(
            lambda sched: PathReadersPriority(sched), policy=policy
        ),
        max_runs=3000,
        max_depth=150,
    )
    anomaly_outcome = explorer.explore(
        lambda run: check_readers_priority_strict(run.trace, "db")
    )
    return spaces, anomaly_outcome


def test_e14_exhaustive_verification(benchmark):
    spaces, anomaly_outcome = benchmark(compute)

    for name, (runs, exhausted, ok) in spaces.items():
        assert exhausted, "{}: space not exhausted in budget".format(name)
        assert ok, "{}: exclusion violated in some schedule".format(name)
        assert runs >= 1

    # The anomaly is present and every violation names a pending-read
    # overtake by a write (no other violation class in the space).
    assert anomaly_outcome.violations, "anomaly must be reachable"
    for __, messages in anomaly_outcome.violations:
        assert all("db.write" in m and "pending" in m for m in messages)

    rows = [
        [name, str(runs), "yes" if ok else "NO"]
        for name, (runs, __, ok) in sorted(
            spaces.items(), key=lambda kv: kv[1][0]
        )
    ]
    emit(
        "E14: exhaustive schedule-space verification (1R+1W workload)",
        ascii_table(["mechanism", "schedules", "exclusion safe"], rows)
        + "\n\nFigure-1 anomaly space: {} schedules explored, {} violating "
        "(space {}exhausted)".format(
            anomaly_outcome.runs,
            len(anomaly_outcome.violations),
            "" if anomaly_outcome.exhausted else "not ",
        ),
    )
