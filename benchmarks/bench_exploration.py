"""E14 — exhaustive schedule-space verification (the simulator dividend).

DESIGN.md §6 justifies the deterministic runtime by what it enables: every
interleaving of a small configuration can be *enumerated*, turning the
paper's behavioural claims into exhaustively checked facts rather than
test-sampled ones.  This bench:

* verifies readers/writers exclusion over the complete schedule space of a
  1-reader/1-writer workload for each core mechanism;
* reports the size of each mechanism's schedule space — a quantitative
  proxy for how much nondeterminism the construct leaves exposed (more
  internal hand-offs ⇒ more interleavings to get right);
* confirms the footnote-3 anomaly is the ONLY strict-priority violation
  class in the explored space of the Figure-1 program (every violating
  schedule has W2 overtaking a pending read);
* measures the exploration engine itself — schedules/sec of the naive
  serial DFS vs the equivalence-pruned search vs the multi-process
  frontier — and persists the numbers to BENCH_exploration.json.
"""

import os
import time

from conftest import emit, persist

from repro.core import ascii_table
from repro.problems.readers_writers import (
    CcrReadersPriority,
    MonitorReadersPriority,
    PathReadersPriority,
    SemaphoreReadersPriority,
    SerializerReadersPriority,
)
from repro.problems.readers_writers.anomaly import footnote3_workload
from repro.runtime import Scheduler
from repro.verify import (
    ScheduleExplorer,
    check_mutual_exclusion,
    check_readers_priority_strict,
)

MECHANISMS = [
    ("semaphore", SemaphoreReadersPriority),
    ("monitor", MonitorReadersPriority),
    ("serializer", SerializerReadersPriority),
    ("pathexpr", PathReadersPriority),
    ("ccr", CcrReadersPriority),
]


def build_for(cls):
    def build(policy):
        sched = Scheduler(policy=policy)
        impl = cls(sched)

        def reader():
            yield from impl.read(work=1)

        def writer():
            yield from impl.write(1, work=1)

        sched.spawn(reader, name="R")
        sched.spawn(writer, name="W")
        return sched.run()

    return build


def exclusion_check(run):
    return check_mutual_exclusion(
        run.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
    )


def compute():
    spaces = {}
    for name, cls in MECHANISMS:
        explorer = ScheduleExplorer(
            build_for(cls), max_runs=20000, max_depth=150
        )
        outcome = explorer.explore(exclusion_check)
        spaces[name] = (outcome.runs, outcome.exhausted, outcome.ok)
    # Anomaly-space audit of the Figure-1 program.
    explorer = ScheduleExplorer(
        lambda policy: footnote3_workload(
            lambda sched: PathReadersPriority(sched), policy=policy
        ),
        max_runs=3000,
        max_depth=150,
    )
    anomaly_outcome = explorer.explore(
        lambda run: check_readers_priority_strict(run.trace, "db")
    )
    return spaces, anomaly_outcome


def test_e14_exhaustive_verification(benchmark):
    spaces, anomaly_outcome = benchmark(compute)

    for name, (runs, exhausted, ok) in spaces.items():
        assert exhausted, "{}: space not exhausted in budget".format(name)
        assert ok, "{}: exclusion violated in some schedule".format(name)
        assert runs >= 1

    # The anomaly is present and every violation names a pending-read
    # overtake by a write (no other violation class in the space).
    assert anomaly_outcome.violations, "anomaly must be reachable"
    for __, messages in anomaly_outcome.violations:
        assert all("db.write" in m and "pending" in m for m in messages)

    rows = [
        [name, str(runs), "yes" if ok else "NO"]
        for name, (runs, __, ok) in sorted(
            spaces.items(), key=lambda kv: kv[1][0]
        )
    ]
    emit(
        "E14: exhaustive schedule-space verification (1R+1W workload)",
        ascii_table(["mechanism", "schedules", "exclusion safe"], rows)
        + "\n\nFigure-1 anomaly space: {} schedules explored, {} violating "
        "(space {}exhausted)".format(
            anomaly_outcome.runs,
            len(anomaly_outcome.violations),
            "" if anomaly_outcome.exhausted else "not ",
        ),
    )


# ----------------------------------------------------------------------
# E14b — engine throughput: naive vs pruned vs parallel
# ----------------------------------------------------------------------
PAR_WORKERS = 4


def _timed_explore(target, **kwargs):
    from repro.explore import explore_parallel

    start = time.perf_counter()
    result = explore_parallel(target, **kwargs)
    seconds = time.perf_counter() - start
    return result, seconds


def explore_parallel_with(target, telemetry, **kwargs):
    from repro.explore import explore_parallel

    return explore_parallel(target, telemetry=telemetry, **kwargs)


def _stats(result, seconds):
    return {
        "runs": result.runs,
        "violations": len(result.violations),
        "exhausted": result.exhausted,
        "pruned": result.pruned,
        "seconds": round(seconds, 4),
        "schedules_per_sec": round(result.runs / seconds, 1) if seconds else None,
    }


def test_e14b_engine_throughput():
    from repro.explore import get_target

    # fcfs_resource/monitor: a space both searches exhaust quickly, so the
    # pruning ratio compares full coverage with full coverage.
    target = get_target("fcfs_resource", "monitor")
    budget = dict(max_runs=20000, max_depth=80)

    naive, naive_s = _timed_explore(target, workers=1, prune=False, **budget)
    pruned, pruned_s = _timed_explore(target, workers=1, prune=True, **budget)
    assert naive.exhausted and pruned.exhausted
    assert pruned.runs < naive.runs, "pruning must shrink the search"
    assert len(pruned.violations) == len(naive.violations) == 0

    # Parallel frontier on the same space: identical result, wall-clock
    # measured against the single-worker run of the same algorithm.
    par, par_s = _timed_explore(
        target, workers=PAR_WORKERS, prune=False, **budget
    )
    assert (par.runs, par.exhausted) == (naive.runs, naive.exhausted)
    speedup = naive_s / par_s if par_s else 0.0

    # A second, telemetry-attached parallel run answers what the wall
    # clock alone cannot: how busy the workers actually were, and whether
    # the configuration even had the cores its worker count implies.
    # (Separate run so the telemetry never taints the timed one.)
    from repro.obs import HarnessTelemetry

    telemetry = HarnessTelemetry()
    observed = explore_parallel_with(target, telemetry,
                                     workers=PAR_WORKERS, prune=False,
                                     **budget)
    assert (observed.runs, observed.exhausted) == (par.runs, par.exhausted)
    attribution = telemetry.attribution()
    cpus = os.cpu_count() or 1
    oversubscribed = PAR_WORKERS > cpus

    payload = {
        "target": "fcfs_resource/monitor",
        "cpu_count": cpus,
        "serial_naive": _stats(naive, naive_s),
        "serial_pruned": _stats(pruned, pruned_s),
        "parallel": dict(
            _stats(par, par_s), workers=PAR_WORKERS,
            oversubscribed=oversubscribed,
            effective_workers=attribution["effective_workers"],
            worker_utilization=attribution["worker_utilization"],
        ),
        "pruning_ratio": round(naive.runs / pruned.runs, 2),
        "parallel_speedup": round(speedup, 2),
        "speedup_attribution": attribution,
    }
    persist("exploration", payload)
    emit(
        "E14b: exploration engine throughput",
        ascii_table(
            ["search", "schedules", "seconds", "sched/sec"],
            [
                ["naive DFS", str(naive.runs), "{:.3f}".format(naive_s),
                 "{:.0f}".format(naive.runs / naive_s)],
                ["pruned", str(pruned.runs), "{:.3f}".format(pruned_s),
                 "{:.0f}".format(pruned.runs / pruned_s)],
                ["parallel x{}".format(PAR_WORKERS), str(par.runs),
                 "{:.3f}".format(par_s), "{:.0f}".format(par.runs / par_s)],
            ],
        )
        + "\n\npruning ratio {:.2f}x, parallel speedup {:.2f}x "
        "({} cpu(s), {} effective worker(s), utilization {})".format(
            naive.runs / pruned.runs, speedup, cpus,
            attribution["effective_workers"],
            attribution["worker_utilization"],
        )
        + "\n" + attribution["explanation"],
    )

    # The >=2x parallel win needs actual cores.  An oversubscribed run
    # (workers > cpus: lanes time-slice, speedup < 1 is the expected
    # outcome) is recorded as such and exempted from the gate.
    if not oversubscribed:
        assert speedup >= 2.0, (
            "expected >=2x schedules/sec with {} workers on {} cpu(s), "
            "got {:.2f}x".format(PAR_WORKERS, cpus, speedup)
        )
