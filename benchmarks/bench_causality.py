"""E16 — critical-path structure of every mechanism under identical load.

The causal layer (:mod:`repro.obs.critical_path`) claims its backward
waker-chain walk *tiles* the run: critical-path tick totals plus off-path
slack exactly equal the makespan, for the whole run and per process.  This
bench asserts that conservation law on **every** profileable (problem,
mechanism) pair — it is the load-bearing invariant behind the regression
gate's ``path_blocked_ticks`` metric.

It then persists the per-mechanism causal fingerprint (critical-path
length, attribution shares by constraint kind and information type, the
hottest waited-on object, the biggest what-if lever) to
``BENCH_causality.json`` so the numbers diff across commits.  The shares
are the paper's §3/§4 vocabulary projected onto *time*: where the figures
count which information types a mechanism must consult, this table shows
how many ticks of the makespan each constraint kind actually cost.
"""

from conftest import emit, persist

from repro.obs import profileable, run_causal


def _fingerprint(path):
    shares = path.constraint_ticks()
    blocked = path.blocked_ticks_by_object()
    hot = max(blocked, key=blocked.get) if blocked else None
    speedups = path.virtual_speedups()
    lever = (max(speedups, key=lambda o: speedups[o]["bound"])
             if speedups else None)
    return {
        "makespan": path.makespan,
        "path_ticks": path.path_ticks,
        "slack": path.slack,
        "segments": len(path.segments),
        "constraint_ticks": dict(sorted(shares.items())),
        "info_type_ticks": dict(sorted(path.info_type_ticks().items())),
        "hottest_object": hot,
        "biggest_lever": lever,
        "lever_bound": speedups[lever]["bound"] if lever else 0,
    }


def test_e16_conservation_everywhere():
    """path_ticks + slack == makespan on every pair; slack is zero (the
    walk tiles the run) and per-process on_path + slack == makespan."""
    checked = 0
    for label in profileable():
        problem, mechanism = label.split("/")
        path = run_causal(problem, mechanism).path
        assert path.path_ticks + path.slack == path.makespan, label
        assert path.slack == 0, (
            "{}: walk left {} tick(s) uncovered".format(label, path.slack))
        for name, row in path.per_process().items():
            assert row["on_path"] + row["slack"] == path.makespan, (
                "{}: process {} violates conservation".format(label, name))
        checked += 1
    assert checked >= 30, "registry shrank? only {} pairs".format(checked)


def test_e16_causal_fingerprints():
    rows = []
    fingerprints = {}
    for label in sorted(profileable()):
        problem, mechanism = label.split("/")
        path = run_causal(problem, mechanism).path
        fp = _fingerprint(path)
        fingerprints[label] = fp
        shares = fp["constraint_ticks"]
        rows.append(
            "%-32s %5d %5d %5d %5d %5d  %s"
            % (label, fp["makespan"],
               shares.get("run", 0), shares.get("exclusion", 0),
               shares.get("priority", 0), shares.get("time", 0),
               fp["hottest_object"] or "-"))
    persist("causality", {"critical_paths": fingerprints})
    emit(
        "E16: critical-path attribution per (problem, mechanism)",
        "%-32s %5s %5s %5s %5s %5s  %s\n" % (
            "pair", "span", "run", "excl", "prio", "time", "hottest")
        + "\n".join(rows),
    )
    # Every profiled pair spends *some* makespan on synchronization — a
    # pair whose path is pure run time would mean the workload never
    # contends and belongs in a different bench.
    stalled = [label for label, fp in fingerprints.items()
               if fp["makespan"] > 0 and fp["path_ticks"] == 0]
    assert not stalled, stalled


def test_e16_deterministic_records():
    """The same seed reproduces the identical record (the property the
    regression gate relies on: a clean re-run must not trip it)."""
    first = run_causal("bounded_buffer", "semaphore", seed=7).record
    second = run_causal("bounded_buffer", "semaphore", seed=7).record
    assert first.to_dict() == second.to_dict()
