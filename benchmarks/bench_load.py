"""E19 — heavy-traffic saturation curves over the streaming telemetry sink.

The load observatory's three measured claims, persisted to
``BENCH_load.json``:

* **Saturation curves per mechanism.**  Throughput (ops per 1000 virtual
  ticks) and p50/p95/p99 latency (seq axis) versus client count for all
  six §5 mechanisms, swept at a fixed arrival horizon so offered load
  rises with population.  This is the measured version of the paper's
  qualitative §5.3 cost ranking — ``steps_per_op`` is the cost unit.
* **Streaming memory is O(shards × windows), never O(events).**  Two runs
  with identical sink configuration but ~4× the event volume must retain
  a near-identical number of cells (sketch buckets + window cells);
  asserted, plus an absolute ceiling derived from the configuration.
* **Sketch accuracy.**  Quantile estimates from the
  :class:`~repro.obs.streaming.QuantileSketch` must sit within its
  declared relative error of exact nearest-rank quantiles on a recorded
  reference run.

Plus the E15 gate re-check on the load workload: a swarm run with no sink
versus ``NullSink`` stays within the same <5% bound, pinning down that the
streaming subsystem added nothing to the uninstrumented hot path.
"""

from time import perf_counter

from conftest import emit, persist

from repro.load import LOAD_MECHANISMS, run_load, saturation_curve
from repro.load.engine import ShardedResource
from repro.load.arrivals import make_arrivals
from repro.obs import NullSink, QuantileSketch, StreamingSink
from repro.runtime.scheduler import Scheduler

_SWEEP = (16, 64, 256)
_REPEATS = 7


def test_e19_saturation_curves():
    curves = {}
    rows = []
    for mechanism in LOAD_MECHANISMS:
        points = saturation_curve(mechanism, _SWEEP, ops=2)
        curves[mechanism] = [p.to_dict() for p in points]
        for p in points:
            rows.append("%-14s %5d clients  %8.1f ops/ktick  %5.2f steps/op"
                        "  p50/p95/p99 %6.1f/%6.1f/%6.1f"
                        % (mechanism, p.clients, p.throughput,
                           p.steps_per_op, p.latency["p50"],
                           p.latency["p95"], p.latency["p99"]))
    persist("load", {"saturation": {
        "sweep": list(_SWEEP),
        "shards": 2,
        "ops": 2,
        "arrival": "poisson",
        "mechanisms": curves,
    }})
    emit("E19: per-mechanism saturation curves", "\n".join(rows))
    for mechanism, points in curves.items():
        assert len(points) == len(_SWEEP)
        for p in points:
            # Every client completes ops puts + ops gets, minus at most a
            # couple of daemon-truncated ops (CSP's server dies mid-serve).
            assert p["completed"] >= 2 * 2 * p["clients"] - 2, (mechanism, p)
            assert p["latency"]["p99"] >= p["latency"]["p50"]
    # The §5.3 ranking, measured: the serializer pays more per op than the
    # bare semaphore at every sweep point.
    for sem, ser in zip(curves["semaphore"], curves["serializer"]):
        assert ser["latency"]["p95"] >= sem["latency"]["p95"]


def test_e19_streaming_memory_is_bounded():
    def cells_for(ops):
        # Same swarm, same arrival process, same windows — only the event
        # volume changes (each client cycles `ops` times).
        sink = StreamingSink(window=32, max_windows=48, shard_prefix=True)
        point, sink = run_load(
            "semaphore", clients=128, ops=ops, shards=2,
            rate=0.5, sink=sink, keep_windows=False)
        return point.events, sink.memory_cells()

    small_events, small_cells = cells_for(2)
    big_events, big_cells = cells_for(8)
    assert big_events > 3.5 * small_events, "load did not actually scale"
    growth = big_cells / float(small_cells)
    # Hard configuration ceiling: every retained cell is a sketch bucket,
    # a window counter, or an in-flight entry — none scale with events.
    shards, windows, keys_per_window = 2, 48, 8
    buckets_per_sketch = 64          # generous: log-gamma span of seq deltas
    ceiling = (shards * 4 * buckets_per_sketch
               + windows * keys_per_window + 64)
    persist("load", {"memory": {
        "small": {"events": small_events, "cells": small_cells},
        "big": {"events": big_events, "cells": big_cells},
        "growth_ratio": round(growth, 3),
        "ceiling": ceiling,
    }})
    emit("E19: streaming memory bound",
         "events %d -> %d (x%.1f), cells %d -> %d (x%.2f), ceiling %d"
         % (small_events, big_events, big_events / small_events,
            small_cells, big_cells, growth, ceiling))
    # ~4x the events may fill a few more windows/buckets but must stay far
    # from linear growth and under the configuration ceiling.
    assert growth < 1.6, "cells grew with event count: x%.2f" % growth
    assert big_cells <= ceiling, (big_cells, ceiling)


def test_e19_sketch_matches_exact_quantiles():
    # A recorded reference run: spy on every sketch observation from a
    # real 200-client swarm, then compare merged sketch quantiles to the
    # exact nearest-rank quantiles of the same observations.
    rel = 0.01
    samples = []
    orig_observe = QuantileSketch.observe

    def spy(self, value, n=1):
        samples.append((id(self), value))
        return orig_observe(self, value, n)

    QuantileSketch.observe = spy
    try:
        point, sink = run_load("monitor", clients=200, ops=2, shards=2,
                               rate=1.0, seed=3, keep_windows=False)
    finally:
        QuantileSketch.observe = orig_observe

    assert point.completed > 0
    merged = sink.merged_latency("total")
    total_ids = {id(h["total"]) for h in sink.op_sketches.values()}
    exact = sorted(v for sid, v in samples if sid in total_ids)
    assert len(exact) == merged.count and exact

    errors = {}
    for q in (50, 90, 95, 99):
        rank = max(0, min(len(exact) - 1,
                          int(round(q / 100.0 * len(exact))) - 1))
        truth = exact[rank]
        est = merged.quantile(q)
        err = abs(est - truth) / truth if truth else 0.0
        errors["p%d" % q] = {"exact": truth, "sketch": round(est, 3),
                             "rel_error": round(err, 5)}
        # Declared bound is on the value axis; nearest-rank discreteness on
        # small samples adds at most one bucket width, hence 2e + slack.
        assert err <= 2 * rel + 1e-9, (q, truth, est, err)
    persist("load", {"sketch_accuracy": {
        "rel_error_declared": rel,
        "observations": len(exact),
        "quantiles": errors,
    }})
    emit("E19: sketch vs exact quantiles (%d obs)" % len(exact),
         "\n".join("%s exact %s sketch %s (err %.3f%%)"
                   % (k, v["exact"], v["sketch"], 100 * v["rel_error"])
                   for k, v in sorted(errors.items())))


def _swarm_once(sink) -> float:
    sched = Scheduler(sink=sink)
    resource = ShardedResource(sched, "semaphore", shards=2, capacity=8)
    gaps = make_arrivals("poisson", 1.0, seed=0)

    def client(j):
        impl = resource.route(j)

        def body():
            for k in range(4):
                yield from impl.put((j, k))
                yield from impl.get()
        return body

    def driver():
        for j in range(150):
            gap = next(gaps)
            if gap > 0:
                yield from sched.sleep(gap)
            sched.spawn(client(j), name="c%d" % j)

    sched.spawn(driver, name="driver")
    start = perf_counter()
    sched.run()
    return perf_counter() - start


def test_e19_null_path_overhead_under_e15_gate():
    bare = min(_swarm_once(None) for _ in range(_REPEATS))
    null = min(_swarm_once(NullSink()) for _ in range(_REPEATS))
    streaming = min(
        _swarm_once(StreamingSink(shard_prefix=True)) for _ in range(_REPEATS)
    )
    null_ratio = null / bare
    streaming_ratio = streaming / bare
    persist("load", {"overhead": {
        "bare_seconds": round(bare, 6),
        "null_sink_seconds": round(null, 6),
        "streaming_sink_seconds": round(streaming, 6),
        "null_overhead_ratio": round(null_ratio, 4),
        "streaming_overhead_ratio": round(streaming_ratio, 4),
    }})
    emit("E19: null-path overhead on the load workload",
         "bare      {:.4f}s\n"
         "null sink {:.4f}s  ({:+.1%})\n"
         "streaming {:.4f}s  ({:+.1%})".format(
             bare, null, null_ratio - 1, streaming, streaming_ratio - 1))
    assert null_ratio < 1.05, (
        "streaming subsystem must leave the uninstrumented path alone "
        "(null ratio {:.1%})".format(null_ratio - 1))
