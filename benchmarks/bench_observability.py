"""E15 — observability overhead and per-mechanism contention profiles.

Two claims worth pinning down with numbers:

* **The null sink is free.**  ``Scheduler(sink=NullSink())`` normalizes to
  the uninstrumented fast path (``sink=None``), so turning instrumentation
  *off* must cost nothing.  Asserted at < 5% on a hot workload using
  min-of-N wall-clock times (the minimum is the noise-robust estimator for
  a deterministic workload).
* **Full recording is cheap enough to leave on.**  The
  :class:`~repro.obs.sink.RecordingSink` ratio is reported (not asserted —
  it legitimately pays for per-event dispatch and gauge samples).

The second half profiles every bounded-buffer solution under identical
load and persists the per-mechanism contention fingerprint (blocked time,
handoffs, switches, hottest object) to ``BENCH_observability.json``.
"""

from time import perf_counter

from conftest import emit, persist

from repro.obs import NullSink, RecordingSink, run_profile
from repro.problems import bounded_buffer
from repro.problems.registry import get_solution, solutions_for
from repro.runtime.scheduler import Scheduler

#: Hot workload: enough items that scheduler-loop cost dominates setup.
_LOAD = dict(producers=4, consumers=4, items_each=25)
_REPEATS = 7


def _run_once(sink) -> float:
    factory = get_solution("bounded_buffer", "semaphore").factory
    sched = Scheduler(sink=sink)
    start = perf_counter()
    bounded_buffer.run_producers_consumers(factory, sched=sched, **_LOAD)
    return perf_counter() - start


def _best_of(make_sink) -> float:
    return min(_run_once(make_sink()) for _ in range(_REPEATS))


def test_e15_null_sink_is_free():
    bare = _best_of(lambda: None)
    null = _best_of(NullSink)
    recording = _best_of(RecordingSink)
    null_ratio = null / bare
    recording_ratio = recording / bare
    report = {
        "load": dict(_LOAD, repeats=_REPEATS),
        "bare_seconds": round(bare, 6),
        "null_sink_seconds": round(null, 6),
        "recording_sink_seconds": round(recording, 6),
        "null_overhead_ratio": round(null_ratio, 4),
        "recording_overhead_ratio": round(recording_ratio, 4),
    }
    persist("observability", {"overhead": report})
    emit(
        "E15: instrumentation overhead (bounded_buffer/semaphore, hot loop)",
        "bare      {:.4f}s\n"
        "null sink {:.4f}s  ({:+.1%})\n"
        "recording {:.4f}s  ({:+.1%})".format(
            bare, null, null_ratio - 1, recording, recording_ratio - 1
        ),
    )
    assert null_ratio < 1.05, (
        "null sink must be within 5% of the uninstrumented scheduler "
        "(got {:.1%})".format(null_ratio - 1)
    )


def test_e15_contention_profiles():
    rows = []
    profiles = {}
    for entry in solutions_for("bounded_buffer", None):
        report = run_profile(entry.problem, entry.mechanism)
        metrics = report.metrics
        blocked = report.blocked_by_object
        hottest = max(blocked, key=blocked.get) if blocked else "-"
        profiles[entry.mechanism] = {
            "steps": metrics.steps,
            "context_switches": metrics.context_switches,
            "events": metrics.events,
            "handoffs": metrics.handoffs,
            "blocked_total": sum(blocked.values()),
            "hottest_object": hottest,
            "hottest_blocked": blocked.get(hottest, 0),
        }
        rows.append(
            "%-14s steps=%-4d switches=%-4d blocked=%-5d handoffs=%-3d "
            "hottest=%s" % (
                entry.mechanism, metrics.steps, metrics.context_switches,
                sum(blocked.values()), metrics.handoffs, hottest)
        )
        # Possession/crowd books must close on a clean run.  (blocked /
        # service spans legitimately leak: daemon servers park forever and
        # can be mid-operation when the last client exits.)
        leaked = [s for s in report.spans
                  if s.outcome == "leaked" and s.kind in ("possession",
                                                          "crowd")]
        assert not leaked, (entry.mechanism, leaked)
        assert metrics.events == len(report.result.trace)
    persist("observability", {"bounded_buffer_profiles": profiles})
    emit("E15: bounded-buffer contention by mechanism", "\n".join(rows))
    # Blocking mechanisms must actually register contention on this load.
    assert all(p["blocked_total"] > 0 for p in profiles.values())
