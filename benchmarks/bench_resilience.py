"""Experiment E22 — combined-fault resilience: crash-restart × partition.

E17 measures recovery from process death, E18 from network failure; this
bench measures the *product* space — nodes that crash, restart with only
their durable state, and rejoin inside (or around) a partition, at the
five-node cluster size.  Three questions:

1. **Is the model right?**  Every (scenario, cell) classification must
   match the DESIGN.md §16 prediction — including the two deliberate
   extremes: the Lamport mutex wedges under a crash+partition (no
   redundancy to fail over to), and the unfenced restart lock is the one
   predicted split-brain (the amnesiac holder resumes its dead session's
   writes).  No cell may surprise.
2. **Does fencing close the hole?**  The joint fault-plan search must
   find a ≤2-fault crash+partition witness against the unfenced scenario,
   ddmin-minimize it to one kill plus one cut, and the very same faults
   must classify partition-tolerant with fencing on.
3. **How fast, at what cost?**  Combined-fault failover / post-heal MTTR
   and service availability per cell, with restart counts and message
   overhead, persisted to ``BENCH_resilience.json`` for cross-commit
   diffing.
"""

from conftest import emit, persist

from repro.resilience import (
    RESILIENCE_CLUSTER,
    expected_resilience_classifications,
    resilience_report,
    search_restart_witness,
)
from repro.verify.partition import SPLIT_BRAIN, TOLERANT, WEDGED


def test_bench_resilience_table() -> None:
    """Regenerate the scenario × cell table; assert the resilience model."""
    results, table = resilience_report(fast=False)
    emit("E22: combined-fault resilience by scenario", table)

    # Every cell matches the model — no surprises anywhere, and the only
    # split-brain evidence lives in the cell built to document it.
    for res in results:
        assert res.surprises == [], res.name
        for o in res.outcomes:
            if res.name != "restart_lock_unfenced":
                assert o.violations == [], (res.name, o.cell_name)

    expected = expected_resilience_classifications(RESILIENCE_CLUSTER)
    observed = {
        (res.name, o.cell_name): o.classification
        for res in results for o in res.outcomes
    }
    assert observed == expected

    by_cell = {(res.name, o.cell_name): o
               for res in results for o in res.outcomes}

    # The predicted extremes are witnessed, not merely allowed.
    assert observed[("lamport_mutex", "crash+partition")] == WEDGED
    unfenced = by_cell[("restart_lock_unfenced", "crash+partition")]
    assert unfenced.classification == SPLIT_BRAIN
    assert unfenced.violations
    assert unfenced.restarts >= 1

    # The fenced twin survives the identical faults, restarts included,
    # and reports measured recovery on both MTTR legs plus availability.
    fenced = by_cell[("restart_lock", "crash+partition")]
    assert fenced.classification == TOLERANT
    assert fenced.restarts >= 1
    assert fenced.mttr_failover is not None
    assert fenced.mttr_post_heal is not None
    assert fenced.availability is not None and 0.0 < fenced.availability <= 1.0

    # The redundant quorum scenarios keep serving through the combined
    # faults at the five-node size — the availability number exists and
    # recovery is measured.
    for cell in (("quorum_lock", "crash+partition"),
                 ("leader_election", "crash+partition")):
        o = by_cell[cell]
        assert o.classification == TOLERANT, cell
        assert o.availability is not None, cell
        assert (o.mttr_failover is not None
                or o.mttr_post_heal is not None), cell
        assert o.message_stats.get("sent", 0) > 0, cell

    persist("resilience", {
        "cluster": RESILIENCE_CLUSTER,
        "scenarios": {
            res.name: {
                o.cell_name: {
                    "faults": o.faults,
                    "runs": o.runs,
                    "split_brain": o.split_brain,
                    "wedged": o.wedged,
                    "tolerant": o.tolerant,
                    "violations": len(o.violations),
                    "restarts": o.restarts,
                    "classification": o.classification,
                    "mttr_failover": o.mttr_failover,
                    "mttr_post_heal": o.mttr_post_heal,
                    "availability": o.availability,
                    "message_stats": o.message_stats,
                }
                for o in res.outcomes
            }
            for res in results
        },
    })


def test_bench_resilience_witness_search() -> None:
    """The joint search finds and minimizes the crash+partition witness."""
    found, fenced_label = search_restart_witness()

    assert found.witness is not None
    assert found.witness_label == SPLIT_BRAIN
    # 1-minimal and genuinely combined: one kill plus one cut, and the
    # singleton prefix of the enumeration already proved either fault
    # alone is survivable.
    assert len(found.witness) <= 2
    assert found.witness_kills == 1
    assert found.witness_cuts == 1
    # Fencing closes the hole under the very same fault plans.
    assert fenced_label == TOLERANT

    # Determinism: the search is a pure function of the virtual clock.
    again, again_label = search_restart_witness()
    assert again.to_dict() == found.to_dict()
    assert again_label == fenced_label

    payload = found.to_dict()
    payload["fenced_replay"] = fenced_label
    emit("E22: minimal combined witness",
         "{}\nfenced replay: {}".format(found.describe(), fenced_label))
    persist("resilience", {"search": payload})
