"""E9 — ablation of the paper's selection assumption.

§5.1: "We will make the assumption that the selection operator always
chooses the process that has been waiting longest.  While this assumption is
not made in [7], it is necessary for many problems, including some that
appear in that paper."

The ablation switches the wake policy of every semaphore inside the compiled
paths (fifo → lifo → random) and shows:

* the FCFS resource keeps working ONLY under fifo — request-time handling in
  base paths rests entirely on the assumption;
* exclusion safety (the readers/writers Figure-1 program) survives any wake
  policy — the assumption is about *ordering*, not *safety*.
"""

from conftest import emit

from repro.problems.fcfs_resource import (
    PathFcfsResource,
    make_verifier as fcfs_verifier,
)
from repro.problems.readers_writers import (
    BURST_PLAN,
    PathReadersPriority,
    run_workload,
)
from repro.verify import check_mutual_exclusion


def compute():
    outcomes = {}
    for policy in ("fifo", "lifo", "random"):
        verifier = fcfs_verifier(
            lambda s, p=policy: PathFcfsResource(s, wake_policy=p, seed=13)
        )
        outcomes[policy] = verifier()
    safety = {}
    for policy in ("fifo", "lifo", "random"):
        result = run_workload(
            lambda s, p=policy: PathReadersPriority(s, wake_policy=p, seed=13),
            BURST_PLAN,
        )
        safety[policy] = check_mutual_exclusion(
            result.trace, "db", ["write"], ["read"]
        ) + (["deadlock"] if result.deadlocked else [])
    return outcomes, safety


def test_e9_selection_assumption_ablation(benchmark):
    outcomes, safety = benchmark(compute)

    assert outcomes["fifo"] == [], "FIFO selection must give FCFS"
    assert outcomes["lifo"] != [], "LIFO wake must break FCFS"
    assert outcomes["random"] != [], "random wake must break FCFS"

    for policy, violations in safety.items():
        assert violations == [], (
            "exclusion must be wake-policy independent ({})".format(policy)
        )

    lines = ["FCFS resource, path `path use end`:"]
    for policy in ("fifo", "lifo", "random"):
        verdict = "pass" if not outcomes[policy] else "FAIL ({} violations)".format(
            len(outcomes[policy])
        )
        lines.append("  wake policy {:<7} -> {}".format(policy, verdict))
    lines.append("Figure-1 exclusion safety: unaffected by wake policy "
                 "(ordering-only assumption, as the paper implies)")
    emit("E9: selection-assumption ablation", "\n".join(lines))
