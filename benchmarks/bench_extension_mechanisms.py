"""E11 — the methodology applied beyond the paper (§6 future work).

"Our analysis thus far has been limited to synchronization constructs for a
shared resource model.  We have not looked extensively at message-passing
models, or more recent mechanisms, such as guarded commands [19] and …
'Communicating Sequential Processes' [20] … The techniques presented in this
paper may prove useful in these evaluations."

This bench *performs* those evaluations: CSP channels with guarded
alternative, and Brinch Hansen's conditional critical regions (paper ref
[6]), each solving the full problem suite.  The matrix rows the methodology
produces:

* CSP: parameters ride in messages (the most direct T3 in the study);
  channel queues give request time directly; writers-priority exposes a
  genuine expressiveness gap (pure CSP guards cannot see "a writer is
  waiting" — queue introspection required, recorded as indirect);
* CCR: local state is the construct's home turf (direct), but request time
  is invisible to guards (ticket protocols — indirect across the board for
  T1/T2/T3/T4).
"""

from conftest import emit

from repro.analysis import summarize_independence
from repro.core import Directness, InformationType, render_expressive_power
from repro.problems.registry import all_solutions, build_evaluator

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T3 = InformationType.PARAMETERS
T4 = InformationType.SYNC_STATE
T5 = InformationType.LOCAL_STATE
T6 = InformationType.HISTORY

DIRECT = Directness.DIRECT
INDIRECT = Directness.INDIRECT


def compute():
    report = build_evaluator().evaluate(run_verifiers=False)
    descriptions = [e.description for e in all_solutions()]
    summaries = summarize_independence(descriptions)
    return report, summaries


def test_e11_extension_mechanism_matrix(benchmark):
    report, summaries = benchmark(compute)
    power = report.power

    csp = power["csp"]
    assert csp[T3] is DIRECT       # parameters in messages
    assert csp[T2] is DIRECT       # channel FIFO
    assert csp[T5] is DIRECT       # server-owned resource state
    assert csp[T1] in (DIRECT, INDIRECT)
    # The new finding: "a writer is waiting" needs queue introspection.
    writers = next(
        e.description for e in report.entries
        if e.description.problem == "writers_priority"
        and e.description.mechanism == "csp"
    )
    realization = writers.realization("writers_priority")
    assert realization.directness is INDIRECT
    assert "queue_introspection" in realization.constructs

    ccr = power["ccr"]
    assert ccr[T5] is DIRECT       # the when-clause's purpose
    assert ccr[T6] is DIRECT
    assert ccr[T2] is INDIRECT     # ticket protocols only
    assert ccr[T3] is INDIRECT
    assert ccr[T4] is INDIRECT     # hand-kept shared variables

    # Eventcounts/sequencers (Reed & Kanodia, the *same* SOSP '79): request
    # time and history are the construct itself; request type has no
    # purchase at all (recorded infeasibility).
    from repro.core import Directness

    eventcount = power["eventcount"]
    assert eventcount[T2] is Directness.DIRECT     # sequencer = tickets
    assert eventcount[T6] is Directness.DIRECT     # the count IS history
    assert eventcount[T1] is Directness.UNSUPPORTED
    assert eventcount[T5] is INDIRECT              # in - out differences

    # Independence: both compose per-constraint (exclusion cores shared),
    # like serializers/monitors rather than like paths.
    assert summaries["csp"].verdict == "independent"
    assert summaries["ccr"].verdict == "independent"

    emit(
        "E11: expressive power including the section-6 mechanisms",
        render_expressive_power(power),
    )
    lines = [
        "csp independence: {} (mean change fraction {:.0%})".format(
            summaries["csp"].verdict, summaries["csp"].mean_change_fraction
        ),
        "ccr independence: {} (mean change fraction {:.0%})".format(
            summaries["ccr"].verdict, summaries["ccr"].mean_change_fraction
        ),
        "",
        "new findings produced by the methodology:",
        "  - pure CSP guards cannot express 'a writer is WAITING' "
        "(sync state about senders): writers-priority needs Ada-COUNT-style "
        "channel introspection",
        "  - CCR guards cannot see request time: FCFS costs a hand-rolled "
        "ticket protocol (same indirectness class as base paths)",
        "  - CSP messages are the most direct parameter (T3) handling in "
        "the whole study",
        "  - eventcounts (Reed-Kanodia, same SOSP '79): request time and "
        "history ARE the construct (direct), but request type has no "
        "counting formulation (readers/writers priority infeasible)",
    ]
    emit("E11: verdicts", "\n".join(lines))
