"""E8 — the request-type × request-time conflict and two-stage queuing.

§5.2: type distinctions need *separate* condition queues, arrival ordering
needs a *single* queue, so problems needing both conflict; "the problem is
solved by maintaining two stages of queuing."

Regenerated three ways:

* the naive single-queue monitor on the class-priority problem keeps global
  FCFS but silently drops class priority (oracle FAILS);
* the per-class-queue monitor solves class-priority + FCFS-within-class;
* the rw_fcfs monitor needs ordering ACROSS types — only the two-stage
  idiom (single queue + shadow type record) passes, while the serializer's
  automatic signalling needs just one queue (no conflict at all).
"""

from conftest import emit

from repro.problems.readers_writers import (
    MonitorRWFcfs,
    SerializerRWFcfs,
    make_verifier as rw_verifier,
)
from repro.problems.staged_queue import (
    MonitorSingleQueue,
    MonitorStagedQueue,
    make_verifier as staged_verifier,
)


def compute():
    naive = staged_verifier(lambda s: MonitorSingleQueue(s))()
    per_class = staged_verifier(lambda s: MonitorStagedQueue(s))()
    two_stage = rw_verifier(lambda s: MonitorRWFcfs(s), "rw_fcfs")()
    serializer = rw_verifier(lambda s: SerializerRWFcfs(s), "rw_fcfs")()
    return naive, per_class, two_stage, serializer


def test_e8_two_stage_queuing(benchmark):
    naive, per_class, two_stage, serializer = benchmark(compute)

    assert naive != [], "single queue must lose class priority"
    assert per_class == []
    assert two_stage == [], "two-stage queuing resolves the conflict"
    assert serializer == [], "serializer: one queue suffices (no conflict)"

    lines = [
        "class-priority problem:",
        "  single queue (type info discarded):   FAIL ({} violations)".format(
            len(naive)
        ),
        "    e.g. {}".format(naive[0]),
        "  queue per class:                      pass",
        "ordering-across-types problem (rw_fcfs):",
        "  monitor, two-stage queuing:           pass",
        "  serializer, ONE queue + guarantees:   pass "
        "(automatic signalling separates T1 from T2, section 5.2)",
    ]
    emit("E8: two-stage queuing", "\n".join(lines))
