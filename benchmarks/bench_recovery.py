"""Experiment E17 — recovery under supervision: rate, MTTR, minimal defeat.

E12 (``bench_fault_tolerance``) measures what each mechanism does when a
participant dies: contain, propagate, or deadlock.  This bench measures the
layer built on top — the recovery runtime (:mod:`repro.recover`) — by
wrapping every mechanism's workers in a Supervisor with lease-based crash
reclamation and asking three quantitative questions:

1. **Does it heal?**  Every supervised scenario must classify *recovered*
   or *degraded* under exhaustive per-fault-point schedule exploration —
   never *wedged* and never *violated* (the exclusion oracle holds across
   restart boundaries).  In particular the raw semaphore, which classifies
   fault-deadlocking in E12, must classify recovered here: the lease
   manager revokes the corpse's permit, the supervisor reruns it.
2. **How fast?**  Deterministic MTTR fingerprints — ticks from death to the
   replacement incarnation's completion on the virtual clock — persisted to
   ``BENCH_recovery.json`` for cross-commit diffing.
3. **What defeats it?**  Fault-plan search over multi-kill plans, ddmin
   minimized: recovery of the supervised semaphore is provably incomplete
   with exactly 2 faults (kill the supervisor, then a permit holder) while
   no single fault defeats it.
"""

from conftest import emit, persist

from repro.verify.recovery import (
    DEGRADED,
    RECOVERED,
    expected_recovery,
    minimal_defeat_witness,
    mttr_fingerprints,
    recovery_report,
)


def test_bench_recovery_table() -> None:
    """Regenerate the recovery table; assert the recovery contract."""
    results, table = recovery_report(fast=False)
    emit("E17: recovery under supervision", table)

    expected = expected_recovery()
    by_name = {r.name: r for r in results}
    for name, acceptable in expected.items():
        assert by_name[name].classification in acceptable, name

    # The headline claim: the one mechanism that *wedges* unsupervised
    # (E12's raw semaphore) fully recovers under supervision ...
    assert by_name["semaphore"].classification == RECOVERED
    assert by_name["semaphore"].recovered > 0
    # ... and nothing wedges or violates exclusion across restarts.
    for res in results:
        assert res.wedged == 0, res.name
        assert res.violated == 0, res.name
        assert res.violations == [], res.name
    # Degradation is real where declared: the degrade variant relaxes
    # priority (LIFO -> FIFO) but still never wedges.
    assert by_name["semaphore+degrade"].degraded > 0

    persist("recovery", {
        "scenarios": {
            r.name: {
                "runs": r.runs,
                "recovered": r.recovered,
                "degraded": r.degraded,
                "wedged": r.wedged,
                "violated": r.violated,
                "classification": r.classification,
            }
            for r in results
        },
    })


def test_bench_recovery_mttr_fingerprints() -> None:
    """Deterministic MTTR per mechanism, persisted for cross-commit diffs."""
    fingerprints = mttr_fingerprints()
    lines = [
        "{:<18} mttr={:<6} rate={:<6} [{}]".format(
            name,
            "-" if fp["mttr"] is None else fp["mttr"],
            fp["recovery_rate"],
            fp["classification"],
        )
        for name, fp in fingerprints.items()
    ]
    emit("E17: MTTR fingerprints (virtual-clock ticks)", "\n".join(lines))

    # All six mechanisms are covered and every fingerprint is a full
    # recovery: each death restarted and re-run to completion.
    assert set(fingerprints) == {
        "semaphore", "semaphore+degrade", "mutex", "monitor",
        "serializer", "ccr", "pathexpr", "channel",
    }
    for name, fp in fingerprints.items():
        assert fp["deaths"] > 0, name
        assert fp["recovery_rate"] == 1.0, name
        assert fp["mttr"] is not None and fp["mttr"] >= 1, name
        assert fp["classification"] in (RECOVERED, DEGRADED), name

    # Determinism: the virtual clock makes the fingerprint exact.
    again = mttr_fingerprints()
    assert again == fingerprints

    persist("recovery", {"mttr": fingerprints})


def test_bench_recovery_minimal_defeat() -> None:
    """ddmin a multi-kill plan down to the minimal set defeating recovery."""
    result = minimal_defeat_witness()
    emit("E17: minimal crash set defeating recovery", result.describe())

    assert result.witness is not None, "no defeating fault plan found"
    assert len(result.witness) <= 2
    # The witness must include the supervisor: no 1-fault worker kill
    # defeats recovery, so incompleteness requires killing the healer.
    assert any(k.process == "sup" for k in result.witness)
    assert result.witness_label == "wedged"

    persist("recovery", {
        "minimal_defeat": {
            "plans_tried": result.tried,
            "witness": [k.describe() for k in result.witness],
            "label": result.witness_label,
            "minimize_tests": result.minimize_tests,
        },
    })
