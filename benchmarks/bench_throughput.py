"""E10 — mechanism cost: throughput of every mechanism on shared workloads.

§5.2: "this extra mechanism also comes at the expense of efficiency...
serializers provide more mechanism than do monitors, at more cost."  The
shape claim we assert is exactly that ranking on the same workload:
semaphores are cheapest, monitors cheaper than serializers.  (Absolute
numbers are simulator steps, not the authors' hardware.)

Each benchmark runs one full readers/writers burst workload; pytest-benchmark
reports wall-clock per mechanism.  A scheduler-step count table (a
machine-independent cost proxy) is printed alongside.
"""

import pytest
from conftest import emit

from repro.core import ascii_table
from repro.problems.readers_writers import (
    BURST_PLAN,
    MonitorReadersPriority,
    PathReadersPriority,
    SemaphoreReadersPriority,
    SerializerReadersPriority,
    run_workload,
)

MECHANISMS = [
    ("semaphore", SemaphoreReadersPriority),
    ("monitor", MonitorReadersPriority),
    ("serializer", SerializerReadersPriority),
    ("pathexpr", PathReadersPriority),
]

WORKLOAD = BURST_PLAN * 3  # 24 operations


def run_one(cls):
    result = run_workload(lambda sched: cls(sched), WORKLOAD)
    assert not result.deadlocked
    return result


@pytest.mark.parametrize("name,cls", MECHANISMS, ids=[m[0] for m in MECHANISMS])
def test_e10_throughput(benchmark, name, cls):
    benchmark.group = "readers_priority burst x3"
    result = benchmark(run_one, cls)
    assert result.steps > 0


def test_e10_step_cost_ranking(benchmark):
    """Machine-independent cost proxy: trace events (mechanism bookkeeping
    actions) per workload.

    Robust shape claims: both high-level mechanisms cost more bookkeeping
    than raw semaphores, and the compiled path program (gates + multi-path
    prologues) costs the most by far.  The finer monitor < serializer gap is
    a constant-factor (per-event work) difference that shows up in the
    wall-clock benchmarks above, not in event counts.
    """

    def compute():
        return {
            name: (run_one(cls).steps, len(run_one(cls).trace))
            for name, cls in MECHANISMS
        }

    costs = benchmark(compute)
    events = {name: ev for name, (__, ev) in costs.items()}
    assert events["semaphore"] < events["monitor"]
    assert events["semaphore"] < events["serializer"]
    assert events["pathexpr"] > events["monitor"]
    assert events["pathexpr"] > events["serializer"]
    rows = [
        [name, str(steps), str(ev),
         "{:.2f}x".format(ev / events["semaphore"])]
        for name, (steps, ev) in sorted(
            costs.items(), key=lambda kv: kv[1][1]
        )
    ]
    emit(
        "E10: mechanism cost (bookkeeping events, same workload)",
        ascii_table(["mechanism", "steps", "events", "vs semaphore"], rows),
    )
