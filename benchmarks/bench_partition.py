"""Experiment E18 — partition tolerance: recovery time and message cost.

E17 measures recovery from *process* death; this bench measures recovery
from *network* failure — the dist layer (:mod:`repro.dist`) under scripted
:class:`~repro.dist.netplan.NetPlan` schedules.  Three questions:

1. **Is it safe?**  Across every explored scenario × plan cell, the
   partition oracles must hold: no two overlapping quorum-lease holders,
   at most one leader per term, classic mutual exclusion for the Lamport
   mutex.  Zero ``split-brain`` cells, everywhere, under drops,
   duplicates, delays, and partitions alike.
2. **Does the table match the model?**  Every cell's observed
   classification must equal the DESIGN.md §12 prediction — notably the
   one *wedged* cell: Lamport mutex under an unhealed partition is safe
   but not live (the textbook trade), while the quorum scenarios stay
   tolerant because a majority side keeps the service up.
3. **How fast, at what cost?**  Deterministic failover / post-heal MTTR
   per cell plus message-overhead counters, and a partition-duration
   sweep (recovery-time and message-cost curves as the partition widens),
   persisted to ``BENCH_partition.json`` for cross-commit diffing.
"""

from conftest import emit, persist

from repro.dist import NetPlan
from repro.obs.recovery import compute_partition_mttr
from repro.runtime.policies import ScriptedPolicy
from repro.verify.partition import (
    SPLIT_BRAIN,
    WEDGED,
    check_at_most_one_leader,
    check_lease_exclusion,
    expected_partition_classifications,
    partition_report,
)
from repro.problems.distributed import (
    build_leader_election,
    build_quorum_lock,
)


def test_bench_partition_table() -> None:
    """Regenerate the scenario × plan table; assert the safety contract."""
    results, table = partition_report(fast=False)
    emit("E18: partition tolerance by scenario", table)

    # The headline claim: no explored schedule anywhere produced split
    # brain — the safety oracles held under every network plan.
    for res in results:
        assert res.violations == [], res.name
        assert res.surprises == [], res.name
        for o in res.outcomes:
            assert o.split_brain == 0, (res.name, o.plan_name)
            assert o.classification != SPLIT_BRAIN

    expected = expected_partition_classifications()
    observed = {
        (res.name, o.plan_name): o.classification
        for res in results for o in res.outcomes
    }
    assert observed == expected

    # The one predicted wedge is real (safe-but-stuck is *witnessed*, not
    # merely allowed), and every healed plan shows measured recovery.
    assert observed[("lamport_mutex", "partition-forever")] == WEDGED
    by_cell = {(res.name, o.plan_name): o
               for res in results for o in res.outcomes}
    for cell in (("quorum_lock", "partition-heal"),
                 ("leader_election", "partition-heal")):
        o = by_cell[cell]
        assert o.mttr_failover is not None, cell
        assert o.mttr_post_heal is not None, cell
        assert o.message_stats.get("dropped", 0) > 0, cell

    persist("partition", {
        "scenarios": {
            res.name: {
                o.plan_name: {
                    "runs": o.runs,
                    "split_brain": o.split_brain,
                    "wedged": o.wedged,
                    "tolerant": o.tolerant,
                    "classification": o.classification,
                    "mttr_failover": o.mttr_failover,
                    "mttr_post_heal": o.mttr_post_heal,
                    "message_stats": o.message_stats,
                }
                for o in res.outcomes
            }
            for res in results
        },
    })


#: Sweep cells: scenario -> (builder, safety oracle, partition factory).
#: The factory maps a duration to the scenario's standard leader/client
#: isolation, widened to ``duration`` ticks.
_SWEEP = {
    "quorum_lock": (
        build_quorum_lock,
        check_lease_exclusion,
        lambda d: NetPlan().isolate("c0", at=2, heal_at=2 + d),
    ),
    "leader_election": (
        build_leader_election,
        check_at_most_one_leader,
        lambda d: NetPlan().isolate("n0", at=20, heal_at=20 + d),
    ),
}

DURATIONS = [10, 20, 30, 40]


def duration_sweep():
    """One deterministic FIFO run per (scenario, duration): recovery-time
    and message-overhead curves as the partition widens."""
    curves = {}
    for name, (build, safety, plan_for) in _SWEEP.items():
        rows = []
        for duration in DURATIONS:
            run = build(ScriptedPolicy([]), plan_for(duration), None)
            assert safety(run) == [], (name, duration)
            mttr = compute_partition_mttr(run)
            stats = getattr(run, "network_stats", {})
            rows.append({
                "duration": duration,
                "mttr_failover": mttr.mttr_failover,
                "mttr_post_heal": mttr.mttr_post_heal,
                "sent": stats.get("sent", 0),
                "delivered": stats.get("delivered", 0),
                "dropped": stats.get("dropped", 0),
            })
        curves[name] = rows
    return curves


def test_bench_partition_duration_sweep() -> None:
    """Recovery time and message cost as a function of partition width."""
    curves = duration_sweep()
    lines = []
    for name, rows in sorted(curves.items()):
        for row in rows:
            lines.append(
                "{:<16} width={:<3} failover={:<5} post-heal={:<5} "
                "sent={:<4} dropped={}".format(
                    name, row["duration"],
                    "-" if row["mttr_failover"] is None
                    else row["mttr_failover"],
                    "-" if row["mttr_post_heal"] is None
                    else row["mttr_post_heal"],
                    row["sent"], row["dropped"],
                ))
    emit("E18: recovery vs partition width (virtual ticks)",
         "\n".join(lines))

    for name, rows in curves.items():
        # Wider partitions drop more traffic (retries keep probing the
        # cut), and every width still fails over and recovers post-heal.
        drops = [row["dropped"] for row in rows]
        assert drops == sorted(drops), name
        assert drops[-1] > drops[0], name
        for row in rows:
            assert row["mttr_failover"] is not None, (name, row)
            assert row["mttr_post_heal"] is not None, (name, row)

    # Determinism: the virtual clock makes every curve exact.
    assert duration_sweep() == curves

    persist("partition", {"duration_sweep": curves})
