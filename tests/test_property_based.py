"""Property-based tests (hypothesis) over the core invariants:

* scheduler determinism and conservation of processes;
* semaphore safety under arbitrary seeded schedules;
* path-expression parser round-trips and compiled-semantics invariants;
* readers/writers exclusion safety under random workloads AND random
  schedules, for every mechanism;
* bounded buffer conservation and capacity invariants;
* oracle consistency (a serial trace always satisfies mutual exclusion).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mechanisms.pathexpr import parse_path
from repro.mechanisms.pathexpr.ast import Burst, Name, Selection, Sequence
from repro.problems.bounded_buffer import (
    MonitorBoundedBuffer,
    OpenPathBoundedBuffer,
    SemaphoreBoundedBuffer,
    SerializerBoundedBuffer,
    run_producers_consumers,
)
from repro.problems.readers_writers import (
    MonitorReadersPriority,
    PathReadersPriority,
    SemaphoreReadersPriority,
    SerializerReadersPriority,
    run_workload,
)
from repro.runtime import RandomPolicy, Scheduler, Semaphore
from repro.verify import check_mutual_exclusion

COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Scheduler invariants
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(
    seed=st.integers(0, 10_000),
    yields=st.lists(st.integers(1, 5), min_size=1, max_size=6),
)
def test_scheduler_runs_everything_to_completion(seed, yields):
    """Every spawned process finishes, under any seeded schedule."""
    sched = Scheduler(policy=RandomPolicy(seed))
    finished = []

    def body(tag, count):
        def run():
            for __ in range(count):
                yield
            finished.append(tag)
        return run

    for index, count in enumerate(yields):
        sched.spawn(body(index, count), name="P{}".format(index))
    result = sched.run()
    assert sorted(finished) == list(range(len(yields)))
    assert not result.blocked


@COMMON_SETTINGS
@given(seed=st.integers(0, 10_000))
def test_scheduler_is_deterministic_per_seed(seed):
    """Two runs with the same seed produce identical traces."""

    def execute():
        sched = Scheduler(policy=RandomPolicy(seed))
        log = []

        def body(tag):
            def run():
                for __ in range(3):
                    log.append(tag)
                    yield
            return run

        for tag in "abc":
            sched.spawn(body(tag), name=tag)
        sched.run()
        return log

    assert execute() == execute()


# ----------------------------------------------------------------------
# Semaphore invariants
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(
    seed=st.integers(0, 10_000),
    permits=st.integers(1, 3),
    contenders=st.integers(2, 6),
)
def test_semaphore_never_exceeds_permits(seed, permits, contenders):
    sched = Scheduler(policy=RandomPolicy(seed))
    sem = Semaphore(sched, initial=permits, name="s")
    inside = {"n": 0}
    peak = {"max": 0}

    def body():
        yield from sem.p()
        inside["n"] += 1
        peak["max"] = max(peak["max"], inside["n"])
        yield
        inside["n"] -= 1
        sem.v()

    for i in range(contenders):
        sched.spawn(body, name="P{}".format(i))
    sched.run()
    assert peak["max"] <= permits
    assert inside["n"] == 0


# ----------------------------------------------------------------------
# Path expression parser properties
# ----------------------------------------------------------------------
_names = st.sampled_from(["a", "b", "c", "d", "op1", "op2"])


def _path_nodes(depth):
    if depth == 0:
        return _names.map(Name)
    sub = _path_nodes(depth - 1)
    return st.one_of(
        _names.map(Name),
        st.lists(sub, min_size=2, max_size=3).map(
            lambda els: Sequence(tuple(els))
        ),
        st.lists(sub, min_size=2, max_size=3).map(
            lambda alts: Selection(tuple(alts))
        ),
        sub.map(Burst),
    )


@COMMON_SETTINGS
@given(node=_path_nodes(2), multiplicity=st.integers(1, 5))
def test_parser_unparse_round_trip(node, multiplicity):
    """parse(unparse(ast)) == ast for arbitrary ASTs (incl. numeric op)."""
    from repro.mechanisms.pathexpr.ast import PathExpr

    path = PathExpr(node, multiplicity)
    assert parse_path(path.unparse()) == path


@COMMON_SETTINGS
@given(node=_path_nodes(2))
def test_operation_names_nonempty(node):
    from repro.mechanisms.pathexpr.ast import PathExpr

    assert PathExpr(node).operation_names()


# ----------------------------------------------------------------------
# Readers/writers exclusion under random workloads AND schedules
# ----------------------------------------------------------------------
_rw_impls = st.sampled_from([
    SemaphoreReadersPriority,
    MonitorReadersPriority,
    SerializerReadersPriority,
    PathReadersPriority,
])

_plans = st.lists(
    st.tuples(
        st.sampled_from(["R", "W"]),
        st.integers(0, 4),
        st.integers(1, 3),
    ),
    min_size=2,
    max_size=8,
)


@COMMON_SETTINGS
@given(cls=_rw_impls, plan=_plans, seed=st.integers(0, 1000))
def test_rw_exclusion_safety_is_schedule_independent(cls, plan, seed):
    result = run_workload(
        lambda sched: cls(sched), plan, policy=RandomPolicy(seed)
    )
    assert not result.deadlocked
    assert check_mutual_exclusion(
        result.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
    ) == []


# ----------------------------------------------------------------------
# Bounded buffer conservation
# ----------------------------------------------------------------------
_buffer_impls = st.sampled_from([
    SemaphoreBoundedBuffer,
    MonitorBoundedBuffer,
    SerializerBoundedBuffer,
    OpenPathBoundedBuffer,
])


@COMMON_SETTINGS
@given(
    cls=_buffer_impls,
    capacity=st.integers(1, 5),
    producers=st.integers(1, 3),
    items_each=st.integers(1, 4),
    seed=st.integers(0, 1000),
)
def test_buffer_conservation(cls, capacity, producers, items_each, seed):
    """Everything produced is consumed exactly once, never exceeding
    capacity, under arbitrary schedules."""
    result, produced, consumed = run_producers_consumers(
        lambda sched: cls(sched, capacity=capacity),
        producers=producers,
        consumers=1,
        items_each=items_each,
        policy=RandomPolicy(seed),
    )
    assert not result.deadlocked
    assert sorted(consumed) == sorted(produced)
    assert len(produced) == producers * items_each


# ----------------------------------------------------------------------
# Oracle sanity
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(ops=st.lists(st.sampled_from(["read", "write"]), max_size=12))
def test_serial_traces_always_pass_mutual_exclusion(ops):
    """A fully serial trace (start immediately followed by end) can never
    violate exclusion, whatever the op sequence."""
    from repro.runtime.trace import Event, Trace

    trace = Trace()
    seq = 0
    for index, op in enumerate(ops):
        trace.append(Event(seq, 0, index, "P", "op_start", "db." + op))
        seq += 1
        trace.append(Event(seq, 0, index, "P", "op_end", "db." + op))
        seq += 1
    assert check_mutual_exclusion(trace, "db", ["write"], ["read"]) == []


@COMMON_SETTINGS
@given(node=_path_nodes(2), multiplicity=st.integers(1, 3))
def test_compiled_table_covers_every_operation(node, multiplicity):
    """The semaphore translation produces a (prologue, epilogue) pair for
    every operation name in the path — unless a name repeats, which must
    raise the documented compile error instead."""
    from repro.mechanisms.pathexpr.ast import PathExpr
    from repro.mechanisms.pathexpr.compiler import PathCompileError, PathCompiler

    path = PathExpr(node, multiplicity)
    compiler = PathCompiler(Scheduler(), "p")
    try:
        table = compiler.compile(path)
    except PathCompileError:
        return  # duplicate occurrence: correctly rejected
    assert set(table) == path.operation_names()
    for prologue, epilogue in table.values():
        assert prologue.describe()
        assert epilogue.describe()
