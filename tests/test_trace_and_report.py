"""Unit tests for trace query helpers, the PriorityPolicy, ASCII table
rendering, and evaluation-report edge cases."""

import pytest

from repro.core import (
    Component,
    ConstraintRealization,
    Directness,
    Evaluator,
    ModularityProfile,
    SolutionDescription,
    ascii_table,
    render_coverage,
    render_expressive_power,
)
from repro.core.criteria import expressive_power
from repro.runtime import PriorityPolicy, Scheduler
from repro.runtime.trace import Event, Trace


def sample_trace():
    trace = Trace()
    data = [
        (0, 0, 1, "A", "spawn", "A", None),
        (1, 0, 1, "A", "request", "db.read", (3,)),
        (2, 0, 2, "B", "request", "db.write", None),
        (3, 1, 1, "A", "op_start", "db.read", None),
        (4, 1, 1, "A", "op_end", "db.read", None),
        (5, 2, 2, "B", "op_start", "db.write", None),
    ]
    for seq, time, pid, pname, kind, obj, detail in data:
        trace.append(Event(seq, time, pid, pname, kind, obj, detail))
    return trace


# ----------------------------------------------------------------------
# Trace queries
# ----------------------------------------------------------------------
def test_filter_by_kind_alternation():
    trace = sample_trace()
    events = trace.filter(kind="op_start|op_end")
    assert [ev.seq for ev in events] == [3, 4, 5]


def test_filter_by_obj_and_pname():
    trace = sample_trace()
    assert len(trace.filter(obj="db.read")) == 3
    assert len(trace.filter(pname="B")) == 2


def test_filter_with_predicate():
    trace = sample_trace()
    events = trace.filter(predicate=lambda ev: ev.time >= 1)
    assert [ev.seq for ev in events] == [3, 4, 5]


def test_first_and_last():
    trace = sample_trace()
    assert trace.first(kind="request").seq == 1
    assert trace.last(kind="request").seq == 2
    assert trace.first(kind="nothing") is None
    assert trace.last(kind="nothing") is None


def test_kinds_in_first_occurrence_order():
    assert sample_trace().kinds() == ["spawn", "request", "op_start", "op_end"]


def test_per_process_grouping():
    grouped = sample_trace().per_process()
    assert set(grouped) == {"A", "B"}
    assert [ev.seq for ev in grouped["B"]] == [2, 5]


def test_projection_preserves_order():
    events = sample_trace().projection("op_end", "op_start")
    assert [ev.seq for ev in events] == [3, 4, 5]


def test_render_truncation():
    text = sample_trace().render(limit=2)
    assert "more events" in text
    assert len(text.splitlines()) == 3


def test_event_str_includes_detail():
    trace = sample_trace()
    assert "(3,)" in str(trace[1])


def test_container_protocol():
    trace = sample_trace()
    assert len(trace) == 6
    assert trace[0].kind == "spawn"
    assert [ev.seq for ev in trace][:2] == [0, 1]


# ----------------------------------------------------------------------
# PriorityPolicy
# ----------------------------------------------------------------------
def test_priority_policy_prefers_high_priority():
    order = []

    def body(tag):
        def run():
            for __ in range(2):
                order.append(tag)
                yield
        return run

    sched = Scheduler(policy=PriorityPolicy({"hi": 10, "lo": 1}))
    sched.spawn(body("lo"), name="lo")
    sched.spawn(body("hi"), name="hi")
    sched.run()
    assert order[0] == "hi"
    assert order.count("hi") == 2


def test_priority_policy_ties_fifo():
    order = []

    def body(tag):
        def run():
            order.append(tag)
            yield
        return run

    sched = Scheduler(policy=PriorityPolicy({}))
    sched.spawn(body("a"), name="a")
    sched.spawn(body("b"), name="b")
    sched.run()
    assert order == ["a", "b"]


# ----------------------------------------------------------------------
# Rendering helpers
# ----------------------------------------------------------------------
def test_ascii_table_alignment():
    text = ascii_table(["col", "x"], [["long-value", "1"], ["s", "22"]])
    lines = text.splitlines()
    assert len({line.index("|") for line in lines if "|" in line}) == 1


def test_ascii_table_title_rule():
    text = ascii_table(["a"], [["1"]], title="My Table")
    assert text.splitlines()[0] == "My Table"
    assert text.splitlines()[1] == "=" * len("My Table")


def test_ascii_table_coerces_cells():
    text = ascii_table(["n"], [[42]])
    assert "42" in text


def test_render_coverage_marks():
    from repro.core import coverage_matrix

    text = render_coverage(coverage_matrix())
    assert "x" in text


def test_render_expressive_power_handles_missing_cells():
    d = SolutionDescription(
        problem="bounded_buffer",
        mechanism="toy",
        components=(Component("c", "guard"),),
        realizations=(
            ConstraintRealization(
                "buffer_bounds", ("c",), (), Directness.DIRECT
            ),
        ),
        modularity=ModularityProfile(True, True, True),
    )
    text = render_expressive_power(expressive_power([d]))
    assert "toy" in text
    assert "-" in text  # unexercised types render as '-'


# ----------------------------------------------------------------------
# Evaluation report edge cases
# ----------------------------------------------------------------------
def test_report_renders_failures_with_detail():
    d = SolutionDescription(
        problem="bounded_buffer",
        mechanism="toy",
        components=(),
        realizations=(),
        modularity=ModularityProfile(True, True, True),
    )
    evaluator = Evaluator()
    evaluator.add(d, verifier=lambda: ["first problem", "second problem"])
    report = evaluator.evaluate()
    text = report.render()
    assert "FAIL" in text
    assert "first problem" in text


def test_criteria_fallback_uses_constraint_tags():
    """Without explicit info_handling, the constraint's declared types are
    judged at the realization's directness."""
    d = SolutionDescription(
        problem="fcfs_resource",
        mechanism="toy",
        components=(Component("q", "queue"),),
        realizations=(
            ConstraintRealization(
                "arrival_order", ("q",), (), Directness.INDIRECT
            ),
        ),
        modularity=ModularityProfile(True, True, True),
    )
    from repro.core import InformationType

    matrix = expressive_power([d])
    assert matrix["toy"][InformationType.REQUEST_TIME] is Directness.INDIRECT
