"""Behavioural tests for compiled path expressions: cyclic ordering, mutual
exclusion via selection, burst concurrency, nested invocation, multi-path
composition, and the guarded (extended) engine."""

import pytest

from repro.mechanisms.pathexpr import (
    GuardedPathResource,
    PathCompileError,
    PathResource,
)
from repro.runtime import IllegalOperationError, ProcessFailed, Scheduler


def ops_in_order(trace, resource_prefix):
    """Project op_start events for a resource, as bare op names."""
    return [
        ev.obj.split(".", 1)[1]
        for ev in trace.filter(kind="op_start")
        if ev.obj.startswith(resource_prefix + ".")
    ]


# ----------------------------------------------------------------------
# Sequencing
# ----------------------------------------------------------------------
def test_sequence_enforces_alternation():
    """path put ; get end — the one-slot buffer skeleton: strict p,g,p,g."""
    sched = Scheduler()
    res = PathResource(sched, "path put ; get end", name="slot")

    def putter():
        for _ in range(3):
            yield from res.invoke("put")

    def getter():
        for _ in range(3):
            yield from res.invoke("get")

    sched.spawn(getter, name="G")  # getter first: must still wait for put
    sched.spawn(putter, name="P")
    result = sched.run()
    assert ops_in_order(result.trace, "slot") == [
        "put", "get", "put", "get", "put", "get",
    ]


def test_sequence_of_three():
    sched = Scheduler()
    res = PathResource(sched, "path a ; b ; c end", name="r")
    order = []

    def call(op):
        def body():
            yield from res.invoke(op)
            order.append(op)
        return body

    sched.spawn(call("c"), name="C")
    sched.spawn(call("b"), name="B")
    sched.spawn(call("a"), name="A")
    sched.run()
    assert order == ["a", "b", "c"]


def test_cycle_repeats():
    """After a full a;b cycle, a may run again."""
    sched = Scheduler()
    res = PathResource(sched, "path a ; b end", name="r")
    done = []

    def body():
        yield from res.invoke("a")
        yield from res.invoke("b")
        yield from res.invoke("a")
        yield from res.invoke("b")
        done.append(True)

    sched.spawn(body)
    sched.run()
    assert done == [True]


# ----------------------------------------------------------------------
# Selection
# ----------------------------------------------------------------------
def test_selection_mutual_exclusion():
    """path a , b end — a and b exclude each other and themselves."""
    sched = Scheduler()
    res = PathResource(sched, "path a , b end", name="r")
    active = []
    overlap = []

    def body(op):
        def run():
            yield from res.invoke(op, )
        return run

    def tracked(op):
        def body(res_, ):
            active.append(op)
            overlap.append(len(active))
            yield
            active.remove(op)
        return body

    res.define("a", tracked("a"))
    res.define("b", tracked("b"))

    for i in range(3):
        sched.spawn(body("a"), name="A{}".format(i))
        sched.spawn(body("b"), name="B{}".format(i))
    sched.run()
    assert max(overlap) == 1


def test_selection_fifo_longest_waiting_first():
    """The paper's §5.1 assumption: selection picks the longest-waiting
    process, across both alternatives."""
    sched = Scheduler()
    res = PathResource(sched, "path a , b end", name="r")
    order = []

    def holder(res_):
        yield  # keep the cycle busy for a while
        yield

    res.define("a", holder)

    def invoke(op, tag):
        def body():
            yield from res.invoke(op)
            order.append(tag)
        return body

    sched.spawn(invoke("a", "first-a"), name="P0")
    # These queue up while P0 holds the path, in spawn order:
    sched.spawn(invoke("b", "b1"), name="P1")
    sched.spawn(invoke("a", "a2"), name="P2")
    sched.spawn(invoke("b", "b3"), name="P3")
    sched.run()
    assert order == ["first-a", "b1", "a2", "b3"]


# ----------------------------------------------------------------------
# Burst
# ----------------------------------------------------------------------
def test_burst_allows_concurrency():
    """path { read } end — many reads overlap."""
    sched = Scheduler()
    res = PathResource(sched, "path { read } end", name="r")
    active = []
    peak = []

    def reading(res_):
        active.append(1)
        peak.append(len(active))
        yield
        active.pop()

    res.define("read", reading)

    def reader():
        yield from res.invoke("read")

    for i in range(4):
        sched.spawn(reader, name="R{}".format(i))
    sched.run()
    assert max(peak) == 4


def test_burst_selection_readers_writers_exclusion():
    """path { read } , write end — the paper's canonical exclusion
    constraint: readers share, a writer excludes everyone."""
    sched = Scheduler()
    res = PathResource(sched, "path { read } , write end", name="db")
    active = {"r": 0, "w": 0}
    violations = []

    def reading(res_):
        active["r"] += 1
        if active["w"]:
            violations.append("read during write")
        yield
        active["r"] -= 1

    def writing(res_):
        active["w"] += 1
        if active["r"] or active["w"] > 1:
            violations.append("write overlap")
        yield
        active["w"] -= 1

    res.define("read", reading)
    res.define("write", writing)

    def reader(i):
        def body():
            yield from res.invoke("read")
        return body

    def writer(i):
        def body():
            yield from res.invoke("write")
        return body

    for i in range(3):
        sched.spawn(reader(i), name="R{}".format(i))
        sched.spawn(writer(i), name="W{}".format(i))
    sched.run()
    assert violations == []


def test_burst_last_out_closes_region():
    """While any read is active, write cannot start; once the last read
    finishes, the queued write proceeds."""
    sched = Scheduler()
    res = PathResource(sched, "path { read } , write end", name="db")
    order = []

    def slow_read(res_):
        order.append("read-start")
        yield
        yield
        order.append("read-end")

    def write(res_):
        order.append("write")
        yield

    res.define("read", slow_read)
    res.define("write", write)

    def reader():
        yield from res.invoke("read")

    def writer():
        yield
        yield from res.invoke("write")

    sched.spawn(reader, name="R1")
    sched.spawn(reader, name="R2")
    sched.spawn(writer, name="W")
    sched.run()
    assert order.index("write") > order.index("read-end")
    assert order.count("read-start") == 2


def test_burst_of_sequence():
    """path { (open ; close) } end — closes never outnumber opens."""
    sched = Scheduler()
    res = PathResource(sched, "path { (open ; close) } end", name="r")
    balance = {"open": 0}
    violations = []

    def opening(res_):
        balance["open"] += 1
        yield

    def closing(res_):
        balance["open"] -= 1
        if balance["open"] < 0:
            violations.append("close before open")
        yield

    res.define("open", opening)
    res.define("close", closing)

    def user():
        yield from res.invoke("open")
        yield from res.invoke("close")

    for i in range(3):
        sched.spawn(user, name="U{}".format(i))
    sched.run()
    assert violations == []
    assert balance["open"] == 0


# ----------------------------------------------------------------------
# Composition and bodies
# ----------------------------------------------------------------------
def test_operation_in_multiple_paths():
    """An op named in two paths must satisfy both."""
    sched = Scheduler()
    res = PathResource(
        sched,
        ["path a ; b end", "path b ; c end"],
        name="r",
    )
    order = []

    def invoke(op):
        def body():
            yield from res.invoke(op)
            order.append(op)
        return body

    sched.spawn(invoke("c"), name="C")
    sched.spawn(invoke("b"), name="B")
    sched.spawn(invoke("a"), name="A")
    sched.run()
    assert order == ["a", "b", "c"]


def test_nested_invocation():
    """Figure-1 style: READ = begin requestread end, where requestread's
    body invokes read."""
    sched = Scheduler()
    res = PathResource(sched, "path { requestread } end", name="r")
    order = []

    def requestread_body(res_):
        order.append("gate")
        yield from res_.invoke("read")

    def read_body(res_):
        order.append("read")
        yield

    res.define("requestread", requestread_body)
    res.define("read", read_body)

    def proc():
        yield from res.invoke("requestread")

    sched.spawn(proc, name="P")
    sched.run()
    assert order == ["gate", "read"]


def test_plain_function_body():
    sched = Scheduler()
    res = PathResource(sched, "path get end", name="r")
    res.define("get", lambda res_: 99)

    def proc(out):
        value = yield from res.invoke("get")
        out.append(value)

    out = []
    sched.spawn(proc, out, name="P")
    sched.run()
    assert out == [99]


def test_body_receives_arguments():
    sched = Scheduler()
    res = PathResource(sched, "path put end", name="r")
    stored = []

    def put_body(res_, value):
        stored.append(value)
        yield

    res.define("put", put_body)

    def proc():
        yield from res.invoke("put", 7)

    sched.spawn(proc)
    sched.run()
    assert stored == [7]


def test_unknown_operation_raises():
    sched = Scheduler()
    res = PathResource(sched, "path a end", name="r")

    def proc():
        yield from res.invoke("nope")

    sched.spawn(proc)
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, IllegalOperationError)


def test_duplicate_op_in_one_path_rejected():
    with pytest.raises(PathCompileError):
        PathResource(Scheduler(), "path a ; a end")


def test_history_counters():
    sched = Scheduler()
    res = PathResource(sched, "path put ; get end", name="r")

    def proc():
        yield from res.invoke("put")
        yield from res.invoke("get")
        yield from res.invoke("put")

    sched.spawn(proc)
    sched.run()
    assert res.completed("put") == 2
    assert res.completed("get") == 1
    assert res.active("put") == 0


def test_operation_helper():
    sched = Scheduler()
    res = PathResource(sched, "path ping end", name="r")
    ping = res.operation("ping")
    count = []

    def proc():
        yield from ping()
        count.append(res.completed("ping"))

    sched.spawn(proc)
    sched.run()
    assert count == [1]


def test_describe_ops_structure():
    res = PathResource(Scheduler(), "path { read } , write end", name="db")
    description = res.describe_ops()
    assert set(description) == {"read", "write"}
    assert "burst_enter" in description["read"][0]
    assert "P(" in description["write"][0]


# ----------------------------------------------------------------------
# Guarded (extended) paths
# ----------------------------------------------------------------------
def test_guard_blocks_until_predicate():
    """Andler-style predicate: get waits until something was put."""
    sched = Scheduler()
    res = GuardedPathResource(
        sched,
        "path put , get end",
        guards={"get": lambda r, args: r.completed("put") > r.completed("get")},
        name="buf",
    )
    order = []

    def getter():
        yield from res.invoke("get")
        order.append("get")

    def putter():
        yield
        yield from res.invoke("put")
        order.append("put")

    sched.spawn(getter, name="G")
    sched.spawn(putter, name="P")
    sched.run()
    assert order == ["put", "get"]


def test_guard_priorities():
    """Priority operator: among eligible blocked requests, the highest
    priority proceeds first."""
    sched = Scheduler()
    gate = {"open": False}
    res = GuardedPathResource(
        sched,
        "path low , high end",
        guards={
            "low": lambda r, args: gate["open"],
            "high": lambda r, args: gate["open"],
        },
        priorities={"high": 10, "low": 1},
        name="r",
    )
    order = []

    def invoke(op):
        def body():
            yield from res.invoke(op)
            order.append(op)
        return body

    def opener():
        yield
        yield
        gate["open"] = True
        res.recheck_guards()
        yield

    sched.spawn(invoke("low"), name="L")
    sched.spawn(invoke("high"), name="H")
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["high", "low"]


def test_guard_parameter_access():
    """Guards can read request parameters — information type T3, which base
    paths cannot express."""
    sched = Scheduler()
    limit = {"max": 5}
    res = GuardedPathResource(
        sched,
        "path request end",
        guards={"request": lambda r, args: args[0] <= limit["max"]},
        name="r",
    )
    order = []

    def big():
        yield from res.invoke("request", 10)
        order.append("big")

    def small():
        yield
        yield from res.invoke("request", 3)
        order.append("small")

    def raiser():
        yield
        yield
        yield
        limit["max"] = 20
        res.recheck_guards()
        yield

    sched.spawn(big, name="B")
    sched.spawn(small, name="S")
    sched.spawn(raiser, name="R")
    sched.run()
    assert order == ["small", "big"]


def test_guard_state_variables():
    sched = Scheduler()
    res = GuardedPathResource(
        sched,
        "path go end",
        guards={"go": lambda r, args: r.state.get("enabled", False)},
        name="r",
    )
    order = []

    def runner():
        yield from res.invoke("go")
        order.append("go")

    def enabler():
        yield
        res.state["enabled"] = True
        res.recheck_guards()
        yield

    sched.spawn(runner, name="run")
    sched.spawn(enabler, name="en")
    sched.run()
    assert order == ["go"]


def test_guard_rechecked_after_wake():
    """Mesa discipline: a woken request whose guard turned false again
    re-parks instead of proceeding."""
    sched = Scheduler()
    tokens = {"n": 0}
    res = GuardedPathResource(
        sched,
        "path take end",
        guards={"take": lambda r, args: tokens["n"] > 0},
        name="r",
    )

    def take_body(res_):
        tokens["n"] -= 1
        yield

    res.define("take", take_body)
    got = []

    def taker(tag):
        def body():
            yield from res.invoke("take")
            got.append(tag)
        return body

    def producer():
        yield
        yield
        tokens["n"] = 1  # only one token for two takers
        res.recheck_guards()
        yield

    sched.spawn(taker("t1"), name="T1")
    sched.spawn(taker("t2"), name="T2")
    sched.spawn(producer, name="P")
    result = sched.run(on_deadlock="return")
    assert got == ["t1"]
    assert result.blocked == ["T2"]
