"""Unit tests for CSP channels: rendezvous semantics, FIFO queues, guarded
select (immediate and parked paths), and error cases."""

import pytest

from repro.mechanisms import Channel, ReceiveOp, SendOp, select
from repro.runtime import (
    DeadlockError,
    IllegalOperationError,
    ProcessFailed,
    Scheduler,
)


def test_send_then_receive():
    sched = Scheduler()
    chan = Channel(sched, "c")
    got = []

    def sender():
        yield from chan.send(42)

    def receiver():
        value = yield from chan.receive()
        got.append(value)

    sched.spawn(sender, name="s")
    sched.spawn(receiver, name="r")
    sched.run()
    assert got == [42]


def test_receive_then_send():
    sched = Scheduler()
    chan = Channel(sched, "c")
    got = []

    def receiver():
        value = yield from chan.receive()
        got.append(value)

    def sender():
        yield
        yield from chan.send("hello")

    sched.spawn(receiver, name="r")
    sched.spawn(sender, name="s")
    sched.run()
    assert got == ["hello"]


def test_rendezvous_blocks_sender_until_taken():
    sched = Scheduler()
    chan = Channel(sched, "c")
    order = []

    def sender():
        yield from chan.send(1)
        order.append("sent")

    def other():
        order.append("other")
        yield

    sched.spawn(sender, name="s")
    sched.spawn(other, name="o")
    result = sched.run(on_deadlock="return")
    assert "sent" not in order  # nobody received
    assert result.blocked == ["s"]


def test_fifo_among_senders():
    sched = Scheduler()
    chan = Channel(sched, "c")
    got = []

    def sender(v):
        def body():
            yield from chan.send(v)
        return body

    def receiver():
        yield
        for __ in range(3):
            value = yield from chan.receive()
            got.append(value)

    for v in (1, 2, 3):
        sched.spawn(sender(v), name="s{}".format(v))
    sched.spawn(receiver, name="r")
    sched.run()
    assert got == [1, 2, 3]


def test_fifo_among_receivers():
    sched = Scheduler()
    chan = Channel(sched, "c")
    got = []

    def receiver(tag):
        def body():
            value = yield from chan.receive()
            got.append((tag, value))
        return body

    def sender():
        yield
        yield from chan.send("a")
        yield from chan.send("b")

    sched.spawn(receiver(1), name="r1")
    sched.spawn(receiver(2), name="r2")
    sched.spawn(sender, name="s")
    sched.run()
    assert got == [(1, "a"), (2, "b")]


def test_channel_counts():
    sched = Scheduler()
    chan = Channel(sched, "c")
    observed = []

    def sender():
        yield from chan.send(1)

    def checker():
        yield
        observed.append((chan.senders_waiting, chan.receivers_waiting))
        yield from chan.receive()

    sched.spawn(sender, name="s")
    sched.spawn(checker, name="c")
    sched.run()
    assert observed == [(1, 0)]


# ----------------------------------------------------------------------
# select
# ----------------------------------------------------------------------
def test_select_immediate_match_prefers_first_arm():
    sched = Scheduler()
    a = Channel(sched, "a")
    b = Channel(sched, "b")
    picked = []

    def sender_a():
        yield from a.send("va")

    def sender_b():
        yield from b.send("vb")

    def selector():
        yield
        yield
        index, value = yield from select(
            sched, [ReceiveOp(a), ReceiveOp(b)]
        )
        picked.append((index, value))
        # drain the other channel
        value = yield from b.receive()
        picked.append(value)

    sched.spawn(sender_a, name="sa")
    sched.spawn(sender_b, name="sb")
    sched.spawn(selector, name="sel")
    sched.run()
    assert picked == [(0, "va"), "vb"]


def test_select_parks_until_any_arm_ready():
    sched = Scheduler()
    a = Channel(sched, "a")
    b = Channel(sched, "b")
    picked = []

    def selector():
        index, value = yield from select(sched, [ReceiveOp(a), ReceiveOp(b)])
        picked.append((index, value))

    def sender():
        yield
        yield from b.send(9)

    sched.spawn(selector, name="sel")
    sched.spawn(sender, name="s")
    sched.run()
    assert picked == [(1, 9)]


def test_select_dead_arms_do_not_match_later():
    """After one arm fires, the other parked arms must not consume
    messages."""
    sched = Scheduler()
    a = Channel(sched, "a")
    b = Channel(sched, "b")
    events = []

    def selector():
        index, value = yield from select(sched, [ReceiveOp(a), ReceiveOp(b)])
        events.append(("select", index, value))

    def sender():
        yield
        yield from a.send("first")
        # The select already fired on `a`; this must go to the fresh reader,
        # not to the select's stale arm on `b`.
        yield from b.send("second")

    def late_reader():
        yield
        yield
        value = yield from b.receive()
        events.append(("late", value))

    sched.spawn(selector, name="sel")
    sched.spawn(sender, name="s")
    sched.spawn(late_reader, name="r")
    sched.run()
    assert ("select", 0, "first") in events
    assert ("late", "second") in events


def test_select_send_arm():
    sched = Scheduler()
    chan = Channel(sched, "c")
    got = []

    def selector():
        index, value = yield from select(sched, [SendOp(chan, 7)])
        got.append(("sent", index, value))

    def receiver():
        yield
        value = yield from chan.receive()
        got.append(("recv", value))

    sched.spawn(selector, name="sel")
    sched.spawn(receiver, name="r")
    sched.run()
    assert ("sent", 0, None) in got
    assert ("recv", 7) in got


def test_select_respects_false_guards():
    sched = Scheduler()
    a = Channel(sched, "a")
    b = Channel(sched, "b")
    picked = []

    def sender_a():
        yield from a.send(1)

    def selector():
        yield
        index, __ = yield from select(
            sched, [ReceiveOp(a, guard=False), ReceiveOp(b)]
        )
        picked.append(index)

    def sender_b():
        yield
        yield
        yield from b.send(2)

    sched.spawn(sender_a, name="sa")
    sched.spawn(selector, name="sel")
    sched.spawn(sender_b, name="sb")
    result = sched.run(on_deadlock="return")
    assert picked == [1]
    assert result.blocked == ["sa"]  # guard=False arm never consumed it


def test_select_all_guards_false_raises():
    sched = Scheduler()
    chan = Channel(sched, "c")

    def selector():
        yield from select(sched, [ReceiveOp(chan, guard=False)])

    sched.spawn(selector, name="sel")
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, IllegalOperationError)


def test_unmatched_channel_deadlocks():
    sched = Scheduler()
    chan = Channel(sched, "c")

    def lonely():
        yield from chan.receive()

    sched.spawn(lonely, name="l")
    with pytest.raises(DeadlockError):
        sched.run()


def test_channel_as_one_slot_buffer():
    """Rendezvous gives strict put/get pairing for free — the CSP take on
    the paper's one-slot buffer."""
    sched = Scheduler()
    chan = Channel(sched, "slot")
    got = []

    def producer():
        for i in range(3):
            yield from chan.send(i)

    def consumer():
        for __ in range(3):
            value = yield from chan.receive()
            got.append(value)

    sched.spawn(producer, name="p")
    sched.spawn(consumer, name="c")
    sched.run()
    assert got == [0, 1, 2]


# ----------------------------------------------------------------------
# Timeout racing a simultaneous claim: the winner is pinned
# ----------------------------------------------------------------------
def _timeout_race(receiver_first, sender_sleep):
    """A receiver with ``timeout=5`` against a sender waking at
    ``sender_sleep``; returns (receiver outcome, sender outcome)."""
    from repro.runtime import WaitTimeout

    sched = Scheduler()
    chan = Channel(sched, "c")

    def receiver():
        try:
            value = yield from chan.receive(timeout=5)
            return ("got", value)
        except WaitTimeout:
            return "timeout"

    def sender():
        yield from sched.sleep(sender_sleep)
        try:
            yield from chan.send("x", timeout=10)
            return "sent"
        except WaitTimeout:
            return "unsent"

    if receiver_first:
        sched.spawn(receiver, name="R")
        sched.spawn(sender, name="S")
    else:
        sched.spawn(sender, name="S")
        sched.spawn(receiver, name="R")
    result = sched.run(on_deadlock="return")
    return result.results["R"], result.results["S"]


@pytest.mark.parametrize("receiver_first", [True, False])
def test_timeout_tying_a_wakeup_times_out(receiver_first):
    """Both timers due on the same tick: the clock advance pops *every*
    timer at that deadline before anyone runs again, so the receiver's
    timeout withdraws the offer and the sender cannot claim it — in both
    spawn orders.  Pins the `_withdraw`-beats-`_claim` tie rule."""
    assert _timeout_race(receiver_first, sender_sleep=5) == \
        ("timeout", "unsent")


@pytest.mark.parametrize("receiver_first", [True, False])
def test_wakeup_one_tick_before_timeout_rendezvouses(receiver_first):
    """Control: the sender waking one tick earlier claims the offer before
    the timeout exists on the heap — the rendezvous completes."""
    assert _timeout_race(receiver_first, sender_sleep=4) == \
        (("got", "x"), "sent")
