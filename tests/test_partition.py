"""Partition oracles, scenario classification, partition MTTR, the
split-brain detector, and the ``repro partition`` CLI."""

import json

from repro.dist import NetPlan
from repro.explore import SplitBrainChecker
from repro.obs.recovery import (
    PARTITION_RECOVERY_KINDS,
    compute_partition_mttr,
    partition_recovery_spans,
)
from repro.runtime.trace import Event, RunResult, Trace
from repro.verify.partition import (
    TOLERANT,
    WEDGED,
    check_at_most_one_leader,
    check_lease_exclusion,
    check_mutex_intervals,
    expected_partition_classifications,
    make_progress_after_heal,
    partition_report,
)


def _run_with(events):
    """A synthetic RunResult: events are (time, pname, kind, obj, detail)."""
    trace = Trace()
    for seq, (time, pname, kind, obj, detail) in enumerate(events):
        trace.append(Event(seq, time, 0, pname, kind, obj, detail))
    return RunResult(trace=trace)


# ----------------------------------------------------------------------
# Safety oracles on synthetic traces
# ----------------------------------------------------------------------
class TestLeaseExclusionOracle:
    def test_disjoint_holders_pass(self):
        run = _run_with([
            (0, "c0", "lease_acquired", "c0", {"until": 10}),
            (6, "c0", "lease_released", "c0", {"at": 6}),
            (8, "c1", "lease_acquired", "c1", {"until": 20}),
        ])
        assert check_lease_exclusion(run) == []

    def test_overlapping_holders_flagged(self):
        run = _run_with([
            (0, "c0", "lease_acquired", "c0", {"until": 10}),
            (6, "c1", "lease_acquired", "c1", {"until": 16}),
        ])
        messages = check_lease_exclusion(run)
        assert len(messages) == 1
        assert "two lease holders at once" in messages[0]

    def test_release_truncates_the_validity_interval(self):
        # Released at 4, so a second holder from 5 is fine even though the
        # first horizon ran to 10.
        run = _run_with([
            (0, "c0", "lease_acquired", "c0", {"until": 10}),
            (4, "c0", "lease_released", "c0", {"at": 4}),
            (5, "c1", "lease_acquired", "c1", {"until": 15}),
        ])
        assert check_lease_exclusion(run) == []

    def test_reacquire_by_same_holder_never_conflicts(self):
        run = _run_with([
            (0, "c0", "lease_acquired", "c0", {"until": 10}),
            (6, "c0", "lease_acquired", "c0", {"until": 16}),
        ])
        assert check_lease_exclusion(run) == []


class TestLeaderAndMutexOracles:
    def test_one_leader_per_term_passes(self):
        run = _run_with([
            (5, "n0", "leader_elected", "n0", {"term": 1}),
            (20, "n1", "leader_elected", "n1", {"term": 2}),
        ])
        assert check_at_most_one_leader(run) == []

    def test_two_leaders_in_one_term_flagged(self):
        run = _run_with([
            (5, "n0", "leader_elected", "n0", {"term": 1}),
            (7, "n1", "leader_elected", "n1", {"term": 1}),
        ])
        messages = check_at_most_one_leader(run)
        assert messages and "term 1 has 2 leaders" in messages[0]

    def test_mutex_interval_overlap_flagged(self):
        run = _run_with([
            (0, "n0", "cs_enter", "n0", None),
            (1, "n1", "cs_enter", "n1", None),
            (2, "n0", "cs_exit", "n0", None),
        ])
        messages = check_mutex_intervals(run)
        assert messages and "mutual exclusion violated" in messages[0]

    def test_mutex_abort_closes_the_interval(self):
        run = _run_with([
            (0, "n0", "cs_enter", "n0", None),
            (2, "n0", "cs_abort", "n0", None),
            (3, "n1", "cs_enter", "n1", None),
            (5, "n1", "cs_exit", "n1", None),
        ])
        assert check_mutex_intervals(run) == []


class TestProgressAfterHeal:
    def test_requires_evidence_after_last_heal(self):
        plan = NetPlan().isolate("n0", at=5, heal_at=20)
        check = make_progress_after_heal(plan, ("cs_exit",))
        stalled = _run_with([(10, "n1", "cs_exit", "n1", None)])
        assert check(stalled)  # evidence predates the heal
        recovered = _run_with([(25, "n0", "cs_exit", "n0", None)])
        assert check(recovered) == []

    def test_unhealed_plan_never_fires(self):
        plan = NetPlan().isolate("n0", at=5)
        check = make_progress_after_heal(plan, ("cs_exit",))
        assert check(_run_with([])) == []

    def test_empty_kinds_disable_the_oracle(self):
        plan = NetPlan().isolate("n0", at=5, heal_at=20)
        check = make_progress_after_heal(plan, ())
        assert check(_run_with([])) == []


# ----------------------------------------------------------------------
# Partition MTTR spans
# ----------------------------------------------------------------------
class TestPartitionMttr:
    def _trace(self):
        return _run_with([
            (20, "net", "net_partition", "net", "partition {n0} | {rest}"),
            (33, "n1", "leader_elected", "n1", {"term": 2}),
            (70, "net", "net_heal", "net", "partition {n0} | {rest}"),
            (74, "n0", "leader_stepdown", "n0", {"term": 2}),
        ])

    def test_span_measures_both_legs(self):
        spans = partition_recovery_spans(self._trace())
        assert len(spans) == 1
        span = spans[0]
        assert span.healed
        assert span.ticks_to_failover == 13
        assert span.failover_kind == "leader_elected"
        assert span.ticks_to_post_heal == 4
        assert span.post_heal_kind == "leader_stepdown"
        assert "failover in 13 tick(s)" in span.describe()

    def test_unhealed_partition_has_no_post_heal_leg(self):
        run = _run_with([
            (20, "net", "net_partition", "net", "partition {n0} | {rest}"),
            (33, "n1", "leader_elected", "n1", {"term": 2}),
        ])
        span = partition_recovery_spans(run)[0]
        assert not span.healed
        assert span.ticks_to_failover == 13
        assert span.ticks_to_post_heal is None
        assert "no failover" not in span.describe()

    def test_metrics_aggregate_and_render(self):
        metrics = compute_partition_mttr(self._trace())
        assert metrics.partitions == 1
        assert metrics.mttr_failover == 13.0
        assert metrics.mttr_post_heal == 4.0
        assert "Partition recovery" in metrics.render()

    def test_stepdown_counts_as_reconvergence(self):
        assert "leader_stepdown" in PARTITION_RECOVERY_KINDS

    def test_empty_trace_has_no_spans(self):
        metrics = compute_partition_mttr(_run_with([]))
        assert metrics.partitions == 0
        assert metrics.mttr_failover is None


# ----------------------------------------------------------------------
# The split-brain detector composes the oracles
# ----------------------------------------------------------------------
class TestSplitBrainChecker:
    def test_flags_double_leadership(self):
        run = _run_with([
            (5, "n0", "leader_elected", "n0", {"term": 1}),
            (7, "n1", "leader_elected", "n1", {"term": 1}),
        ])
        messages = SplitBrainChecker()(run)
        assert messages and messages[0].startswith("split brain: ")

    def test_flags_double_lease_holders(self):
        run = _run_with([
            (0, "c0", "lease_acquired", "c0", {"until": 10}),
            (6, "c1", "lease_acquired", "c1", {"until": 16}),
        ])
        assert SplitBrainChecker()(run)

    def test_non_dist_runs_trivially_pass(self):
        run = _run_with([(0, "P0", "acquire", "m", None)])
        assert SplitBrainChecker()(run) == []


# ----------------------------------------------------------------------
# The report and the CLI
# ----------------------------------------------------------------------
def test_partition_report_fast_matches_model():
    results, table = partition_report(fast=True)
    observed = {
        (res.name, o.plan_name): o.classification
        for res in results for o in res.outcomes
    }
    assert observed == expected_partition_classifications()
    for res in results:
        assert res.violations == []
        assert res.surprises == []
    assert observed[("lamport_mutex", "partition-forever")] == WEDGED
    assert observed[("quorum_lock", "partition-forever")] == TOLERANT
    assert "partition-tolerant" in table


def test_partition_cli_text(capsys):
    from repro.__main__ import main

    code = main(["partition", "--fast"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no split brain on any explored schedule" in out


def test_partition_cli_json_schema(capsys):
    from repro.__main__ import main

    code = main(["partition", "--fast", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    payload = json.loads(out)
    assert payload["surprises"] == []
    assert payload["violations"] == []
    names = {s["name"] for s in payload["scenarios"]}
    assert names == {"lamport_mutex", "quorum_lock", "leader_election"}
    for scenario in payload["scenarios"]:
        for plan in scenario["plans"]:
            assert plan["split_brain"] == 0
            assert {"plan", "faults", "expected", "runs", "classification",
                    "mttr_failover", "mttr_post_heal",
                    "message_stats"} <= set(plan)
