"""Load observatory: arrival processes, the sharded swarm engine, and
saturation sweeps."""

import itertools

import pytest

from repro.load import (
    ARRIVALS,
    LOAD_MECHANISMS,
    ShardedResource,
    ascii_curve,
    bursty,
    diurnal,
    make_arrivals,
    poisson,
    render_curves,
    run_load,
    saturation_curve,
)
from repro.runtime.scheduler import Scheduler


# ----------------------------------------------------------------------
# Arrival processes
# ----------------------------------------------------------------------
def _take(gen, n):
    return list(itertools.islice(gen, n))


@pytest.mark.parametrize("name", sorted(ARRIVALS))
def test_arrivals_deterministic_and_nonnegative(name):
    a = _take(make_arrivals(name, 0.25, seed=9), 200)
    b = _take(make_arrivals(name, 0.25, seed=9), 200)
    c = _take(make_arrivals(name, 0.25, seed=10), 200)
    assert a == b, "same seed must replay identically"
    assert a != c, "different seed must differ"
    assert all(isinstance(g, int) and g >= 0 for g in a)


@pytest.mark.parametrize("name", sorted(ARRIVALS))
def test_arrivals_hit_requested_mean_rate(name):
    rate = 0.2
    gaps = _take(make_arrivals(name, rate, seed=1), 3000)
    realized = len(gaps) / float(sum(gaps))
    # Integer quantization carries residue, so the long-run rate converges.
    assert realized == pytest.approx(rate, rel=0.15)


def test_bursty_has_heavier_tail_than_poisson():
    n = 2000
    p = sorted(_take(poisson(0.2, seed=2), n))
    b = sorted(_take(bursty(0.2, seed=2), n))
    # Same mean rate, but the off-period silences dominate the tail.
    assert b[-1] > p[-1]
    assert b[int(n * 0.5)] <= p[int(n * 0.5)]


def test_diurnal_rate_tracks_the_phase():
    gaps = _take(diurnal(0.5, seed=4, period=200, depth=0.9), 4000)
    now, peak_arrivals, trough_arrivals = 0, 0, 0
    for g in gaps:
        now += g
        phase = (now % 200) / 200.0
        if 0.15 <= phase <= 0.35:      # around the sine peak
            peak_arrivals += 1
        elif 0.65 <= phase <= 0.85:    # around the trough
            trough_arrivals += 1
    assert peak_arrivals > 2 * trough_arrivals


def test_arrival_validation():
    with pytest.raises(KeyError):
        make_arrivals("nope", 1.0)
    with pytest.raises(ValueError):
        next(poisson(0.0))
    with pytest.raises(ValueError):
        next(bursty(1.0, burst_factor=1.0))
    with pytest.raises(ValueError):
        next(diurnal(1.0, depth=0.0))


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def test_sharded_resource_routes_round_robin():
    sched = Scheduler()
    resource = ShardedResource(sched, "semaphore", shards=3)
    names = [resource.route(j).name for j in range(6)]
    assert names == ["shard0", "shard1", "shard2"] * 2
    with pytest.raises(KeyError):
        ShardedResource(sched, "mutex9000")
    with pytest.raises(ValueError):
        ShardedResource(sched, "semaphore", shards=0)


@pytest.mark.parametrize("mechanism", LOAD_MECHANISMS)
def test_run_load_completes_all_ops(mechanism):
    point, sink = run_load(mechanism, clients=25, shards=2, ops=2,
                           rate=0.5, seed=1)
    # 25 clients x 2 cycles x (put + get); CSP's daemon server may hold
    # one op open when the run ends.
    assert point.completed >= 100 - 1
    assert sink.in_flight() <= 2
    assert point.duration_ticks > 0
    assert point.steps_per_op > 1.0
    assert point.latency["p99"] >= point.latency["p50"] > 0


def test_run_load_is_deterministic():
    a, _ = run_load("monitor", clients=30, ops=2, seed=5)
    b, _ = run_load("monitor", clients=30, ops=2, seed=5)
    assert a.to_dict() == b.to_dict() or (
        # wall_seconds is the only nondeterministic field
        {k: v for k, v in a.to_dict().items() if k != "wall_seconds"}
        == {k: v for k, v in b.to_dict().items() if k != "wall_seconds"}
    )


def test_run_load_windows_cover_the_run():
    point, sink = run_load("semaphore", clients=40, ops=1, rate=0.25,
                           window=32, seed=0)
    series = point.windows
    assert series, "windowed series must be populated"
    assert series[0]["start"] % 32 == 0
    assert sum(w.get("arrivals", 0) for w in series) == 80  # put+get requests
    assert sum(w.get("completed", 0) for w in series) == point.completed


def test_saturation_curve_latency_grows_with_load():
    points = saturation_curve("serializer", [8, 128], ops=2, seed=0)
    assert [p.clients for p in points] == [8, 128]
    assert points[0].offered_rate < points[1].offered_rate
    assert points[1].latency["p95"] >= points[0].latency["p95"]
    assert points[1].throughput > points[0].throughput


def test_render_curves_mentions_every_mechanism():
    curves = {m: saturation_curve(m, [8], ops=1)
              for m in ("semaphore", "ccr")}
    text = render_curves(curves)
    assert "semaphore" in text and "ccr" in text
    assert "throughput (ops/ktick) vs clients" in text
    assert ascii_curve([], lambda p: 0, "x") == "(no points)"
