"""Unit tests for semaphores, mutexes, and events: counting behaviour, FIFO
handoff, wake-policy ablation knob, and protocol-violation errors."""

import pytest

from repro.runtime import (
    BroadcastEvent,
    IllegalOperationError,
    Mutex,
    ProcessFailed,
    Scheduler,
    Semaphore,
)


def make_sched():
    return Scheduler()


# ----------------------------------------------------------------------
# Semaphore
# ----------------------------------------------------------------------
def test_semaphore_initial_value_allows_that_many():
    sched = make_sched()
    sem = Semaphore(sched, initial=2, name="s")
    inside = []

    def body(tag):
        yield from sem.p()
        inside.append(tag)
        yield  # hold the permit forever

    for tag in "abc":
        sched.spawn(body, tag, name=tag)
    result = sched.run(on_deadlock="return")
    assert inside == ["a", "b"]
    assert result.blocked == ["c"]


def test_semaphore_negative_initial_rejected():
    with pytest.raises(ValueError):
        Semaphore(make_sched(), initial=-1)


def test_semaphore_v_wakes_fifo():
    sched = make_sched()
    sem = Semaphore(sched, initial=0, name="s")
    woken = []

    def waiter(tag):
        yield from sem.p()
        woken.append(tag)

    def signaller():
        yield  # let the waiters enqueue
        sem.v()
        sem.v()
        sem.v()

    for tag in "abc":
        sched.spawn(waiter, tag, name=tag)
    sched.spawn(signaller, name="sig")
    sched.run()
    assert woken == ["a", "b", "c"]


def test_semaphore_lifo_wake_policy():
    sched = make_sched()
    sem = Semaphore(sched, initial=0, name="s", wake_policy="lifo")
    woken = []

    def waiter(tag):
        yield from sem.p()
        woken.append(tag)

    def signaller():
        yield
        for _ in range(3):
            sem.v()

    for tag in "abc":
        sched.spawn(waiter, tag, name=tag)
    sched.spawn(signaller, name="sig")
    sched.run()
    assert woken == ["c", "b", "a"]


def test_semaphore_random_wake_policy_deterministic_per_seed():
    def run(seed):
        sched = make_sched()
        sem = Semaphore(sched, initial=0, wake_policy="random", seed=seed)
        woken = []

        def waiter(tag):
            yield from sem.p()
            woken.append(tag)

        def signaller():
            yield
            for _ in range(4):
                sem.v()

        for tag in "abcd":
            sched.spawn(waiter, tag, name=tag)
        sched.spawn(signaller, name="sig")
        sched.run()
        return woken

    assert run(3) == run(3)


def test_semaphore_unknown_policy_rejected():
    with pytest.raises(ValueError):
        Semaphore(make_sched(), wake_policy="mystery")


def test_semaphore_no_barging_past_queue():
    """A process arriving while others wait must queue even if a V happens:
    the permit is handed to the head of the queue, not to the newcomer."""
    sched = make_sched()
    sem = Semaphore(sched, initial=0, name="s")
    order = []

    def early():
        yield from sem.p()
        order.append("early")

    def releaser():
        yield
        sem.v()  # hands off directly to `early`
        yield from sem.p()  # must wait for another V
        order.append("releaser")

    def second_v():
        yield
        yield
        yield
        sem.v()

    sched.spawn(early, name="early")
    sched.spawn(releaser, name="releaser")
    sched.spawn(second_v, name="second")
    sched.run()
    assert order == ["early", "releaser"]


def test_semaphore_try_p():
    sched = make_sched()
    sem = Semaphore(sched, initial=1)
    assert sem.try_p() is True
    assert sem.try_p() is False
    sem._value = 1  # restore for value check
    assert sem.value == 1


def test_semaphore_value_and_waiters_properties():
    sched = make_sched()
    sem = Semaphore(sched, initial=0, name="s")

    def waiter():
        yield from sem.p()

    def checker(holder):
        yield
        holder.append((sem.value, sem.waiters))
        sem.v()

    observed = []
    sched.spawn(waiter, name="w")
    sched.spawn(checker, observed, name="c")
    sched.run()
    assert observed == [(0, 1)]


# ----------------------------------------------------------------------
# Mutex
# ----------------------------------------------------------------------
def test_mutex_mutual_exclusion():
    sched = make_sched()
    lock = Mutex(sched, "m")
    active = []
    max_active = []

    def body(tag):
        yield from lock.acquire()
        active.append(tag)
        max_active.append(len(active))
        yield
        active.remove(tag)
        lock.release()

    for tag in "abcd":
        sched.spawn(body, tag, name=tag)
    sched.run()
    assert max(max_active) == 1


def test_mutex_release_by_nonholder_raises():
    sched = make_sched()
    lock = Mutex(sched, "m")

    def holder():
        yield from lock.acquire()
        yield
        yield
        lock.release()

    def thief():
        yield
        lock.release()

    sched.spawn(holder, name="holder")
    sched.spawn(thief, name="thief")
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, IllegalOperationError)


def test_mutex_reentrant_acquire_raises():
    sched = make_sched()
    lock = Mutex(sched, "m")

    def body():
        yield from lock.acquire()
        yield from lock.acquire()

    sched.spawn(body, name="re")
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, IllegalOperationError)


def test_mutex_handoff_is_fifo():
    sched = make_sched()
    lock = Mutex(sched, "m")
    order = []

    def body(tag):
        yield from lock.acquire()
        order.append(tag)
        yield
        lock.release()

    for tag in "abc":
        sched.spawn(body, tag, name=tag)
    sched.run()
    assert order == ["a", "b", "c"]


def test_mutex_holder_name_tracking():
    sched = make_sched()
    lock = Mutex(sched, "m")
    seen = []

    def body():
        yield from lock.acquire()
        seen.append(lock.holder_name)
        lock.release()
        seen.append(lock.held)

    sched.spawn(body, name="owner")
    sched.run()
    assert seen == ["owner", False]


# ----------------------------------------------------------------------
# BroadcastEvent
# ----------------------------------------------------------------------
def test_event_wakes_all_waiters():
    sched = make_sched()
    event = BroadcastEvent(sched, "e")
    woken = []

    def waiter(tag):
        yield from event.wait()
        woken.append(tag)

    def setter():
        yield
        event.set()

    for tag in "abc":
        sched.spawn(waiter, tag, name=tag)
    sched.spawn(setter, name="setter")
    sched.run()
    assert woken == ["a", "b", "c"]
    assert event.is_set


def test_event_wait_after_set_is_immediate():
    sched = make_sched()
    event = BroadcastEvent(sched, "e")
    woken = []

    def setter():
        event.set()
        yield

    def late_waiter():
        yield
        yield from event.wait()
        woken.append("late")

    sched.spawn(setter, name="setter")
    sched.spawn(late_waiter, name="late")
    sched.run()
    assert woken == ["late"]


def test_event_double_set_is_idempotent():
    sched = make_sched()
    event = BroadcastEvent(sched, "e")

    def setter():
        event.set()
        event.set()
        yield

    sched.spawn(setter)
    sched.run()
    assert event.is_set
