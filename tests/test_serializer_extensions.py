"""Tests for the later-version serializer queue extensions (§5.2: "local
variables and priority queues had to be added later"): rank-ordered queues
and guarantee-order queues."""

from repro.mechanisms import Serializer
from repro.mechanisms.serializer import (
    GuaranteeOrderQueue,
    SerializerPriorityQueue,
)
from repro.runtime import Scheduler


def make(sched=None):
    sched = sched or Scheduler()
    return sched, Serializer(sched, "s")


# ----------------------------------------------------------------------
# SerializerPriorityQueue
# ----------------------------------------------------------------------
def test_priority_queue_releases_smallest_rank_first():
    sched, ser = make()
    pq = ser.priority_queue("pq")
    gate = {"open": False}
    order = []

    def proc(tag, rank):
        def body():
            yield from ser.enter()
            yield from ser.enqueue(pq, lambda: gate["open"], priority=rank)
            order.append(tag)
            ser.exit()
        return body

    def opener():
        yield
        yield
        yield
        yield from ser.enter()
        gate["open"] = True
        ser.exit()

    sched.spawn(proc("late", 30), name="L")
    sched.spawn(proc("early", 10), name="E")
    sched.spawn(proc("mid", 20), name="M")
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["early", "mid", "late"]


def test_priority_queue_ties_break_by_arrival():
    sched, ser = make()
    pq = ser.priority_queue("pq")
    gate = {"open": False}
    order = []

    def proc(tag):
        def body():
            yield from ser.enter()
            yield from ser.enqueue(pq, lambda: gate["open"], priority=5)
            order.append(tag)
            ser.exit()
        return body

    def opener():
        yield
        yield
        yield from ser.enter()
        gate["open"] = True
        ser.exit()

    sched.spawn(proc("first"), name="F")
    sched.spawn(proc("second"), name="S")
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["first", "second"]


def test_priority_queue_head_priority():
    sched, ser = make()
    pq = ser.priority_queue("pq")
    observed = []

    def waiter(rank):
        def body():
            yield from ser.enter()
            yield from ser.enqueue(pq, lambda: observed, priority=rank)
            ser.exit()
        return body

    def checker():
        yield
        yield
        observed.append(pq.head_priority())
        yield from ser.enter()
        ser.exit()

    sched.spawn(waiter(42), name="A")
    sched.spawn(waiter(7), name="B")
    sched.spawn(checker, name="C")
    result = sched.run(on_deadlock="return")
    assert observed[0] == 7
    del result


def test_priority_queue_head_blocks_lower_ranks():
    """Only the best-ranked waiter is eligible: a false guarantee at the
    head holds back everything behind it (deadline semantics)."""
    sched, ser = make()
    pq = ser.priority_queue("pq")
    state = {"now": 0}
    order = []

    def sleeper(deadline):
        def body():
            yield from ser.enter()
            yield from ser.enqueue(
                pq, lambda: state["now"] >= deadline, priority=deadline
            )
            order.append(deadline)
            ser.exit()
        return body

    def ticker():
        for __ in range(4):
            yield
            yield from ser.enter()
            state["now"] += 1
            ser.exit()

    sched.spawn(sleeper(3), name="S3")
    sched.spawn(sleeper(1), name="S1")
    sched.spawn(ticker, name="T")
    sched.run()
    assert order == [1, 3]


# ----------------------------------------------------------------------
# GuaranteeOrderQueue
# ----------------------------------------------------------------------
def test_guarantee_order_queue_skips_blocked_head():
    """Unlike a plain FIFO queue, an eligible waiter behind an ineligible
    head gets released."""
    sched, ser = make()
    q = ser.guarantee_order_queue("q")
    flags = {"a": False, "b": True}
    order = []

    def proc(tag):
        def body():
            yield from ser.enter()
            yield from ser.enqueue(q, lambda: flags[tag])
            order.append(tag)
            ser.exit()
        return body

    def opener():
        yield
        yield
        yield
        yield from ser.enter()
        flags["a"] = True
        ser.exit()

    sched.spawn(proc("a"), name="A")   # arrives first, guard false
    sched.spawn(proc("b"), name="B")   # arrives second, guard true
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["b", "a"]


def test_guarantee_order_queue_prefers_arrival_among_eligible():
    sched, ser = make()
    q = ser.guarantee_order_queue("q")
    gate = {"open": False}
    order = []

    def proc(tag):
        def body():
            yield from ser.enter()
            yield from ser.enqueue(q, lambda: gate["open"])
            order.append(tag)
            ser.exit()
        return body

    def opener():
        yield
        yield
        yield from ser.enter()
        gate["open"] = True
        ser.exit()

    sched.spawn(proc("x"), name="X")
    sched.spawn(proc("y"), name="Y")
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["x", "y"]


def test_queue_types_coexist_with_declaration_priority():
    """A priority queue declared before a plain queue still outranks it in
    dispatch."""
    sched, ser = make()
    pq = ser.priority_queue("pq")
    plain = ser.queue("plain")
    gate = {"open": False}
    order = []

    def via(queue, tag, rank=0):
        def body():
            yield from ser.enter()
            yield from ser.enqueue(queue, lambda: gate["open"], priority=rank)
            order.append(tag)
            ser.exit()
        return body

    def opener():
        yield
        yield
        yield from ser.enter()
        gate["open"] = True
        ser.exit()

    sched.spawn(via(plain, "plain"), name="P")
    sched.spawn(via(pq, "ranked", rank=1), name="R")
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["ranked", "plain"]


def test_queue_classes_exposed():
    __, ser = make()
    assert isinstance(ser.priority_queue("a"), SerializerPriorityQueue)
    assert isinstance(ser.guarantee_order_queue("b"), GuaranteeOrderQueue)
