"""Multi-resource deadlock scenarios (the dining-philosophers example, in
test form): the naive acquisition order deadlocks, the ordered and
monitor-admission solutions are exhaustively deadlock-free."""

import importlib.util
import pathlib

from repro.runtime import ScriptedPolicy
from repro.verify import ScheduleExplorer

_spec = importlib.util.spec_from_file_location(
    "dining_philosophers",
    pathlib.Path(__file__).parent.parent / "examples" /
    "dining_philosophers.py",
)
dining = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(dining)


def test_naive_deadlock_reachable_and_replayable():
    explorer = ScheduleExplorer(
        dining.naive_system, max_runs=5000, max_depth=100
    )
    outcome = explorer.explore(dining.deadlock_check, stop_at_first=True)
    assert outcome.witness is not None
    replay = dining.naive_system(ScriptedPolicy(list(outcome.witness)))
    assert replay.deadlocked
    assert len(replay.blocked) == dining.N


def test_ordered_acquisition_exhaustively_deadlock_free():
    explorer = ScheduleExplorer(
        dining.ordered_system, max_runs=50000, max_depth=200
    )
    outcome = explorer.explore(dining.deadlock_check)
    assert outcome.exhausted
    assert outcome.ok


def test_monitor_table_exhaustively_deadlock_free():
    explorer = ScheduleExplorer(
        dining.monitor_system, max_runs=80000, max_depth=250
    )
    outcome = explorer.explore(dining.deadlock_check)
    assert outcome.exhausted
    assert outcome.ok


def test_naive_sometimes_succeeds():
    """The naive solution is not ALWAYS wrong — some schedules complete;
    that is exactly why testing alone misses it."""
    explorer = ScheduleExplorer(
        dining.naive_system, max_runs=5000, max_depth=100
    )
    outcome = explorer.explore(dining.deadlock_check)
    completions = outcome.runs - len(outcome.violations)
    assert completions > 0
    assert len(outcome.violations) > 0
