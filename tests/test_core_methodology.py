"""Unit tests for the methodology core: information types, constraints,
problem catalog coverage, solution descriptions, criteria matrices, and the
evaluation engine."""

import pytest

from repro.core import (
    ALL_INFORMATION_TYPES,
    Component,
    Constraint,
    ConstraintKind,
    ConstraintRealization,
    Directness,
    Evaluator,
    FOOTNOTE2_SUITE,
    InformationType,
    ModularityProfile,
    PROBLEM_CATALOG,
    SolutionDescription,
    best,
    constraint_kind_support,
    coverage_matrix,
    expressive_power,
    gate_usage,
    modularity_summary,
    uncovered_types,
    worst,
)

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T5 = InformationType.LOCAL_STATE


# ----------------------------------------------------------------------
# Information types and constraints
# ----------------------------------------------------------------------
def test_six_information_types():
    assert len(ALL_INFORMATION_TYPES) == 6
    assert [t.short for t in ALL_INFORMATION_TYPES] == [
        "T1", "T2", "T3", "T4", "T5", "T6",
    ]


def test_information_type_descriptions():
    for t in ALL_INFORMATION_TYPES:
        assert t.description


def test_constraint_builders():
    c = Constraint.exclusion("x", {T5}, "no get when empty")
    assert c.kind is ConstraintKind.EXCLUSION
    assert c.info_types == frozenset({T5})
    p = Constraint.priority("y", {T2}, "arrival order")
    assert p.kind is ConstraintKind.PRIORITY


def test_constraint_str_includes_tags():
    c = Constraint.exclusion("x", {T1, T5}, "demo")
    assert "T1" in str(c) and "T5" in str(c)


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
def test_catalog_has_all_paper_problems():
    expected = {
        "bounded_buffer", "fcfs_resource", "readers_priority",
        "writers_priority", "rw_fcfs", "disk_scheduler", "alarm_clock",
        "one_slot_buffer", "staged_queue",
    }
    assert expected <= set(PROBLEM_CATALOG)


def test_footnote2_suite_covers_all_types():
    """The paper's completeness claim: the footnote-2 set covers all six
    information types."""
    assert uncovered_types(FOOTNOTE2_SUITE) == []


def test_coverage_matrix_shape():
    matrix = coverage_matrix()
    assert set(matrix) == set(FOOTNOTE2_SUITE)
    assert matrix["bounded_buffer"] == frozenset({T5})


def test_partial_suite_reports_gaps():
    gaps = uncovered_types(("bounded_buffer",))
    assert InformationType.REQUEST_TIME in gaps
    assert InformationType.LOCAL_STATE not in gaps


def test_problem_constraint_lookup():
    spec = PROBLEM_CATALOG["readers_priority"]
    c = spec.constraint("rw_exclusion")
    assert c.kind is ConstraintKind.EXCLUSION
    with pytest.raises(KeyError):
        spec.constraint("nope")


def test_problem_kind_partitions():
    spec = PROBLEM_CATALOG["readers_priority"]
    assert [c.id for c in spec.exclusion_constraints] == ["rw_exclusion"]
    assert [c.id for c in spec.priority_constraints] == ["readers_priority"]


def test_shared_constraints_between_rw_variants():
    """The §4.2 probe pair shares the exclusion constraint."""
    a = PROBLEM_CATALOG["readers_priority"]
    b = PROBLEM_CATALOG["writers_priority"]
    assert a.shared_constraints(b) == ("rw_exclusion",)


def test_info_types_union():
    spec = PROBLEM_CATALOG["rw_fcfs"]
    assert InformationType.REQUEST_TIME in spec.info_types
    assert InformationType.SYNC_STATE in spec.info_types


# ----------------------------------------------------------------------
# Solution descriptions
# ----------------------------------------------------------------------
def make_description(mechanism="monitor", problem="readers_priority",
                     directness=Directness.DIRECT, gates=0):
    components = [
        Component("proc:start_read", "procedure", "rc := rc + 1"),
        Component("cond:ok_to_read", "condition"),
    ]
    for i in range(gates):
        components.append(Component("gate:{}".format(i), "sync_procedure"))
    return SolutionDescription(
        problem=problem,
        mechanism=mechanism,
        components=tuple(components),
        realizations=(
            ConstraintRealization(
                constraint_id="rw_exclusion",
                components=("proc:start_read",),
                constructs=("condition_queue",),
                directness=directness,
            ),
            ConstraintRealization(
                constraint_id="readers_priority",
                components=("cond:ok_to_read",),
                constructs=("condition_queue",),
                directness=directness,
            ),
        ),
        modularity=ModularityProfile(True, True, False),
    )


def test_description_lookup_helpers():
    d = make_description()
    assert d.component("cond:ok_to_read").kind == "condition"
    assert d.realization("rw_exclusion").directness is Directness.DIRECT
    assert d.realized_constraint_ids() == ("rw_exclusion", "readers_priority")
    assert [c.name for c in d.components_for("rw_exclusion")] == [
        "proc:start_read"
    ]
    with pytest.raises(KeyError):
        d.component("missing")
    with pytest.raises(KeyError):
        d.realization("missing")


def test_description_validation_catches_dangling_reference():
    d = SolutionDescription(
        problem="bounded_buffer",
        mechanism="monitor",
        components=(Component("a", "procedure"),),
        realizations=(
            ConstraintRealization("buffer_bounds", ("ghost",), (), Directness.DIRECT),
        ),
        modularity=ModularityProfile(True, True, True),
    )
    issues = d.validate()
    assert any("ghost" in issue for issue in issues)


def test_description_validation_catches_duplicates():
    d = SolutionDescription(
        problem="bounded_buffer",
        mechanism="monitor",
        components=(Component("a", "procedure"), Component("a", "condition")),
        realizations=(),
        modularity=ModularityProfile(True, True, True),
    )
    assert d.validate()


def test_directness_ordering():
    assert best(Directness.INDIRECT, Directness.DIRECT) is Directness.DIRECT
    assert worst(Directness.INDIRECT, Directness.UNSUPPORTED) is Directness.UNSUPPORTED
    assert Directness.DIRECT.rank > Directness.INDIRECT.rank


# ----------------------------------------------------------------------
# Criteria
# ----------------------------------------------------------------------
def test_expressive_power_from_constraint_tags():
    matrix = expressive_power([make_description()])
    row = matrix["monitor"]
    assert row[T1] is Directness.DIRECT
    assert row[InformationType.SYNC_STATE] is Directness.DIRECT
    assert row[InformationType.PARAMETERS] is None  # never exercised


def test_expressive_power_takes_best():
    weak = make_description(directness=Directness.INDIRECT)
    strong = make_description(directness=Directness.DIRECT)
    matrix = expressive_power([weak, strong])
    assert matrix["monitor"][T1] is Directness.DIRECT


def test_expressive_power_explicit_info_handling_wins():
    d = SolutionDescription(
        problem="readers_priority",
        mechanism="pathexpr",
        components=(Component("p", "path"),),
        realizations=(
            ConstraintRealization(
                "readers_priority",
                ("p",),
                ("selection",),
                Directness.INDIRECT,
                info_handling={T1: Directness.UNSUPPORTED},
            ),
        ),
        modularity=ModularityProfile(True, False, True),
    )
    matrix = expressive_power([d])
    assert matrix["pathexpr"][T1] is Directness.UNSUPPORTED


def test_constraint_kind_support_matrix():
    matrix = constraint_kind_support([make_description()])
    row = matrix["monitor"]
    assert row[ConstraintKind.EXCLUSION] is Directness.DIRECT
    assert row[ConstraintKind.PRIORITY] is Directness.DIRECT


def test_modularity_summary_is_conservative():
    good = make_description()
    bad = SolutionDescription(
        problem="bounded_buffer",
        mechanism="monitor",
        components=(),
        realizations=(),
        modularity=ModularityProfile(True, False, False),
    )
    summary = modularity_summary([good, bad])
    assert summary["monitor"]["resource_separable"] is False


def test_gate_usage_counts_sync_procedures():
    counts = gate_usage([make_description(gates=3), make_description(gates=1)])
    assert counts["monitor"] == 4


# ----------------------------------------------------------------------
# Evaluation engine
# ----------------------------------------------------------------------
def test_evaluator_runs_verifiers():
    evaluator = Evaluator()
    evaluator.add(make_description(), verifier=lambda: [])
    evaluator.add(
        make_description(mechanism="pathexpr"),
        verifier=lambda: ["boom"],
    )
    report = evaluator.evaluate()
    assert len(report.failures()) == 1
    assert report.failures()[0].description.mechanism == "pathexpr"
    assert set(report.mechanisms()) == {"monitor", "pathexpr"}


def test_evaluator_rejects_invalid_description():
    bad = SolutionDescription(
        problem="x",
        mechanism="m",
        components=(),
        realizations=(
            ConstraintRealization("c", ("ghost",), (), Directness.DIRECT),
        ),
        modularity=ModularityProfile(True, True, True),
    )
    with pytest.raises(ValueError):
        Evaluator().add(bad)


def test_report_renders_all_sections():
    evaluator = Evaluator()
    evaluator.add(make_description(), verifier=lambda: [])
    report = evaluator.evaluate()
    text = report.render()
    assert "Expressive power" in text
    assert "Modularity requirements" in text
    assert "Gate usage" in text
    assert "monitor" in text


def test_report_skips_verifiers_when_asked():
    evaluator = Evaluator()
    called = []
    evaluator.add(make_description(), verifier=lambda: called.append(1) or [])
    report = evaluator.evaluate(run_verifiers=False)
    assert not called
    assert report.entries[0].verified is None
