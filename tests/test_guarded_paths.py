"""Additional tests for the guarded (open) path-expression engine: runtime
guard/priority mutation, gate depth, listener mechanics, and interactions
between guards and base-path constraints."""

from repro.mechanisms.pathexpr import GuardedPathResource, PathResource
from repro.runtime import Scheduler


def test_gate_depth_tracks_parked_requests():
    sched = Scheduler()
    res = GuardedPathResource(
        sched,
        "path go end",
        guards={"go": lambda r, args: r.state.get("open", False)},
        name="r",
    )
    depths = []

    def runner(tag):
        def body():
            yield from res.invoke("go")
        return body

    def observer():
        yield
        yield
        depths.append(res.gate_depth)
        res.state["open"] = True
        res.recheck_guards()
        yield

    sched.spawn(runner("a"), name="A")
    sched.spawn(runner("b"), name="B")
    sched.spawn(observer, name="O")
    sched.run()
    assert depths == [2]
    assert res.gate_depth == 0


def test_set_guard_at_runtime():
    sched = Scheduler()
    res = GuardedPathResource(sched, "path go end", name="r")
    order = []

    def early():
        yield from res.invoke("go")
        order.append("early")

    def config_then_go():
        # Attach a guard AFTER construction, then satisfy it.
        res.set_guard("go", lambda r, args: r.state.get("ok", False))
        yield
        yield from res.invoke("go")
        order.append("late-blocked")

    def opener():
        yield
        yield
        yield
        res.state["ok"] = True
        res.recheck_guards()
        yield

    sched.spawn(early, name="E")  # runs before the guard exists
    sched.spawn(config_then_go, name="C")
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["early", "late-blocked"]


def test_set_priority_at_runtime():
    sched = Scheduler()
    res = GuardedPathResource(
        sched,
        "path a , b end",
        guards={
            "a": lambda r, args: r.state.get("open", False),
            "b": lambda r, args: r.state.get("open", False),
        },
        name="r",
    )
    res.set_priority("b", 99)
    order = []

    def invoke(op):
        def body():
            yield from res.invoke(op)
            order.append(op)
        return body

    def opener():
        yield
        yield
        res.state["open"] = True
        res.recheck_guards()
        yield

    sched.spawn(invoke("a"), name="A")
    sched.spawn(invoke("b"), name="B")
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["b", "a"]


def test_guards_compose_with_base_path_ordering():
    """A guard admits a request, but the base path still sequences it."""
    sched = Scheduler()
    res = GuardedPathResource(
        sched,
        "path first ; second end",
        guards={"second": lambda r, args: r.state.get("allow", False)},
        name="r",
    )
    order = []

    def call(op):
        def body():
            yield from res.invoke(op)
            order.append(op)
        return body

    def opener():
        res.state["allow"] = True
        res.recheck_guards()
        yield

    sched.spawn(opener, name="O")
    sched.spawn(call("second"), name="S")  # guard passes, path blocks
    sched.spawn(call("first"), name="F")
    sched.run()
    assert order == ["first", "second"]


def test_listener_receives_all_phases():
    sched = Scheduler()
    res = PathResource(sched, "path a end", name="r")
    phases = []
    res.add_listener(lambda phase, op, detail: phases.append((phase, op)))

    def body():
        yield from res.invoke("a")

    sched.spawn(body)
    sched.run()
    assert phases == [("request", "a"), ("op_start", "a"), ("op_end", "a")]


def test_operation_names_includes_body_only_ops():
    sched = Scheduler()
    res = PathResource(
        sched, "path a end", operations={"free": lambda r: None}, name="r"
    )
    assert res.operation_names == ["a", "free"]


def test_describe_ops_guarded_resource():
    sched = Scheduler()
    res = GuardedPathResource(
        sched, "path a ; b end",
        guards={"a": lambda r, args: True},
        name="r",
    )
    described = res.describe_ops()
    assert set(described) == {"a", "b"}


def test_unguarded_op_passes_straight_through():
    sched = Scheduler()
    res = GuardedPathResource(
        sched,
        "path a , b end",
        guards={"b": lambda r, args: False},
        name="r",
    )
    done = []

    def call_a():
        yield from res.invoke("a")
        done.append("a")

    sched.spawn(call_a, name="A")
    sched.run()
    assert done == ["a"]


def test_wait_summary_row_helper():
    from repro.verify.liveness import WaitSummary

    row = WaitSummary("db.read", 3, 1, 2.5, 4, 1).row()
    assert row == ["db.read", "3", "1", "2.5", "4", "1"]
