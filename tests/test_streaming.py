"""Streaming telemetry: sketch error bounds, window semantics, and the
StreamingSink's on-arrival folding of the uniform trace vocabulary."""

import random

import pytest

from repro.obs import QuantileSketch, StreamingSink, WindowedSeries
from repro.problems import bounded_buffer
from repro.problems.registry import get_solution
from repro.runtime.scheduler import Scheduler
from repro.runtime.trace import Event


# ----------------------------------------------------------------------
# QuantileSketch
# ----------------------------------------------------------------------
def _exact_quantile(values, q):
    ordered = sorted(values)
    rank = max(1, int(round(q / 100.0 * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


def test_sketch_within_declared_relative_error():
    rng = random.Random(42)
    sketch = QuantileSketch(rel_error=0.01)
    values = [int(rng.lognormvariate(3.0, 1.2)) + 1 for _ in range(5000)]
    for v in values:
        sketch.observe(v)
    for q in (10, 50, 90, 95, 99):
        exact = _exact_quantile(values, q)
        est = sketch.quantile(q)
        # Midpoint reporting guarantees ε relative; nearest-rank tie
        # handling at bucket edges costs at most one more ε.
        assert abs(est - exact) / exact <= 0.02 + 1e-9, (q, exact, est)


def test_sketch_memory_independent_of_observations():
    import math

    sketch = QuantileSketch()
    rng = random.Random(7)
    for _ in range(20_000):
        sketch.observe(rng.randint(1, 1000))
    saturated = sketch.bucket_count()
    # The ceiling is set by the value RANGE, not the observation count:
    # at most ceil(log(1000)/log(gamma)) + 1 buckets can ever exist.
    ceiling = math.ceil(math.log(1000) / math.log(sketch._gamma)) + 1
    assert saturated <= ceiling
    for _ in range(20_000):
        sketch.observe(rng.randint(1, 1000))
    # Doubling the observations adds (almost) nothing once saturated.
    assert sketch.bucket_count() <= saturated + 3
    assert sketch.count == 40_000


def test_sketch_zero_and_stats():
    sketch = QuantileSketch()
    for v in (0, 0, 0, 10):
        sketch.observe(v)
    assert sketch.quantile(50) == 0.0
    assert sketch.min == 0 and sketch.max == 10
    assert sketch.mean == pytest.approx(2.5)
    assert sketch.quantile(100) == pytest.approx(10, rel=0.011)


def test_sketch_merge_matches_single_sketch():
    rng = random.Random(3)
    merged = QuantileSketch()
    parts = [QuantileSketch() for _ in range(4)]
    reference = QuantileSketch()
    for i in range(2000):
        v = rng.randint(1, 500)
        parts[i % 4].observe(v)
        reference.observe(v)
    for part in parts:
        merged.merge(part)
    assert merged.count == reference.count
    assert merged.total == reference.total
    for q in (50, 95, 99):
        assert merged.quantile(q) == reference.quantile(q)


def test_sketch_rejects_bad_input():
    with pytest.raises(ValueError):
        QuantileSketch(rel_error=0.0)
    with pytest.raises(ValueError):
        QuantileSketch(rel_error=1.0)
    sketch = QuantileSketch()
    with pytest.raises(ValueError):
        sketch.observe(-1)
    with pytest.raises(ValueError):
        sketch.quantile(101)
    with pytest.raises(ValueError):
        sketch.merge(QuantileSketch(rel_error=0.05))
    assert sketch.quantile(99) == 0.0  # empty


# ----------------------------------------------------------------------
# WindowedSeries
# ----------------------------------------------------------------------
def test_windows_align_on_absolute_virtual_time():
    series = WindowedSeries(width=10, max_windows=8)
    series.add(0, "arrivals")
    series.add(9, "arrivals")
    series.add(10, "arrivals")
    out = series.series()
    assert [w["start"] for w in out] == [0, 10]
    assert out[0]["arrivals"] == 2 and out[1]["arrivals"] == 1


def test_windows_evict_oldest_and_conserve_totals():
    series = WindowedSeries(width=10, max_windows=3)
    for t in range(0, 60, 10):
        series.add(t, "completed", 2)
        series.gauge(t, "depth", t)
    assert len(series.series()) == 3
    assert series.evicted_windows == 3
    # Sums survive eviction; gauges fold with max.
    assert series.total("completed") == 12
    assert series.evicted["max_depth"] == 20  # newest evicted gauge wins
    assert series.cells() <= 3 * 2


def test_windows_contention_ratio():
    series = WindowedSeries(width=10)
    for _ in range(4):
        series.add(5, "op_start")
    series.add(5, "blocked")
    (win,) = series.series()
    assert win["contention"] == pytest.approx(0.25)


def test_windows_reject_bad_config():
    with pytest.raises(ValueError):
        WindowedSeries(width=0)
    with pytest.raises(ValueError):
        WindowedSeries(max_windows=0)


# ----------------------------------------------------------------------
# StreamingSink — synthetic event folding
# ----------------------------------------------------------------------
def _ev(seq, kind, pname="p", obj="", time=0):
    return Event(seq=seq, time=time, pid=1, pname=pname, kind=kind, obj=obj)


def test_sink_folds_request_start_end_latencies():
    sink = StreamingSink(window=16)
    sink.on_event(_ev(10, "request", "p1", "buf.put"))
    sink.on_event(_ev(14, "op_start", "p1", "buf.put"))
    sink.on_event(_ev(20, "op_end", "p1", "buf.put", time=5))
    sketches = sink.op_sketches["buf.put"]
    assert sketches["queue"].max == 4
    assert sketches["service"].max == 6
    assert sketches["total"].max == 10
    assert sink.completed == 1
    assert sink.in_flight() == 0


def test_sink_matches_cross_process_requests_fifo():
    # A CSP-style server executes another process's request: op_start is
    # matched to the OLDEST open request on the object, like fold_spans.
    sink = StreamingSink()
    sink.on_event(_ev(1, "request", "client-a", "buf.put"))
    sink.on_event(_ev(2, "request", "client-b", "buf.put"))
    sink.on_event(_ev(5, "op_start", "server", "buf.put"))
    sink.on_event(_ev(7, "op_end", "server", "buf.put"))
    assert sink.op_sketches["buf.put"]["queue"].max == 4  # matched seq=1
    assert sink.in_flight() == 1  # client-b's request still open


def test_sink_wait_sketch_is_woken_process_keyed():
    sink = StreamingSink()
    sink.on_event(_ev(3, "blocked", "p1", "sem.items"))
    # unblocked is waker-attributed: pname is the waker, obj the woken.
    sink.on_event(_ev(9, "unblocked", "p2", "p1"))
    assert sink.wait_sketches["sem.items"].max == 6
    assert sink.in_flight() == 0


def test_sink_scrubs_killed_and_exited_processes():
    sink = StreamingSink()
    sink.on_event(_ev(1, "request", "victim", "buf.put"))
    sink.on_event(_ev(2, "op_start", "victim", "buf.put"))
    sink.on_event(_ev(3, "request", "victim", "buf.get"))
    sink.on_event(_ev(4, "blocked", "victim", "buf.get"))
    sink.on_event(_ev(5, "killed", "reaper", "victim"))
    assert sink.in_flight() == 0
    # Partial ops are dropped, not counted.
    assert sink.completed == 0


def test_sink_shard_prefix_collapses_labels():
    sink = StreamingSink(shard_prefix=True)
    for shard in ("shard0", "shard1"):
        sink.on_event(_ev(1, "request", "p", shard + ".put"))
        sink.on_event(_ev(2, "op_start", "p", shard + ".put"))
        sink.on_event(_ev(3, "op_end", "p", shard + ".put"))
        sink.on_event(_ev(4, "request", "p", shard + ".get"))
        sink.on_event(_ev(5, "op_start", "p", shard + ".get"))
        sink.on_event(_ev(6, "op_end", "p", shard + ".get"))
    assert set(sink.op_sketches) == {"shard0", "shard1"}
    assert sink.op_sketches["shard0"]["total"].count == 2


def test_sink_to_dict_shape():
    sink = StreamingSink()
    sink.on_event(_ev(1, "request", "p", "buf.put", time=3))
    sink.on_event(_ev(2, "op_start", "p", "buf.put", time=3))
    sink.on_event(_ev(4, "op_end", "p", "buf.put", time=3))
    payload = sink.to_dict()
    assert set(payload) == {
        "events", "steps", "context_switches", "completed", "in_flight",
        "memory_cells", "max_depth", "latency", "wait", "objects",
        "windows", "evicted_windows",
    }
    assert set(payload["latency"]) == {"queue", "service", "total"}
    assert payload["completed"] == 1
    assert payload["windows"][0]["arrivals"] == 1


# ----------------------------------------------------------------------
# StreamingSink — on a real run, against the recording pipeline
# ----------------------------------------------------------------------
def test_sink_agrees_with_recording_pipeline_on_real_run():
    from repro.obs import MetricsSink

    streaming = StreamingSink()
    metrics = MetricsSink()

    def run_with(sink):
        factory = get_solution("bounded_buffer", "semaphore").factory
        sched = Scheduler(sink=sink)
        return bounded_buffer.run_producers_consumers(
            factory, sched=sched, producers=2, consumers=2, items_each=10)

    run_with(streaming)
    run_with(metrics)
    # Same deterministic run: same event and step counts, and every one
    # of the 40 operations (20 puts + 20 gets) completed and drained.
    assert streaming.events == metrics.events
    assert streaming.steps == metrics.steps
    assert streaming.context_switches == metrics.context_switches
    assert streaming.completed == 40
    assert streaming.in_flight() == 0
    merged = streaming.merged_latency("total")
    assert merged.count == 40
    assert merged.min >= 0 and merged.max >= merged.min
