"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_coverage_command(capsys):
    code, out = run_cli(capsys, "coverage")
    assert code == 0
    assert "bounded_buffer" in out
    assert "none (complete suite)" in out


def test_list_command(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "readers_priority" in out
    assert "pathexpr" in out
    assert "csp" in out


def test_independence_command(capsys):
    code, out = run_cli(capsys, "independence")
    assert code == 0
    assert "rw_exclusion:stable" in out
    assert "VIOLATED" in out


def test_anomaly_command_fast(capsys):
    code, out = run_cli(capsys, "anomaly", "--fast")
    assert code == 0
    assert "REPRODUCED" in out


def test_evaluate_fast(capsys):
    code, out = run_cli(capsys, "evaluate", "--fast")
    assert code == 0
    assert "Expressive power" in out
    assert "Constraint independence" in out


def test_timeline_command(capsys):
    code, out = run_cli(capsys, "timeline", "--mechanism", "monitor",
                        "--width", "50")
    assert code == 0
    assert "R0" in out and "|" in out


def test_timeline_unknown_solution(capsys):
    code, out = run_cli(capsys, "timeline", "--mechanism", "quantum")
    assert code == 1
    assert "no such solution" in out


def test_timeline_unsupported_problem(capsys):
    code, out = run_cli(capsys, "timeline", "--problem", "alarm_clock",
                        "--mechanism", "monitor")
    assert code == 1


def test_pairs_command(capsys):
    code, out = run_cli(capsys, "pairs")
    assert code == 0
    assert "T1xT2" in out
    assert "monitor" in out


def test_robustness_json_schema_golden(capsys):
    # Golden schema lock: the robustness JSON is consumed by CI tooling,
    # so key sets are asserted exactly — extending the schema must be a
    # deliberate act (update this test), never an accident.
    import json

    code, out = run_cli(capsys, "robustness", "--fast", "--json")
    assert code == 0
    payload = json.loads(out)
    assert set(payload) == {"scenarios", "surprises"}
    assert payload["surprises"] == []
    assert [s["name"] for s in payload["scenarios"]] == [
        "semaphore", "semaphore+crash_release", "mutex", "monitor",
        "serializer", "ccr", "pathexpr", "channel",
    ]
    for scenario in payload["scenarios"]:
        assert set(scenario) == {
            "name", "victim", "runs", "contained", "propagated",
            "deadlocked", "step_limited", "violations", "classification",
            "expected",
        }, scenario["name"]
        assert scenario["victim"] == "P0"
        assert scenario["runs"] > 0


def test_partition_json_schema_golden(capsys):
    # Golden schema lock, mirroring the robustness one: the partition JSON
    # feeds CI artifact diffing, so key sets are asserted exactly.
    import json

    code, out = run_cli(capsys, "partition", "--fast", "--json")
    assert code == 0
    payload = json.loads(out)
    assert set(payload) == {"scenarios", "surprises", "violations"}
    assert payload["surprises"] == []
    assert payload["violations"] == []
    assert [s["name"] for s in payload["scenarios"]] == [
        "lamport_mutex", "quorum_lock", "leader_election",
    ]
    for scenario in payload["scenarios"]:
        assert set(scenario) == {
            "name", "runs", "mttr_failover", "mttr_post_heal", "plans",
        }, scenario["name"]
        assert scenario["runs"] > 0
        # Scenario-level MTTR aggregates every plan cell's samples; the
        # quorum scenarios have healing-partition plans, so they must
        # surface at least one leg as a number.
        if scenario["name"] != "lamport_mutex":
            assert (scenario["mttr_failover"] is not None
                    or scenario["mttr_post_heal"] is not None)
        assert [p["plan"] for p in scenario["plans"]] == [
            "clean", "lossy", "partition-heal", "partition-forever",
        ]
        for plan in scenario["plans"]:
            assert set(plan) == {
                "plan", "faults", "expected", "runs", "split_brain",
                "wedged", "tolerant", "violations", "mttr_failover",
                "mttr_post_heal", "message_stats", "classification",
            }, (scenario["name"], plan["plan"])
            stats = plan["message_stats"]
            # Satellite wiring: every plan reports message overhead,
            # including the per-node inbox-depth gauge.
            assert {"sent", "delivered", "inbox_peak"} <= set(stats)
            assert stats["sent"] >= stats["delivered"]
            assert all(peak >= 1 for peak in stats["inbox_peak"].values())


def test_resilience_command_fast(capsys):
    code, out = run_cli(capsys, "resilience", "--fast")
    assert code == 0
    assert "Combined-fault resilience at 5 nodes" in out
    assert "restart_lock_unfenced" in out
    assert "all combined-fault classifications match" in out


def test_resilience_command_search(capsys):
    code, out = run_cli(capsys, "resilience", "--fast", "--search")
    assert code == 0
    assert "minimal combined witness" in out
    assert "kill c0" in out
    assert "partition-tolerant" in out  # the fenced replay of the witness


def test_resilience_json_schema_golden(capsys):
    # Golden schema lock, mirroring the partition one: the resilience
    # JSON is the E22 CI artifact, so key sets are asserted exactly.
    import json

    code, out = run_cli(capsys, "resilience", "--fast", "--json")
    assert code == 0
    payload = json.loads(out)
    assert set(payload) == {"scenarios", "surprises"}
    assert payload["surprises"] == []
    assert [s["name"] for s in payload["scenarios"]] == [
        "lamport_mutex", "quorum_lock", "leader_election",
        "restart_lock", "restart_lock_unfenced",
    ]
    for scenario in payload["scenarios"]:
        assert set(scenario) == {
            "name", "cluster", "runs", "mttr_failover", "mttr_post_heal",
            "availability", "cells",
        }, scenario["name"]
        assert scenario["cluster"] == 5
        assert scenario["runs"] > 0
        for cell in scenario["cells"]:
            assert set(cell) == {
                "cell", "faults", "expected", "runs", "restarts",
                "split_brain", "wedged", "tolerant", "violations",
                "mttr_failover", "mttr_post_heal", "availability",
                "message_stats", "classification",
            }, (scenario["name"], cell["cell"])
            assert cell["classification"] == cell["expected"]
    # The two fencing worlds of the same combined faults are both on
    # display: tolerant fenced, split-brain unfenced.
    by_name = {s["name"]: s for s in payload["scenarios"]}
    fenced = {c["cell"]: c for c in by_name["restart_lock"]["cells"]}
    assert fenced["crash+partition"]["classification"] == "partition-tolerant"
    assert fenced["crash+partition"]["restarts"] >= 1
    (unfenced,) = by_name["restart_lock_unfenced"]["cells"]
    assert unfenced["classification"] == "split-brain"
    assert len(unfenced["violations"]) > 0


def test_resilience_json_search_block(capsys):
    import json

    code, out = run_cli(capsys, "resilience", "--fast", "--search",
                        "--json")
    assert code == 0
    payload = json.loads(out)
    assert set(payload) == {"scenarios", "surprises", "search"}
    search = payload["search"]
    assert search["witness_kills"] == 1
    assert search["witness_cuts"] == 1
    assert search["witness_label"] == "split-brain"
    assert search["fenced_replay"] == "partition-tolerant"
    assert search["witness_fault_plan"] is not None
    assert search["witness_net_plan"] is not None


def test_load_command_fast(capsys):
    code, out = run_cli(capsys, "load", "--fast", "--mechanism",
                        "semaphore,serializer")
    assert code == 0
    assert "throughput (ops/ktick) vs clients" in out
    assert "serializer" in out


def test_load_json_schema_golden(capsys, tmp_path):
    import json

    out_path = str(tmp_path / "load.json")
    code, out = run_cli(capsys, "load", "--fast", "--mechanism", "monitor",
                        "--json", "--out", out_path)
    assert code == 0
    # --out writes the same payload it prints (minus the confirmation).
    printed = json.loads(out[out.index("{"):])
    with open(out_path) as fh:
        payload = json.load(fh)
    assert payload == printed
    assert set(payload) == {"config", "mechanisms"}
    assert set(payload["config"]) == {
        "arrival", "shards", "ops", "capacity", "horizon", "seed", "clients",
    }
    (points,) = [payload["mechanisms"]["monitor"]]
    assert [p["clients"] for p in points] == payload["config"]["clients"]
    for point in points:
        assert set(point) == {
            "mechanism", "clients", "shards", "offered_rate", "completed",
            "duration_ticks", "steps", "wall_seconds", "throughput",
            "steps_per_op", "latency", "wait", "max_depth", "memory_cells",
            "events",
        }
        assert set(point["latency"]) == {"p50", "p95", "p99", "mean", "max"}


def test_recover_command(capsys):
    code, out = run_cli(capsys, "recover", "--fast")
    assert code == 0
    assert "recovered" in out
    assert "MTTR fingerprints" in out
    assert "recovery contract" in out


def test_recover_command_search(capsys):
    code, out = run_cli(capsys, "recover", "--fast", "--search")
    assert code == 0
    assert "minimal crash set" in out
    assert "kill sup" in out


def test_recover_json_schema_golden(capsys):
    import json

    code, out = run_cli(capsys, "recover", "--fast", "--json")
    assert code == 0
    payload = json.loads(out)
    assert set(payload) == {"scenarios", "mttr", "surprises"}
    assert payload["surprises"] == []
    for scenario in payload["scenarios"]:
        assert set(scenario) == {
            "name", "victim", "runs", "recovered", "degraded", "wedged",
            "violated", "violations", "classification", "expected",
        }, scenario["name"]
    assert set(payload["mttr"]) == {
        "semaphore", "semaphore+degrade", "mutex", "monitor",
        "serializer", "ccr", "pathexpr", "channel",
    }
    for name, fp in payload["mttr"].items():
        assert fp["recovery_rate"] == 1.0, name
