"""Tests for the run store and the ``repro regress`` gate.

The gate's contract, end to end through ``main()``: a clean re-run against
a freshly written baseline exits zero; a synthetic slowdown
(``--inject-delay``) trips it and exits nonzero.
"""

import json
import os

import pytest

from repro.__main__ import main
from repro.obs import (
    RunRecord,
    RunStore,
    compare_records,
    dump_baseline,
    load_baseline,
    run_causal,
)
from repro.obs.runstore import RUNSTORE_SCHEMA, canonical_json


# ----------------------------------------------------------------------
# Records
# ----------------------------------------------------------------------


def test_record_round_trip():
    record = run_causal("bounded_buffer", "semaphore", seed=11).record
    clone = RunRecord.from_dict(record.to_dict())
    assert clone.to_dict() == record.to_dict()
    assert clone.key == "bounded_buffer/semaphore@seed11"


def test_record_rejects_newer_schema():
    data = run_causal("fcfs_resource", "serializer").record.to_dict()
    data["schema"] = RUNSTORE_SCHEMA + 1
    with pytest.raises(ValueError, match="newer"):
        RunRecord.from_dict(data)


def test_record_tolerates_older_partial_schema():
    """Loading an old record with missing fields must not invent values —
    absent counters load as zero and never trip the >=2-tick guard alone."""
    record = RunRecord.from_dict(
        {"schema": 1, "problem": "p", "mechanism": "m", "makespan": 10})
    assert record.makespan == 10
    assert record.steps == 0
    assert record.constraint_ticks == {}


def test_canonical_json_is_byte_stable():
    record = run_causal("bounded_buffer", "csp").record
    assert canonical_json(record.to_dict()) == \
        canonical_json(RunRecord.from_dict(record.to_dict()).to_dict())
    assert canonical_json({}).endswith("\n")


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------


def test_store_save_load_and_load_all(tmp_path):
    store = RunStore(str(tmp_path))
    a = run_causal("bounded_buffer", "monitor").record
    b = run_causal("bounded_buffer", "monitor", seed=5).record
    store.save(a)
    store.save(b)
    assert store.load("bounded_buffer", "monitor").key == a.key
    assert store.load("bounded_buffer", "monitor", seed=5).key == b.key
    assert store.load("bounded_buffer", "monitor", seed=99) is None
    assert [r.key for r in store.load_all()] == sorted([a.key, b.key])


def test_baseline_file_round_trip(tmp_path):
    records = [run_causal("one_slot_buffer", "csp").record,
               run_causal("one_slot_buffer", "monitor").record]
    path = tmp_path / "base.json"
    path.write_text(dump_baseline(records))
    loaded = load_baseline(str(path))
    assert [r.key for r in loaded] == sorted(r.key for r in records)


def test_baseline_directory_round_trip(tmp_path):
    store = RunStore(str(tmp_path))
    store.save(run_causal("fcfs_resource", "semaphore").record)
    loaded = load_baseline(str(tmp_path))
    assert [r.key for r in loaded] == ["fcfs_resource/semaphore"]


# ----------------------------------------------------------------------
# The gate
# ----------------------------------------------------------------------


def test_compare_records_threshold_and_absolute_floor():
    base = RunRecord(problem="p", mechanism="m", makespan=100, steps=10)
    same = RunRecord(problem="p", mechanism="m", makespan=100, steps=10)
    assert compare_records(base, same) == []
    # Improvements never regress.
    faster = RunRecord(problem="p", mechanism="m", makespan=50, steps=10)
    assert compare_records(base, faster) == []
    # Past the threshold and the 2-tick floor: trips.
    slower = RunRecord(problem="p", mechanism="m", makespan=120, steps=10)
    hits = compare_records(base, slower, threshold_pct=10.0)
    assert [(r.metric, r.baseline, r.current) for r in hits] == \
        [("makespan", 100, 120)]
    # Single-tick jitter on a tiny metric never trips, whatever the
    # percentage says.
    tiny = RunRecord(problem="p", mechanism="m", makespan=100, steps=11)
    assert compare_records(base, tiny, threshold_pct=5.0) == []


# ----------------------------------------------------------------------
# End to end through the CLI
# ----------------------------------------------------------------------


def _write_baseline(tmp_path, capsys):
    base = str(tmp_path / "baseline.json")
    code = main(["regress", "--write-baseline", base,
                 "--problem", "bounded_buffer"])
    capsys.readouterr()
    assert code == 0
    return base


def test_regress_clean_rerun_exits_zero(tmp_path, capsys):
    base = _write_baseline(tmp_path, capsys)
    code = main(["regress", "--baseline", base,
                 "--problem", "bounded_buffer"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no regressions against baseline" in out


def test_regress_injected_delay_exits_nonzero(tmp_path, capsys):
    base = _write_baseline(tmp_path, capsys)
    code = main(["regress", "--baseline", base,
                 "--problem", "bounded_buffer",
                 "--inject-delay", "3", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["regressions"], "synthetic slowdown must trip the gate"
    keys = {r["metric"] for r in payload["regressions"]}
    assert keys & {"makespan", "path_blocked_ticks"}


def test_regress_requires_a_baseline(capsys):
    assert main(["regress"]) == 2


def test_causal_cli_saves_a_record(tmp_path, capsys):
    store = str(tmp_path / "runs")
    code = main(["causal", "bounded_buffer", "semaphore",
                 "--store", store])
    out = capsys.readouterr().out
    assert code == 0
    assert "critical path" in out
    assert "record saved to" in out
    saved = RunStore(store).load("bounded_buffer", "semaphore")
    assert saved is not None and saved.makespan > 0


def test_causal_cli_chrome_export_highlights_path(tmp_path, capsys):
    out_path = str(tmp_path / "causal.json")
    code = main(["causal", "bounded_buffer", "monitor", "--no-save",
                 "--export", "chrome", "--out", out_path])
    capsys.readouterr()
    assert code == 0
    with open(out_path) as fh:
        doc = json.load(fh)
    assert any(entry.get("cat") == "critical"
               for entry in doc["traceEvents"])


def test_causal_cli_unknown_pair_lists_choices(capsys):
    code = main(["causal", "nope", "nothing", "--no-save"])
    out = capsys.readouterr().out
    assert code == 1
    assert "bounded_buffer/monitor" in out


# ----------------------------------------------------------------------
# Satellite: metrics --out persists comparison JSON
# ----------------------------------------------------------------------


def test_metrics_out_persists_comparison(tmp_path, capsys):
    out_path = str(tmp_path / "metrics.json")
    code = main(["metrics", "--problem", "one_slot_buffer",
                 "--out", out_path])
    capsys.readouterr()
    assert code == 0
    with open(out_path) as fh:
        text = fh.read()
    assert text.endswith("\n")
    payload = json.loads(text)
    assert all(row["problem"] == "one_slot_buffer" for row in payload)
    assert {"problem", "mechanism", "seed", "metrics"} <= set(payload[0])


# ----------------------------------------------------------------------
# Satellite: bench persist() canonicalization
# ----------------------------------------------------------------------


def test_bench_persist_is_canonical_and_merges(tmp_path):
    import sys

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir,
                                    "benchmarks"))
    try:
        from conftest import persist
    finally:
        sys.path.pop(0)

    first = persist("demo", {"b": 2, "a": 1}, directory=str(tmp_path))
    text1 = open(first).read()
    assert text1.endswith("\n")
    assert text1.index('"a"') < text1.index('"b"')
    # Re-persisting identical data is byte-identical (diffable commits).
    persist("demo", {"b": 2, "a": 1}, directory=str(tmp_path))
    assert open(first).read() == text1
    # New top-level keys merge; old ones survive.
    persist("demo", {"c": {"z": 1}}, directory=str(tmp_path))
    merged = json.loads(open(first).read())
    assert merged == {"a": 1, "b": 2, "c": {"z": 1}}


# ----------------------------------------------------------------------
# The cross-run fingerprint cache
# ----------------------------------------------------------------------


def test_fp_cache_refuses_unexhausted_saves(tmp_path):
    from repro.obs.runstore import FingerprintCache

    cache = FingerprintCache(str(tmp_path / "fp"))
    keys = {(1, 0), (2, 1)}
    assert cache.save("p", "m", keys, max_depth=60, exhausted=False) is None
    assert cache.load("p", "m") == set()
    path = cache.save("p", "m", keys, max_depth=60, exhausted=True)
    assert path is not None
    assert cache.load("p", "m") == keys


def test_fp_cache_depth_gating_and_union_merge(tmp_path):
    from repro.obs.runstore import FingerprintCache

    cache = FingerprintCache(str(tmp_path / "fp"))
    cache.save("p", "m", {(1, 0)}, max_depth=40, exhausted=True)
    # A deeper search must come up cold (shallow claims would hide
    # unexplored subtrees); an equal-or-shallower one warms.
    assert cache.load("p", "m", max_depth=60) == set()
    assert cache.load("p", "m", max_depth=40) == {(1, 0)}
    assert cache.load("p", "m", max_depth=10) == {(1, 0)}
    # Merge unions keys and keeps the SHALLOWER depth.
    cache.save("p", "m", {(2, 1)}, max_depth=60, exhausted=True)
    assert cache.load("p", "m", max_depth=40) == {(1, 0), (2, 1)}
    assert cache.load("p", "m", max_depth=60) == set()


def test_fp_cache_variants_are_isolated(tmp_path):
    from repro.obs.runstore import FingerprintCache

    cache = FingerprintCache(str(tmp_path / "fp"))
    cache.save("p", "m", {(1, 0)}, variant="a", max_depth=60,
               exhausted=True)
    assert cache.load("p", "m", variant="b", max_depth=60) == set()
    assert cache.load("p", "m", variant="a", max_depth=60) == {(1, 0)}
    assert cache.discard("p", "m", variant="a")
    assert cache.load("p", "m", variant="a", max_depth=60) == set()


def test_explore_cli_fp_cache_warm_start(tmp_path, capsys, monkeypatch):
    """Second --fp-cache exploration of the same target claims (nearly)
    nothing new: the persisted keys prune every revisited subtree."""
    monkeypatch.chdir(tmp_path)
    argv = ["explore", "one_slot_buffer", "semaphore",
            "--max-runs", "4000", "--fp-cache", "--json"]
    assert main(argv) == 0
    cold = json.loads(capsys.readouterr().out)
    assert cold["exhausted"]
    assert cold["fp_cache"]["preloaded"] == 0
    assert cold["fp_cache"]["persisted"]
    assert cold["fp_cache"]["new_states"] > 0

    assert main(argv) == 0
    warm = json.loads(capsys.readouterr().out)
    assert warm["fp_cache"]["preloaded"] == cold["fp_cache"]["new_states"]
    assert warm["fp_cache"]["new_states"] == 0
    assert warm["runs"] < cold["runs"]


# ----------------------------------------------------------------------
# Satellite: load-sweep latency tails through the gate
# ----------------------------------------------------------------------


class _Point:
    def __init__(self, clients, p95, p99, ticks=100, steps=500, events=50):
        self.clients = clients
        self.latency = {"p95": p95, "p99": p99}
        self.duration_ticks = ticks
        self.steps = steps
        self.events = events


def test_load_tail_record_takes_largest_population():
    from repro.obs.runstore import load_tail_record

    record = load_tail_record(
        "monitor", [_Point(8, 4.0, 6.0), _Point(32, 9.0, 14.0)], seed=3)
    assert record.problem == "load_tail"
    assert record.key == "load_tail/monitor@seed3"
    assert (record.latency_p95, record.latency_p99) == (9, 14)
    # Round-trips through the schema with the optional fields intact.
    clone = RunRecord.from_dict(record.to_dict())
    assert (clone.latency_p95, clone.latency_p99) == (9, 14)


def test_latency_tail_gate_and_none_skip():
    base = RunRecord(problem="load_tail", mechanism="m", makespan=100,
                     latency_p95=20, latency_p99=40)
    # Tail regression past threshold + floor: trips on the tail metrics.
    worse = RunRecord(problem="load_tail", mechanism="m", makespan=100,
                      latency_p95=30, latency_p99=60)
    hits = compare_records(base, worse, threshold_pct=10.0)
    assert {r.metric for r in hits} == {"latency_p95", "latency_p99"}
    # A profile record (no tails) against a tail baseline: skipped, not
    # treated as zero.
    plain = RunRecord(problem="load_tail", mechanism="m", makespan=100)
    assert compare_records(base, plain) == []
    assert compare_records(plain, worse) == []


def test_regress_load_cli_round_trip(tmp_path, capsys):
    base = str(tmp_path / "load_tail.json")
    code = main(["regress", "--load", "--mechanism", "monitor",
                 "--write-baseline", base])
    capsys.readouterr()
    assert code == 0
    records = load_baseline(base)
    assert [r.key for r in records] == ["load_tail/monitor"]
    assert records[0].latency_p95 is not None

    code = main(["regress", "--load", "--baseline", base, "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["compared"] == ["load_tail/monitor"]
    assert payload["regressions"] == []

    # A doctored baseline (tails lowered) must trip the gate on p95/p99.
    doctored = [r.to_dict() for r in records]
    doctored[0]["latency_p95"] = max(1, doctored[0]["latency_p95"] - 3)
    doctored[0]["latency_p99"] = max(1, doctored[0]["latency_p99"] - 5)
    with open(base, "w") as fh:
        json.dump(doctored, fh)
    code = main(["regress", "--load", "--baseline", base, "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert {r["metric"] for r in payload["regressions"]} <= \
        {"latency_p95", "latency_p99"}
    assert payload["regressions"]
