"""Unit tests for the dist layer: NetPlan verdicts, network fault
application, the protocol runtime (dedup, retry), and quorum leases."""

import pytest

from repro.dist import (
    ACQUIRE,
    DELAY,
    DELIVER,
    DROP,
    DUPLICATE,
    GRANT,
    LeaseServer,
    NetPlan,
    Network,
    Node,
    QuorumLease,
)
from repro.runtime.errors import WaitTimeout
from repro.runtime.scheduler import Scheduler


# ----------------------------------------------------------------------
# NetPlan: pure verdict logic, no scheduler required
# ----------------------------------------------------------------------
class TestNetPlanVerdicts:
    def test_drop_counts_per_link_pattern(self):
        plan = NetPlan().drop("a", "b", nth=2)
        assert plan.verdict("a", "b", 0) == (DELIVER, None)
        assert plan.verdict("a", "b", 0) == (DROP, None)
        assert plan.verdict("a", "b", 0) == (DELIVER, None)

    def test_wildcard_counts_only_matching_messages(self):
        plan = NetPlan().drop("*", "b", nth=2)
        assert plan.verdict("a", "x", 0) == (DELIVER, None)  # not counted
        assert plan.verdict("a", "b", 0) == (DELIVER, None)  # count 1
        assert plan.verdict("c", "b", 0) == (DROP, None)     # count 2

    def test_rules_keep_independent_counters(self):
        plan = NetPlan().drop("a", "b", nth=1).duplicate("a", "b", nth=2)
        assert plan.verdict("a", "b", 0) == (DROP, None)
        assert plan.verdict("a", "b", 0) == (DUPLICATE, None)

    def test_delay_carries_ticks(self):
        plan = NetPlan().delay("a", "b", ticks=7)
        assert plan.verdict("a", "b", 0) == (DELAY, 7)

    def test_partition_takes_precedence_over_link_rules(self):
        plan = NetPlan().duplicate("a", "b", nth=1).partition(["a"], ["b"])
        assert plan.partitioned("a", "b", 0)
        assert plan.verdict("a", "b", 0) == (DROP, None)

    def test_partition_window_and_sides(self):
        plan = NetPlan().isolate("n0", at=5, heal_at=10)
        assert not plan.partitioned("n0", "n1", 4)
        assert plan.partitioned("n0", "n1", 5)
        assert plan.partitioned("n1", "n0", 9)   # both directions
        assert not plan.partitioned("n0", "n1", 10)
        assert not plan.partitioned("n1", "n2", 7)  # same side

    def test_partial_partition_ignores_outsiders(self):
        plan = NetPlan().partition(["a"], ["b"])
        assert plan.partitioned("a", "b", 0)
        assert not plan.partitioned("a", "c", 0)
        assert not plan.partitioned("c", "b", 0)

    def test_begin_resets_fired_state_and_counters(self):
        plan = NetPlan().drop("a", "b", nth=1)
        assert plan.verdict("a", "b", 0) == (DROP, None)
        assert plan.verdict("a", "b", 0) == (DELIVER, None)
        plan.begin()
        assert plan.verdict("a", "b", 0) == (DROP, None)

    def test_schedule_ticks_sorted_and_deduped(self):
        plan = (NetPlan().isolate("a", at=9, heal_at=20)
                         .partition(["b"], ["c"], at=3, heal_at=9))
        assert plan.schedule_ticks() == [3, 9, 20]

    def test_describe_round_trip(self):
        plan = (NetPlan()
                .drop("a", "b", nth=2)
                .duplicate("*", "b")
                .delay("a", "*", ticks=4, nth=3)
                .reorder("a", "b")
                .isolate("n0", at=1, heal_at=9))
        rendered = repr(plan)
        for line in plan.describe():
            assert line in rendered
        assert "drop message #2 on a->b" in rendered
        assert "delay message #3 on a->* by 4 ticks" in rendered
        assert "partition {n0} | {rest} at t=1 (heals at t=9)" in rendered

    def test_builder_validation(self):
        with pytest.raises(ValueError):
            NetPlan().drop("a", "b", nth=0)
        with pytest.raises(ValueError):
            NetPlan().delay("a", "b", ticks=0)
        with pytest.raises(ValueError):
            NetPlan().partition(["a"], at=5, heal_at=5)

    def test_dict_round_trip(self):
        # Joint fault plans persist their witnesses as dicts (the
        # resilience search, BENCH_resilience.json), so serialization
        # must reconstruct a behaviourally identical plan.
        plan = (NetPlan()
                .drop("a", "b", nth=2)
                .duplicate("*", "b")
                .delay("a", "*", ticks=4, nth=3)
                .reorder("a", "b")
                .isolate("n0", at=1, heal_at=9)
                .partition(["x"], ["y"], at=3))
        clone = NetPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.describe() == plan.describe()
        # The clone starts with fresh counters and tracks the original
        # verdict-for-verdict across every rule kind.
        traffic = [("a", "b"), ("a", "b"), ("a", "b"),
                   ("a", "q"), ("a", "q"), ("c", "b"), ("c", "b")]
        assert ([clone.verdict(s, d, 0) for s, d in traffic]
                == [plan.verdict(s, d, 0) for s, d in traffic])
        assert clone.partitioned("n0", "n1", 8)
        assert not clone.partitioned("n0", "n1", 9)
        assert clone.partitioned("x", "y", 3)
        assert clone.schedule_ticks() == plan.schedule_ticks()


# ----------------------------------------------------------------------
# Network: fault application is trace-visible and counted
# ----------------------------------------------------------------------
def _pair(sched, net, payloads, receive_n, recv_timeout=None):
    """Spawn a sender pushing ``payloads`` to node b and a receiver taking
    ``receive_n`` values; return the receiver's list via run results."""
    def sender():
        for p in payloads:
            yield from net.node("b").send(p)

    def receiver():
        got = []
        for _ in range(receive_n):
            got.append((yield from net.node("b").receive(
                timeout=recv_timeout)))
        return got

    sched.spawn(sender, name="a")
    sched.spawn(receiver, name="b")


class TestNetwork:
    def test_clean_delivery_in_order_with_stats(self):
        sched = Scheduler()
        net = Network(sched)
        _pair(sched, net, [1, 2, 3], 3)
        result = sched.run()
        assert result.results["b"] == [1, 2, 3]
        assert net.stats() == {"sent": 3, "delivered": 3, "dropped": 0,
                               "duplicated": 0, "delayed": 0,
                               "inbox_peak": {"b": 3}}

    def test_inbox_peak_tracks_backlog_and_probes_the_sink(self):
        from repro.obs import MetricsSink

        sink = MetricsSink()
        sched = Scheduler(sink=sink)
        net = Network(sched)
        _pair(sched, net, [1, 2, 3, 4], 4)
        sched.run()
        stats = net.stats()
        # The sender bursts ahead of the receiver, so the inbox backs up;
        # the peak is a gauge (max), not a counter.
        assert 1 <= stats["inbox_peak"]["b"] <= 4
        # Every delivery publishes an inbox-depth probe to the sink.
        assert sink.probe_counts.get("b") == stats["delivered"]
        assert sink.max_depth.get("b") == stats["inbox_peak"]["b"]

    def test_network_stats_flow_into_run_metrics(self):
        from repro.obs import RecordingSink, compute_metrics, fold_spans

        sink = RecordingSink()
        sched = Scheduler(sink=sink)
        net = Network(sched)
        _pair(sched, net, [1, 2], 2)
        result = sched.run()
        result.network_stats = net.stats()
        metrics = compute_metrics(result, fold_spans(result.trace), sink)
        assert metrics.network["sent"] == 2
        assert metrics.network["inbox_peak"]["b"] >= 1
        assert metrics.to_dict()["network"]["delivered"] == 2
        assert "net: sent=2" in metrics.render()

    def test_drop_is_logged_with_rule_reason(self):
        sched = Scheduler()
        net = Network(sched, NetPlan().drop("a", "b", nth=2))
        _pair(sched, net, ["x", "lost", "y"], 2)
        result = sched.run()
        assert result.results["b"] == ["x", "y"]
        drop = result.trace.first(kind="msg_drop")
        assert drop.detail == "drop rule"
        assert net.dropped == 1

    def test_duplicate_deposits_twice(self):
        sched = Scheduler()
        net = Network(sched, NetPlan().duplicate("a", "b", nth=1))
        _pair(sched, net, ["x"], 2)
        result = sched.run()
        assert result.results["b"] == ["x", "x"]
        assert net.duplicated == 1
        assert len(result.trace.filter(kind="msg_deliver")) == 2

    def test_delay_delivers_at_due_tick(self):
        sched = Scheduler()
        net = Network(sched, NetPlan().delay("a", "b", ticks=6))
        _pair(sched, net, ["late"], 1)
        result = sched.run()
        deliver = result.trace.first(kind="msg_deliver")
        assert deliver.time == 6
        assert net.delayed == 1

    def test_partition_announced_and_healed_on_cue(self):
        sched = Scheduler()
        net = Network(sched, NetPlan().isolate("a", at=4, heal_at=9))
        net.start()

        def bystander():
            yield from sched.sleep(12)

        sched.spawn(bystander, name="z")
        result = sched.run()
        assert result.trace.first(kind="net_partition").time == 4
        assert result.trace.first(kind="net_heal").time == 9

    def test_in_flight_message_lost_at_partition_boundary(self):
        # Sent before the partition, due inside it: lost at the boundary.
        sched = Scheduler()
        net = Network(sched, NetPlan().delay("a", "b", ticks=5)
                                      .isolate("a", at=3, heal_at=30))
        _pair(sched, net, ["doomed"], 1, recv_timeout=40)

        def run_all():
            return sched.run(on_error="record", on_deadlock="return")

        result = run_all()
        assert result.results.get("b") is None  # receiver timed out
        drop = result.trace.first(kind="msg_drop")
        assert drop.detail == "partition"

    def test_latency_routes_through_pump(self):
        sched = Scheduler()
        net = Network(sched, latency=2)
        _pair(sched, net, ["x"], 1)
        result = sched.run()
        assert result.trace.first(kind="msg_deliver").time == 2
        assert result.results["b"] == ["x"]


# ----------------------------------------------------------------------
# Protocol runtime: dedup, pending buffer, retry
# ----------------------------------------------------------------------
class TestProtocol:
    def test_network_duplicate_is_deduped_once(self):
        sched = Scheduler()
        net = Network(sched, NetPlan().duplicate("a", "b", nth=1))

        def sender():
            node = Node(net, "a").bind("a")
            yield from node.send("b", "ping", payload=1)

        def receiver():
            node = Node(net, "b").bind("b")
            msg = yield from node.receive()
            with pytest.raises(WaitTimeout):
                yield from node.receive(timeout=5)
            return (msg.kind, msg.payload, node.duplicates)

        sched.spawn(sender, name="a")
        sched.spawn(receiver, name="b")
        result = sched.run()
        assert result.results["b"] == ("ping", 1, 1)
        assert len(result.trace.filter(kind="msg_dedup")) == 1

    def test_request_retries_after_dropped_attempt(self):
        sched = Scheduler()
        net = Network(sched, NetPlan().drop("c", "s", nth=1))

        def client():
            node = Node(net, "c").bind("c")
            reply = yield from node.request("s", "ask", timeout=4,
                                           attempts=3)
            return reply.kind

        def server():
            node = Node(net, "s").bind("s")
            seen = 0
            while seen < 1:
                msg = yield from node.receive(timeout=30)
                seen += 1
                yield from node.reply(msg, "ok")

        sched.spawn(client, name="c")
        sched.spawn(server, name="s")
        result = sched.run(on_deadlock="return")
        assert result.results["c"] == "ok"
        # Two transmissions of the logical request: the dropped original
        # plus the retry that got through.
        assert len(result.trace.filter(kind="msg_drop")) == 1

    def test_try_request_returns_none_when_unreachable(self):
        sched = Scheduler()
        net = Network(sched, NetPlan().partition(["c"], ["s"]))

        def client():
            node = Node(net, "c").bind("c")
            reply = yield from node.try_request("s", "ask", timeout=3,
                                               attempts=2)
            return reply

        sched.spawn(client, name="c")
        result = sched.run(on_deadlock="return")
        assert result.results["c"] is None

    def test_unrelated_traffic_buffered_during_request(self):
        sched = Scheduler()
        net = Network(sched)

        def client():
            node = Node(net, "c").bind("c")
            reply = yield from node.request("s", "ask", timeout=20)
            gossip = yield from node.receive()
            return (reply.kind, gossip.kind)

        def server():
            node = Node(net, "s").bind("s")
            msg = yield from node.receive(timeout=30)
            yield from node.send("c", "gossip")  # lands mid-request
            yield from node.reply(msg, "ok")

        sched.spawn(client, name="c")
        sched.spawn(server, name="s")
        result = sched.run(on_deadlock="return")
        assert result.results["c"] == ("ok", "gossip")

    def test_broadcast_reaches_every_peer_with_same_seq(self):
        sched = Scheduler()
        net = Network(sched)

        def caster():
            node = Node(net, "a", peers=["b", "c"]).bind("a")
            seq = yield from node.broadcast("hello")
            return seq

        def listener(name):
            def body():
                node = Node(net, name).bind(name)
                msg = yield from node.receive()
                return (msg.src, msg.seq)

            return body

        sched.spawn(caster, name="a")
        sched.spawn(listener("b"), name="b")
        sched.spawn(listener("c"), name="c")
        result = sched.run()
        seq = result.results["a"]
        assert result.results["b"] == ("a", seq)
        assert result.results["c"] == ("a", seq)


# ----------------------------------------------------------------------
# Quorum leases
# ----------------------------------------------------------------------
def _lease_cluster(sched, net, servers=("s0", "s1", "s2"), duration=12,
                   horizon=60):
    """Spawn lease-server loops that answer until ``horizon``."""
    def server(sid):
        def body():
            node = Node(net, sid).bind(sid)
            lease = LeaseServer(node, duration=duration)
            while sched.now < horizon:
                try:
                    msg = yield from node.receive(
                        timeout=horizon - sched.now)
                except WaitTimeout:
                    return
                yield from lease.handle(msg)

        return body

    for sid in servers:
        sched.spawn(server(sid), name=sid)


class TestQuorumLease:
    def test_winner_takes_majority_loser_rejected(self):
        sched = Scheduler()
        net = Network(sched)
        _lease_cluster(sched, net)

        def client(cid):
            def body():
                node = Node(net, cid).bind(cid)
                lease = QuorumLease(node, ["s0", "s1", "s2"], duration=12,
                                    timeout=4, attempts=1)
                ok = yield from lease.acquire()
                return ok

            return body

        sched.spawn(client("c0"), name="c0")
        sched.spawn(client("c1"), name="c1")
        result = sched.run(on_deadlock="return")
        outcomes = sorted([result.results["c0"], result.results["c1"]])
        assert outcomes == [False, True]
        acquired = result.trace.filter(kind="lease_acquired")
        rejected = result.trace.filter(kind="lease_rejected")
        assert len(acquired) == 1
        assert len(rejected) == 1

    def test_holder_renewal_is_idempotent(self):
        sched = Scheduler()
        net = Network(sched)
        _lease_cluster(sched, net, duration=10)

        def client():
            node = Node(net, "c0").bind("c0")
            lease = QuorumLease(node, ["s0", "s1", "s2"], duration=10,
                                timeout=4, attempts=1)
            first = yield from lease.acquire()
            horizon1 = lease.expires_at
            yield from sched.sleep(4)
            second = yield from lease.acquire()   # renewal
            return (first, second, horizon1, lease.expires_at)

        sched.spawn(client, name="c0")
        result = sched.run(on_deadlock="return")
        first, second, h1, h2 = result.results["c0"]
        assert first and second
        assert h2 > h1

    def test_validity_expires_on_virtual_clock(self):
        sched = Scheduler()
        net = Network(sched)
        _lease_cluster(sched, net, duration=8)

        def client():
            node = Node(net, "c0").bind("c0")
            lease = QuorumLease(node, ["s0", "s1", "s2"], duration=8,
                                timeout=4, attempts=1)
            ok = yield from lease.acquire()
            assert ok and lease.valid
            yield from sched.sleep(20)
            still = lease.valid
            again = lease.valid   # expiry logged exactly once
            return (still, again)

        sched.spawn(client, name="c0")
        result = sched.run(on_deadlock="return")
        assert result.results["c0"] == (False, False)
        assert len(result.trace.filter(kind="lease_expired")) == 1

    def test_server_regrants_only_after_expiry(self):
        sched = Scheduler()
        net = Network(sched)
        _lease_cluster(sched, net, duration=10)

        def c0():
            node = Node(net, "c0").bind("c0")
            lease = QuorumLease(node, ["s0", "s1", "s2"], duration=10,
                                timeout=3, attempts=1)
            ok = yield from lease.acquire()
            return ok

        def c1():
            yield from sched.sleep(4)
            node = Node(net, "c1").bind("c1")
            lease = QuorumLease(node, ["s0", "s1", "s2"], duration=10,
                                timeout=3, attempts=1)
            denied = yield from lease.acquire()   # grants still unexpired
            yield from sched.sleep(12)            # past every expiry
            granted = yield from lease.acquire()
            return (denied, granted)

        _ = c0
        sched.spawn(c0, name="c0")
        sched.spawn(c1, name="c1")
        result = sched.run(on_deadlock="return")
        assert result.results["c0"] is True
        assert result.results["c1"] == (False, True)

    @pytest.mark.parametrize("holder_first", [True, False])
    def test_expiry_tick_tie_challenger_wins(self, holder_first):
        # Mirrors the timeout-vs-claim tie test in test_channels.py: the
        # grant interval is HALF-OPEN, [grant, grant+duration).  An
        # ACQUIRE handled at exactly the expiry tick starts a new session
        # (fresh fencing epoch) whichever process was spawned first, and
        # the old holder's client-side ``valid`` is already false at that
        # same tick — server and client agree there is no overlap.
        sched = Scheduler()
        net = Network(sched)
        _lease_cluster(sched, net, servers=("s0",), duration=10)

        def holder():
            node = Node(net, "c0").bind("c0")
            lease = QuorumLease(node, ["s0"], duration=10, timeout=4,
                                attempts=1)
            ok = yield from lease.acquire()
            assert ok
            yield from sched.sleep(lease.expires_at - sched.now)
            return (lease.token, lease.valid)

        def challenger():
            yield from sched.sleep(10)  # land exactly on the expiry tick
            node = Node(net, "c1").bind("c1")
            lease = QuorumLease(node, ["s0"], duration=10, timeout=4,
                                attempts=1)
            ok = yield from lease.acquire()
            return (ok, lease.token)

        order = [("c0", holder), ("c1", challenger)]
        if not holder_first:
            order.reverse()
        for name, body in order:
            sched.spawn(body, name=name)
        result = sched.run(on_deadlock="return")
        # Challenger wins with a strictly larger token; no rejection.
        assert result.results["c0"] == (1, False)
        assert result.results["c1"] == (True, 2)
        assert len(result.trace.filter(kind="lease_grant")) == 2
        assert len(result.trace.filter(kind="lease_rejected")) == 0

    @pytest.mark.parametrize("holder_first", [True, False])
    def test_one_tick_before_expiry_holder_still_wins(self, holder_first):
        # The control for the tie test above: one tick inside the
        # half-open interval the challenger is rejected.
        sched = Scheduler()
        net = Network(sched)
        _lease_cluster(sched, net, servers=("s0",), duration=10)

        def holder():
            node = Node(net, "c0").bind("c0")
            lease = QuorumLease(node, ["s0"], duration=10, timeout=4,
                                attempts=1)
            ok = yield from lease.acquire()
            return ok

        def challenger():
            yield from sched.sleep(9)
            node = Node(net, "c1").bind("c1")
            lease = QuorumLease(node, ["s0"], duration=10, timeout=4,
                                attempts=1)
            ok = yield from lease.acquire()
            return ok

        order = [("c0", holder), ("c1", challenger)]
        if not holder_first:
            order.reverse()
        for name, body in order:
            sched.spawn(body, name=name)
        result = sched.run(on_deadlock="return")
        assert result.results["c0"] is True
        assert result.results["c1"] is False
        assert len(result.trace.filter(kind="lease_rejected")) == 1
