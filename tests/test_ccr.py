"""Unit tests for conditional critical regions: exclusion, guard blocking,
automatic re-evaluation, FIFO-among-eligible fairness, and protocol errors."""

import pytest

from repro.mechanisms import SharedRegion
from repro.runtime import (
    DeadlockError,
    IllegalOperationError,
    ProcessFailed,
    Scheduler,
)


def test_region_mutual_exclusion():
    sched = Scheduler()
    cell = SharedRegion(sched, {"inside": 0, "peak": 0}, name="v")

    def body():
        yield from cell.enter()
        cell.vars["inside"] += 1
        cell.vars["peak"] = max(cell.vars["peak"], cell.vars["inside"])
        yield
        cell.vars["inside"] -= 1
        cell.leave()

    for i in range(4):
        sched.spawn(body, name="P{}".format(i))
    sched.run()
    assert cell.vars["peak"] == 1


def test_guard_blocks_until_true():
    sched = Scheduler()
    cell = SharedRegion(sched, {"count": 0}, name="v")
    order = []

    def consumer():
        yield from cell.enter(lambda v: v["count"] > 0)
        cell.vars["count"] -= 1
        order.append("consumed")
        cell.leave()

    def producer():
        yield
        yield from cell.enter()
        cell.vars["count"] += 1
        order.append("produced")
        cell.leave()  # automatic re-evaluation admits the consumer

    sched.spawn(consumer, name="c")
    sched.spawn(producer, name="p")
    sched.run()
    assert order == ["produced", "consumed"]


def test_no_explicit_signal_needed():
    """The defining CCR property: release re-evaluates every guard."""
    sched = Scheduler()
    cell = SharedRegion(sched, {"n": 0}, name="v")
    woken = []

    def waiter(threshold):
        def body():
            yield from cell.enter(lambda v: v["n"] >= threshold)
            woken.append(threshold)
            cell.leave()
        return body

    def incrementer():
        for __ in range(3):
            yield
            yield from cell.enter()
            cell.vars["n"] += 1
            cell.leave()

    sched.spawn(waiter(2), name="w2")
    sched.spawn(waiter(1), name="w1")
    sched.spawn(waiter(3), name="w3")
    sched.spawn(incrementer, name="inc")
    sched.run()
    assert woken == [1, 2, 3]


def test_fifo_among_eligible_waiters():
    sched = Scheduler()
    cell = SharedRegion(sched, {"open": False}, name="v")
    order = []

    def waiter(tag):
        def body():
            yield from cell.enter(lambda v: v["open"])
            order.append(tag)
            cell.leave()
        return body

    def opener():
        yield
        yield
        yield from cell.enter()
        cell.vars["open"] = True
        cell.leave()

    for tag in "abc":
        sched.spawn(waiter(tag), name=tag)
    sched.spawn(opener, name="o")
    sched.run()
    assert order == ["a", "b", "c"]


def test_entry_waits_behind_queued_waiters():
    """A newcomer with a true guard must not barge past queued waiters whose
    guards are also true (fairness)."""
    sched = Scheduler()
    cell = SharedRegion(sched, {}, name="v")
    order = []

    def holder():
        yield from cell.enter()
        yield
        yield
        cell.leave()

    def contender(tag):
        def body():
            for __ in range(ord(tag) - ord("a") + 1):
                yield
            yield from cell.enter()
            order.append(tag)
            cell.leave()
        return body

    sched.spawn(holder, name="h")
    sched.spawn(contender("a"), name="a")
    sched.spawn(contender("b"), name="b")
    sched.run()
    assert order == ["a", "b"]


def test_false_guard_forever_deadlocks():
    sched = Scheduler()
    cell = SharedRegion(sched, {}, name="v")

    def waiter():
        yield from cell.enter(lambda v: False)

    sched.spawn(waiter, name="w")
    with pytest.raises(DeadlockError):
        sched.run()


def test_leave_without_enter_raises():
    sched = Scheduler()
    cell = SharedRegion(sched, {}, name="v")

    def body():
        yield
        cell.leave()

    sched.spawn(body)
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, IllegalOperationError)


def test_reenter_raises():
    sched = Scheduler()
    cell = SharedRegion(sched, {}, name="v")

    def body():
        yield from cell.enter()
        yield from cell.enter()

    sched.spawn(body)
    with pytest.raises(ProcessFailed):
        sched.run()


def test_region_helper_runs_body_and_releases():
    sched = Scheduler()
    cell = SharedRegion(sched, {"x": 1}, name="v")
    results = []

    def body():
        value = yield from cell.region(None, lambda v: v["x"] + 10)
        results.append(value)

    sched.spawn(body)
    sched.run()
    assert results == [11]
    assert not cell.occupied


def test_region_helper_releases_on_exception():
    sched = Scheduler()
    cell = SharedRegion(sched, {}, name="v")

    def explode(v):
        raise ValueError("boom")

    def bad():
        yield from cell.region(None, explode)

    def good(out):
        yield
        yield from cell.enter()
        out.append(True)
        cell.leave()

    out = []
    sched.spawn(bad, name="bad")
    sched.spawn(good, out, name="good")
    sched.run(on_error="record")
    assert out == [True]


def test_waiting_count():
    sched = Scheduler()
    cell = SharedRegion(sched, {"go": False}, name="v")
    seen = []

    def waiter():
        yield from cell.enter(lambda v: v["go"])
        cell.leave()

    def checker():
        yield
        seen.append(cell.waiting)
        yield from cell.enter()
        cell.vars["go"] = True
        cell.leave()

    sched.spawn(waiter, name="w")
    sched.spawn(checker, name="c")
    sched.run()
    assert seen == [1]
