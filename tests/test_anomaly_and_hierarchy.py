"""Experiment-level tests: E5 (footnote-3 anomaly) and E7 (nested monitor
calls) reproduce the paper's claims exactly."""

from repro.problems.hierarchy import (
    run_layered_protected,
    run_nested_monitors,
    run_serializer_nested,
)
from repro.problems.readers_writers.anomaly import (
    footnote3_workload,
    render_report,
    run_footnote3_comparison,
)
from repro.problems.readers_writers.monitor_impl import MonitorReadersPriority
from repro.problems.readers_writers.pathexpr_impl import PathReadersPriority
from repro.verify import check_readers_priority_strict


# ----------------------------------------------------------------------
# E5: footnote 3
# ----------------------------------------------------------------------
def test_path_solution_violates_strict_readers_priority():
    result = footnote3_workload(lambda sched: PathReadersPriority(sched))
    violations = check_readers_priority_strict(result.trace, "db")
    assert violations, "the footnote-3 anomaly should reproduce"


def test_monitor_solution_clean_on_same_scenario():
    result = footnote3_workload(lambda sched: MonitorReadersPriority(sched))
    assert check_readers_priority_strict(result.trace, "db") == []


def test_second_writer_overtakes_reader_in_path_solution():
    result = footnote3_workload(lambda sched: PathReadersPriority(sched))
    starts = [
        ev.pname for ev in result.trace.projection("op_start")
        if ev.obj in ("db.read", "db.write")
    ]
    assert starts == ["W1", "W2", "R1"], starts


def test_reader_precedes_second_writer_in_monitor_solution():
    result = footnote3_workload(lambda sched: MonitorReadersPriority(sched))
    starts = [
        ev.pname for ev in result.trace.projection("op_start")
        if ev.obj in ("db.read", "db.write")
    ]
    assert starts == ["W1", "R1", "W2"], starts


def test_full_comparison_reproduces_paper_claim():
    report = run_footnote3_comparison(explore=True, max_runs=50)
    assert report.reproduced
    assert report.explorer_witness is not None
    text = render_report(report)
    assert "REPRODUCED" in text


def test_comparison_without_explorer():
    report = run_footnote3_comparison(explore=False)
    assert report.reproduced
    assert report.explorer_witness is None


# ----------------------------------------------------------------------
# E7: nested monitor calls
# ----------------------------------------------------------------------
def test_nested_monitors_deadlock():
    """§5.2: 'If the second monitor waits, a deadlock will result.'"""
    result = run_nested_monitors()
    assert result.deadlocked
    assert set(result.blocked) == {"consumer0", "producer"}


def test_nested_monitors_deadlock_scales_with_consumers():
    result = run_nested_monitors(consumers=3)
    assert result.deadlocked
    assert "producer" in result.blocked


def test_layered_protected_structure_avoids_deadlock():
    """§5.2: 'the monitor is released before the resource operation is
    invoked... Therefore, no deadlock will result.'"""
    result = run_layered_protected()
    assert not result.deadlocked
    assert result.results["received"] == [42]


def test_serializer_nesting_avoids_deadlock():
    """§5.2: join_crowd releases possession, so nesting is safe."""
    result = run_serializer_nested()
    assert not result.deadlocked
    assert result.results["received"] == [42]
