"""The exploration engine (repro.explore): equivalence pruning, the
exhausted fix, detectors, and witness minimization."""

import pytest

from repro.explore import (
    ConflictingAccessChecker,
    ExplorationEngine,
    LostWakeupChecker,
    RecordingPolicy,
    compose_checkers,
    get_target,
    minimize_witness,
)
from repro.runtime.policies import ScriptedPolicy
from repro.runtime.scheduler import Scheduler


def messages_of(result):
    return set(m for __, msgs in result.violations for m in msgs)


# ----------------------------------------------------------------------
# Pruning: soundness (same violations) and a real reduction, across the
# canonical problem battery.
# ----------------------------------------------------------------------
CANONICAL = [
    # (problem, mechanism): chosen so every space is exhaustible in-test.
    ("readers_priority", "monitor"),
    ("bounded_buffer", "monitor"),
    ("one_slot_buffer", "monitor"),
    ("fcfs_resource", "monitor"),
    ("alarm_clock", "semaphore"),
    ("staged_queue", "monitor"),
]


@pytest.mark.parametrize("problem,mechanism", CANONICAL)
def test_pruned_matches_naive_with_fewer_runs(problem, mechanism):
    target = get_target(problem, mechanism)
    naive = ExplorationEngine(
        target.runner(), max_runs=20000, max_depth=80
    ).explore(target.checker)
    pruned = ExplorationEngine(
        target.runner(), max_runs=20000, max_depth=80, prune=True
    ).explore(target.checker)

    assert naive.exhausted and pruned.exhausted
    # Strictly fewer schedules, not one distinct violation missed.
    assert pruned.runs < naive.runs, (problem, mechanism, naive.runs)
    assert messages_of(pruned) == messages_of(naive)
    assert pruned.states > 0
    assert pruned.pruned > 0


def test_pruned_search_finds_footnote3_anomaly():
    # The pruned search exhausts the Figure-1 program's space in a few
    # hundred schedules (the naive space is ~46k runs); any violation a
    # budget-capped naive search can find must already be in it.
    target = get_target("footnote3", "pathexpr")
    pruned = ExplorationEngine(
        target.runner(), max_runs=20000, max_depth=80, prune=True
    ).explore(target.checker)
    assert pruned.exhausted
    assert pruned.violations, "the footnote-3 anomaly must be reachable"
    assert all(
        "db.write" in m and "pending" in m for m in messages_of(pruned)
    )

    naive = ExplorationEngine(
        target.runner(), max_runs=3000, max_depth=80
    ).explore(target.checker)
    assert not naive.exhausted  # the naive space dwarfs this budget...
    assert pruned.runs < naive.runs  # ...which the pruned search beat
    assert messages_of(naive) <= messages_of(pruned)


def test_pruning_off_by_default_matches_legacy_explorer():
    from repro.verify.explorer import ScheduleExplorer

    target = get_target("readers_priority", "semaphore")
    legacy = ScheduleExplorer(target.runner(), max_runs=500).explore(
        target.checker
    )
    engine = ExplorationEngine(target.runner(), max_runs=500).explore(
        target.checker
    )
    assert (legacy.runs, legacy.exhausted, legacy.violations) == (
        engine.runs, engine.exhausted, engine.violations
    )
    assert legacy.pruned == 0 and legacy.states == 0


# ----------------------------------------------------------------------
# The exhausted off-by-one (satellite fix)
# ----------------------------------------------------------------------
def single_schedule_build(policy):
    # One process, no contention: branch_log is all ones, so the schedule
    # space is exactly one run and the frontier is empty after it.
    sched = Scheduler(policy=policy)

    def lone():
        yield
        yield

    sched.spawn(lone, name="L")
    return sched.run(on_deadlock="return", on_error="record")


def test_stop_at_first_on_last_schedule_reports_exhausted():
    # The legacy explorer unconditionally reported exhausted=False when
    # stop_at_first fired — even with nothing left to explore.
    engine = ExplorationEngine(single_schedule_build, max_runs=10)
    result = engine.explore(lambda run: ["always"], stop_at_first=True)
    assert result.runs == 1
    assert result.violations
    assert result.exhausted, "empty frontier at stop must mean exhausted"


def test_budget_exactly_equal_to_space_reports_exhausted():
    target = get_target("readers_priority", "monitor")
    space = ExplorationEngine(target.runner(), max_runs=20000).explore(
        target.checker
    )
    assert space.exhausted
    exact = ExplorationEngine(
        target.runner(), max_runs=space.runs
    ).explore(target.checker)
    assert exact.runs == space.runs
    assert exact.exhausted, "stopping exactly at max_runs with an empty " \
        "frontier is full coverage"
    short = ExplorationEngine(
        target.runner(), max_runs=space.runs - 1
    ).explore(target.checker)
    assert not short.exhausted


# ----------------------------------------------------------------------
# Detectors
# ----------------------------------------------------------------------
def unlocked_writers_build(policy):
    # Two writers touch "db" with no synchronization at all: op spans
    # overlap in most schedules.
    sched = Scheduler(policy=policy)

    def writer():
        sched.log("op_start", "db.write")
        yield
        sched.log("op_end", "db.write")

    sched.spawn(writer, name="W1")
    sched.spawn(writer, name="W2")
    return sched.run(on_deadlock="return", on_error="record")


def test_conflicting_access_checker_flags_unlocked_writes():
    races = ConflictingAccessChecker("db", writes=["write"])
    result = ExplorationEngine(unlocked_writers_build, max_runs=100).explore(
        races
    )
    assert result.violations
    assert all(
        m.startswith("conflicting access:") for m in messages_of(result)
    )


def lost_wakeup_build(policy):
    # The classic unprotected flag/park race: the waiter tests the flag,
    # loses the CPU, the waker sets the flag and signals into the void,
    # and only then does the waiter park — forever.
    sched = Scheduler(policy=policy)
    state = {"flag": False}

    def waiter():
        yield
        if not state["flag"]:
            yield from sched.park("waiting for flag", "cond flag")

    def waker():
        yield
        state["flag"] = True
        sched.log("signal", "cond flag")

    sched.spawn(waiter, name="waiter")
    sched.spawn(waker, name="waker")
    return sched.run(on_deadlock="return", on_error="record")


def test_lost_wakeup_checker_finds_missed_signal():
    detector = LostWakeupChecker()
    result = ExplorationEngine(lost_wakeup_build, max_runs=200).explore(
        detector
    )
    assert result.violations
    message = result.violations[0][1][0]
    assert message.startswith("lost wakeup: waiter")
    assert "cond flag" in message


def test_lost_wakeup_checker_ignores_real_deadlock():
    from repro.runtime.primitives import Semaphore

    def build(policy):
        # A genuine deadlock: each process holds one semaphore and wants
        # the other.  The wait-for graph explains every blocked process,
        # so no lost wakeup may be reported.
        sched = Scheduler(policy=policy)
        a = Semaphore(sched, initial=1, name="a")
        b = Semaphore(sched, initial=1, name="b")

        def one():
            yield from a.p()
            yield
            yield from b.p()

        def two():
            yield from b.p()
            yield
            yield from a.p()

        sched.spawn(one, name="one")
        sched.spawn(two, name="two")
        return sched.run(on_deadlock="return", on_error="record")

    detector = LostWakeupChecker()
    result = ExplorationEngine(build, max_runs=200).explore(detector)
    assert result.ok, messages_of(result)


def test_compose_checkers_concatenates():
    composed = compose_checkers(
        lambda run: ["first"], lambda run: [], lambda run: ["second"]
    )
    assert composed(None) == ["first", "second"]


def test_lost_wakeup_checker_in_target_battery_is_quiet():
    # Healthy mechanisms must not trip the detector anywhere in their space.
    target = get_target("one_slot_buffer", "semaphore")
    result = ExplorationEngine(
        target.runner(), max_runs=20000, prune=True
    ).explore(LostWakeupChecker())
    assert result.exhausted and result.ok


# ----------------------------------------------------------------------
# Minimization
# ----------------------------------------------------------------------
def test_minimizer_shrinks_footnote3_witness_to_local_minimum():
    target = get_target("footnote3", "monitor")
    found = ExplorationEngine(
        target.runner(), max_runs=5000, max_depth=60, prune=True
    ).explore(target.checker, stop_at_first=True)
    assert found.witness is not None

    shrunk = minimize_witness(target.runner(), target.checker, found.witness)
    assert shrunk.locally_minimal
    assert len(shrunk.minimized) <= len(shrunk.original)
    assert shrunk.messages, "the minimized schedule must still violate"
    assert shrunk.timeline.strip()

    def reproduces(decisions):
        run = target.build_and_run(ScriptedPolicy(list(decisions)))
        return bool(target.checker(run))

    assert reproduces(shrunk.minimized)
    # Local minimality, checked the hard way: no single deletion and no
    # single decrement still reproduces.
    dec = list(shrunk.minimized)
    for index in range(len(dec)):
        assert not reproduces(dec[:index] + dec[index + 1:])
        if dec[index] > 0:
            assert not reproduces(
                dec[:index] + [dec[index] - 1] + dec[index + 1:]
            )


def test_minimizer_rejects_non_reproducing_witness():
    target = get_target("bounded_buffer", "monitor")
    with pytest.raises(ValueError):
        minimize_witness(target.runner(), target.checker, (0, 0, 0))


def test_minimizer_trims_trailing_defaults_for_free():
    target = get_target("footnote3", "pathexpr")
    # The pathexpr anomaly fires on the all-default schedule, so any pure-
    # padding witness shrinks to the empty decision string in one test run.
    shrunk = minimize_witness(
        target.runner(), target.checker, (0,) * 12
    )
    assert shrunk.minimized == ()
    assert shrunk.tests == 1
    assert shrunk.locally_minimal


# ----------------------------------------------------------------------
# Fingerprinting plumbing
# ----------------------------------------------------------------------
def test_recording_policy_fingerprints_are_deterministic():
    target = get_target("bounded_buffer", "semaphore")
    first = RecordingPolicy([1, 0, 1])
    target.build_and_run(first)
    second = RecordingPolicy([1, 0, 1])
    target.build_and_run(second)
    assert first.fingerprints == second.fingerprints
    assert first.ready_pids == second.ready_pids
    assert len(first.fingerprints) == len(first.branch_log)


def test_fingerprint_distinguishes_decision_paths():
    target = get_target("bounded_buffer", "semaphore")
    default = RecordingPolicy([])
    target.build_and_run(default)
    deviated = RecordingPolicy([1])
    target.build_and_run(deviated)
    assert default.fingerprints != deviated.fingerprints
