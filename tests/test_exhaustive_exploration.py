"""Bounded model checking: exhaustively enumerate the schedule space of
small configurations and assert safety under EVERY interleaving — the
strongest guarantee the deterministic runtime enables.

Each system-under-test is rebuilt fresh per schedule (stateless replay).
Configurations are kept small (2–3 processes) so the space is exhausted
within the run budget; the ``exhausted`` flag is asserted so these tests
fail loudly if the space ever outgrows the budget instead of silently
checking a subset.
"""

import pytest

from repro.mechanisms import Monitor, Serializer, SharedRegion
from repro.mechanisms.pathexpr import PathResource
from repro.problems.readers_writers import (
    MonitorReadersPriority,
    PathReadersPriority,
    SerializerReadersPriority,
)
from repro.runtime import Mutex, Scheduler, Semaphore
from repro.verify import ScheduleExplorer, check_mutual_exclusion


def explore(build, check, max_runs=4000, max_depth=80):
    explorer = ScheduleExplorer(build, max_runs=max_runs, max_depth=max_depth)
    outcome = explorer.explore(check)
    assert outcome.exhausted, (
        "schedule space not exhausted ({} runs)".format(outcome.runs)
    )
    return outcome


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def test_mutex_exclusion_all_schedules():
    def build(policy):
        sched = Scheduler(policy=policy, preemptive=True)
        lock = Mutex(sched, "m")
        state = {"inside": 0, "peak": 0}

        def body():
            yield from lock.acquire()
            state["inside"] += 1
            state["peak"] = max(state["peak"], state["inside"])
            yield
            state["inside"] -= 1
            lock.release()

        for i in range(3):
            sched.spawn(body, name="P{}".format(i))
        result = sched.run()
        result.results["peak"] = state["peak"]
        return result

    outcome = explore(
        build,
        lambda run: ["overlap"] if run.results["peak"] > 1 else [],
    )
    assert outcome.ok
    assert outcome.runs > 1


def test_semaphore_bound_all_schedules():
    def build(policy):
        sched = Scheduler(policy=policy, preemptive=True)
        sem = Semaphore(sched, initial=2, name="s")
        state = {"inside": 0, "peak": 0}

        def body():
            yield from sem.p()
            state["inside"] += 1
            state["peak"] = max(state["peak"], state["inside"])
            yield
            state["inside"] -= 1
            sem.v()

        for i in range(3):
            sched.spawn(body, name="P{}".format(i))
        result = sched.run()
        result.results["peak"] = state["peak"]
        return result

    outcome = explore(
        build, lambda run: ["over"] if run.results["peak"] > 2 else []
    )
    assert outcome.ok


# ----------------------------------------------------------------------
# Mechanisms: critical-section exclusion under every interleaving
# ----------------------------------------------------------------------
def _cs_check(run):
    return ["overlap"] if run.results.get("peak", 0) > 1 else []


def test_monitor_exclusion_all_schedules():
    def build(policy):
        sched = Scheduler(policy=policy, preemptive=True)
        mon = Monitor(sched, "m")
        state = {"inside": 0, "peak": 0}

        def body():
            yield from mon.enter()
            state["inside"] += 1
            state["peak"] = max(state["peak"], state["inside"])
            yield
            state["inside"] -= 1
            mon.exit()

        for i in range(3):
            sched.spawn(body, name="P{}".format(i))
        result = sched.run()
        result.results["peak"] = state["peak"]
        return result

    assert explore(build, _cs_check).ok


def test_serializer_crowd_exclusion_all_schedules():
    def build(policy):
        sched = Scheduler(policy=policy, preemptive=True)
        ser = Serializer(sched, "s")
        q = ser.queue("q")
        users = ser.crowd("users")
        state = {"inside": 0, "peak": 0}

        def body():
            yield from ser.enter()
            yield from ser.enqueue(q, lambda: users.empty)
            yield from ser.join_crowd(users)
            state["inside"] += 1
            state["peak"] = max(state["peak"], state["inside"])
            yield
            state["inside"] -= 1
            yield from ser.leave_crowd(users)
            ser.exit()

        for i in range(2):
            sched.spawn(body, name="P{}".format(i))
        result = sched.run()
        result.results["peak"] = state["peak"]
        return result

    assert explore(build, _cs_check).ok


def test_ccr_exclusion_all_schedules():
    def build(policy):
        sched = Scheduler(policy=policy, preemptive=True)
        cell = SharedRegion(sched, {}, name="v")
        state = {"inside": 0, "peak": 0}

        def body():
            yield from cell.enter()
            state["inside"] += 1
            state["peak"] = max(state["peak"], state["inside"])
            yield
            state["inside"] -= 1
            cell.leave()

        for i in range(3):
            sched.spawn(body, name="P{}".format(i))
        result = sched.run()
        result.results["peak"] = state["peak"]
        return result

    assert explore(build, _cs_check).ok


def test_path_selection_exclusion_all_schedules():
    def build(policy):
        sched = Scheduler(policy=policy, preemptive=True)
        res = PathResource(sched, "path a , b end", name="r")
        state = {"inside": 0, "peak": 0}

        def tracked(res_):
            state["inside"] += 1
            state["peak"] = max(state["peak"], state["inside"])
            yield
            state["inside"] -= 1

        res.define("a", tracked)
        res.define("b", tracked)

        def call(op):
            def body():
                yield from res.invoke(op)
            return body

        sched.spawn(call("a"), name="A")
        sched.spawn(call("b"), name="B")
        result = sched.run()
        result.results["peak"] = state["peak"]
        return result

    assert explore(build, _cs_check).ok


# ----------------------------------------------------------------------
# Readers/writers exclusion for every interleaving of a tiny workload
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cls",
    [MonitorReadersPriority, SerializerReadersPriority, PathReadersPriority],
    ids=lambda c: c.mechanism,
)
def test_rw_exclusion_exhaustive_small(cls):
    def build(policy):
        sched = Scheduler(policy=policy)
        impl = cls(sched)

        def reader():
            yield from impl.read(work=1)

        def writer():
            yield from impl.write(1, work=1)

        sched.spawn(reader, name="R")
        sched.spawn(writer, name="W")
        return sched.run()

    def check(run):
        return check_mutual_exclusion(
            run.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
        )

    outcome = explore(build, check, max_runs=8000, max_depth=120)
    assert outcome.ok
    assert outcome.runs >= 2
