"""Tests for the harness observatory (DESIGN.md §15).

The load-bearing contract: telemetry is *passive*.  Attaching a
:class:`HarnessTelemetry` (or the null sink) to the serial engine or the
parallel frontier must leave the exploration result byte-identical —
including across worker counts — while the accounting it produces tiles
wall time, survives the exporters, and feeds the ``repro regress
--explore`` gate.
"""

import io
import json
import os

from repro.__main__ import main
from repro.explore import ExplorationEngine, explore_parallel, get_target
from repro.obs import (
    HarnessTelemetry,
    NullHarnessTelemetry,
    RunRecord,
    RunStore,
    chrome_trace,
    compare_records,
    explore_record,
    jsonl_lines,
    normalize_telemetry,
    parse_jsonl,
    self_profile,
)

TARGET = ("fcfs_resource", "monitor")
BUDGET = dict(max_runs=400, max_depth=48)


def _as_tuple(result):
    """A byte-comparable reduction of an ExplorationResult."""
    return (result.runs, result.pruned, result.states, result.exhausted,
            tuple((taken, tuple(msgs)) for taken, msgs in result.violations))


def _explore(**kwargs):
    target = get_target(*TARGET)
    merged = dict(BUDGET)
    merged.update(kwargs)
    return explore_parallel(target, prune=True, **merged)


# ----------------------------------------------------------------------
# Telemetry vs determinism
# ----------------------------------------------------------------------
def test_serial_results_identical_with_telemetry():
    base = _explore()
    observed = _explore(telemetry=HarnessTelemetry())
    assert _as_tuple(base) == _as_tuple(observed)


def test_parallel_results_identical_with_telemetry_and_workers():
    base = _explore(workers=1)
    for workers in (1, 2):
        observed = _explore(workers=workers, telemetry=HarnessTelemetry())
        assert _as_tuple(base) == _as_tuple(observed), (
            "telemetry changed results at workers={}".format(workers))


def test_null_sink_is_normalized_and_identical():
    base = _explore()
    nulled = _explore(telemetry=NullHarnessTelemetry())
    assert _as_tuple(base) == _as_tuple(nulled)
    engine = ExplorationEngine(lambda p: None,
                               telemetry=NullHarnessTelemetry())
    assert engine.telemetry is None
    assert normalize_telemetry(None) is None
    assert normalize_telemetry(NullHarnessTelemetry()) is None
    live = HarnessTelemetry()
    assert normalize_telemetry(live) is live


def test_engine_and_frontier_agree_under_telemetry():
    """The serial engine (via the target's runner) and the one-worker
    frontier attribute through the same run_one_timed and agree on the
    search outcome."""
    target = get_target(*TARGET)
    engine_tel = HarnessTelemetry()
    engine = ExplorationEngine(target.build_and_run, prune=True,
                               telemetry=engine_tel, **BUDGET)
    engine_result = engine.explore(target.checker)
    frontier_result = _explore(telemetry=HarnessTelemetry())
    assert engine_result.runs == frontier_result.runs
    assert engine_result.pruned == frontier_result.pruned
    assert engine_tel.runs == engine_result.runs
    assert engine_tel.coverage() > 0.5


# ----------------------------------------------------------------------
# Accounting shape
# ----------------------------------------------------------------------
def test_phase_accounting_tiles_and_counts():
    telemetry = HarnessTelemetry()
    result = _explore(telemetry=telemetry)
    assert telemetry.runs == result.runs
    assert telemetry.pruned == result.pruned
    assert 0.0 < telemetry.coverage() <= 1.0 + 1e-9
    assert telemetry.coverage() >= 0.8
    assert telemetry.schedules_per_sec() > 0
    assert 0.0 <= telemetry.pruning_ratio() < 1.0
    data = telemetry.to_dict()
    assert data["runs"] == result.runs
    assert set(data["phase_seconds"]) <= {
        "step", "fingerprint", "check", "record", "dispatch", "execute",
        "collect"}
    assert data["samples"], "counter samples must accumulate"


def test_parallel_worker_timeline_and_attribution():
    telemetry = HarnessTelemetry()
    _explore(workers=2, telemetry=telemetry)
    assert telemetry.worker_items, "worker timeline must be populated"
    assert telemetry.waves, "wave stats must be populated"
    assert len(telemetry.utilization()) == 2
    attribution = telemetry.attribution()
    cpus = os.cpu_count() or 1
    assert attribution["workers"] == 2
    assert attribution["cpu_count"] == cpus
    assert attribution["oversubscribed"] == (2 > cpus)
    assert attribution["pickle_bytes_in"] > 0
    assert attribution["pickle_bytes_out"] > 0
    assert attribution["amdahl_speedup_bound"] >= 1.0
    assert attribution["explanation"]
    for item in telemetry.worker_items:
        assert item.end >= item.start >= 0.0
        assert item.queue_wait >= 0.0


def test_watch_progress_lines_are_plain_text():
    stream = io.StringIO()
    telemetry = HarnessTelemetry(watch=stream, watch_interval=0.0)
    _explore(telemetry=telemetry)
    lines = stream.getvalue().splitlines()
    assert lines, "watch must emit progress lines"
    assert all("\r" not in line for line in lines), "non-tty-safe only"
    assert any("runs=" in line and "frontier=" in line for line in lines)
    assert lines[-1].startswith("[explore done")
    # ETA is budget-bound and disappears on the final line.
    assert "eta<=" in lines[0]


def test_eta_is_budget_bound():
    telemetry = HarnessTelemetry()
    telemetry.begin(max_runs=None)
    assert telemetry.eta_seconds() is None
    telemetry = HarnessTelemetry()
    _explore(telemetry=telemetry)
    # Finished search: no schedules left within budget.
    eta = telemetry.eta_seconds()
    assert eta is not None and eta >= 0.0


# ----------------------------------------------------------------------
# Exporters: harness track + counters
# ----------------------------------------------------------------------
def test_chrome_trace_harness_track():
    telemetry = HarnessTelemetry()
    _explore(workers=2, telemetry=telemetry)
    doc = chrome_trace([], harness=telemetry)
    events = doc["traceEvents"]
    names = {ev["args"]["name"] for ev in events if ev["ph"] == "M"
             and ev["name"] == "thread_name"}
    assert "harness" in names
    assert any(name.startswith("worker ") for name in names)
    counters = [ev for ev in events if ev["ph"] == "C"]
    counter_names = {ev["name"] for ev in counters}
    assert counter_names == {"schedules/sec", "frontier depth",
                             "pruning ratio"}
    lanes = [ev for ev in events
             if ev["ph"] == "X" and ev["cat"] == "harness"]
    assert len(lanes) == len(telemetry.worker_items)
    for ev in lanes:
        assert ev["dur"] >= 1
        assert ev["args"]["result_bytes"] > 0


def test_jsonl_counter_round_trip():
    telemetry = HarnessTelemetry()
    _explore(telemetry=telemetry)
    lines = list(jsonl_lines([], None, harness=telemetry))
    spans, events, counters = parse_jsonl(lines, with_counters=True)
    assert spans == [] and events == []
    assert counters, "counter records must round-trip"
    for sample in counters:
        assert set(sample) == {"t", "runs", "frontier", "pruned",
                               "schedules_per_sec", "pruning_ratio"}
        assert sample["t"] > 0
    # Back-compat: the 2-tuple API silently drops counter records.
    assert parse_jsonl(lines) == ([], [])


# ----------------------------------------------------------------------
# Run store + gate
# ----------------------------------------------------------------------
def test_explore_record_round_trip_and_gate_direction():
    telemetry = HarnessTelemetry()
    result = _explore(telemetry=telemetry)
    record = explore_record(TARGET[0], TARGET[1], result, telemetry)
    assert record.problem == "explore:fcfs_resource"
    assert record.steps == result.runs
    assert record.schedules_per_sec > 0
    assert record.phase_seconds
    clone = RunRecord.from_dict(record.to_dict())
    assert clone.to_dict() == record.to_dict()

    # Direction "-": a throughput *drop* regresses, a gain never does.
    slower = RunRecord.from_dict(record.to_dict())
    slower.schedules_per_sec = max(1, record.schedules_per_sec // 10)
    hits = compare_records(record, slower, threshold_pct=50.0)
    assert any(r.metric == "schedules_per_sec" for r in hits)
    faster = RunRecord.from_dict(record.to_dict())
    faster.schedules_per_sec = record.schedules_per_sec * 10
    assert compare_records(record, faster, threshold_pct=50.0) == []

    # Direction "+" still holds on the same record: more schedules to
    # cover the same space = pruning regressed.
    worse = RunRecord.from_dict(record.to_dict())
    worse.steps = record.steps * 2
    hits = compare_records(record, worse, threshold_pct=50.0)
    assert any(r.metric == "steps" for r in hits)


def test_regress_explore_cli_round_trip(tmp_path, capsys):
    baseline = tmp_path / "explore_baseline.json"
    common = ["--explore", "--explore-runs", "300", "--explore-depth", "40"]
    assert main(["regress", "--write-baseline", str(baseline)] + common) == 0
    capsys.readouterr()
    code = main(["regress", "--baseline", str(baseline),
                 "--threshold", "500", "--json"] + common)
    out = json.loads(capsys.readouterr().out)
    # The schedule count is deterministic, so with a generous wall-clock
    # threshold a clean re-run passes.
    assert code == 0
    assert out["compared"] == ["explore:fcfs_resource/monitor"]
    assert out["regressions"] == []


def test_regress_explore_gate_trips_on_steps(tmp_path, capsys):
    """Shrinking the baseline's schedule count makes the fresh run look
    like a pruning regression — the deterministic side of the gate."""
    baseline = tmp_path / "explore_baseline.json"
    common = ["--explore", "--explore-runs", "300", "--explore-depth", "40"]
    assert main(["regress", "--write-baseline", str(baseline)] + common) == 0
    data = json.loads(baseline.read_text())
    # Shrink far enough that the growth clears even the generous
    # wall-clock threshold this test uses for schedules_per_sec.
    data[0]["steps"] = max(1, data[0]["steps"] // 10)
    baseline.write_text(json.dumps(data))
    capsys.readouterr()
    code = main(["regress", "--baseline", str(baseline),
                 "--threshold", "500", "--json"] + common)
    out = json.loads(capsys.readouterr().out)
    assert code == 1
    assert any(r["metric"] == "steps" for r in out["regressions"])


# ----------------------------------------------------------------------
# CLI: explore --watch/--record/--export, profile --self
# ----------------------------------------------------------------------
def test_explore_cli_watch_record_export(tmp_path, capsys):
    store = tmp_path / "runs"
    out = tmp_path / "harness.jsonl"
    code = main(["explore", TARGET[0], TARGET[1], "--fast", "--watch",
                 "--record", "--store", str(store),
                 "--export", "jsonl", "--out", str(out)])
    assert code == 0
    captured = capsys.readouterr()
    assert "harness telemetry:" in captured.out
    assert "[explore" in captured.err, "--watch writes to stderr"
    record = RunStore(str(store)).load("explore:" + TARGET[0], TARGET[1])
    assert record is not None and record.schedules_per_sec is not None
    __, __, counters = parse_jsonl(
        out.read_text().splitlines(), with_counters=True)
    assert counters


def test_explore_cli_chrome_export(tmp_path, capsys):
    out = tmp_path / "harness_trace.json"
    code = main(["explore", TARGET[0], TARGET[1], "--fast", "--workers",
                 "2", "--export", "chrome", "--out", str(out), "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["telemetry"]["runs"] == payload["runs"]
    doc = json.loads(out.read_text())
    assert any(ev.get("ph") == "C" for ev in doc["traceEvents"])


def test_explore_cli_self_profile_json(capsys):
    code = main(["explore", TARGET[0], TARGET[1], "--fast",
                 "--self-profile", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["self_profile"]["hotspots"]
    assert payload["telemetry"]["coverage"] > 0.5


def test_profile_self_cli(capsys):
    code = main(["profile", "--self", "--self-runs", "150", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["runs"] > 0
    assert payload["self_profile"]["hotspots"]
    capsys.readouterr()
    assert main(["profile", "--self", "--self-runs", "150"]) == 0
    text = capsys.readouterr().out
    assert "self-profile" in text and "harness telemetry:" in text


def test_profile_without_args_errors(capsys):
    assert main(["profile"]) == 2
    assert "required" in capsys.readouterr().err


def test_self_profile_returns_value_and_ranked_hotspots():
    report = self_profile(lambda: sum(i * i for i in range(200_000)), top=5)
    assert report.value == sum(i * i for i in range(200_000))
    assert report.seconds > 0
    tottimes = [spot.tottime for spot in report.hotspots]
    assert tottimes == sorted(tottimes, reverse=True)
    assert len(report.hotspots) <= 5
