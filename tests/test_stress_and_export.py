"""Large randomized stress runs across every mechanism, plus trace export."""

import json

import pytest

from repro.problems.readers_writers import run_workload, staggered_plan
from repro.problems.registry import solutions_for
from repro.runtime import RandomPolicy, Scheduler
from repro.verify import check_mutual_exclusion, unserved_requests

RW_MECHANISMS = [
    e.mechanism for e in solutions_for(problem="readers_priority")
]


@pytest.mark.parametrize("mechanism", RW_MECHANISMS)
def test_stress_readers_priority(mechanism):
    """A 40-operation randomized workload under a randomized schedule:
    exclusion safety holds, nothing deadlocks, everything is served."""
    entry = solutions_for(problem="readers_priority", mechanism=mechanism)[0]
    plan = staggered_plan(seed=99, steps=40)
    result = run_workload(entry.factory, plan, policy=RandomPolicy(31))
    assert not result.deadlocked, result.blocked
    assert check_mutual_exclusion(
        result.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
    ) == []
    assert unserved_requests(result.trace, "db", ["read", "write"]) == []
    # Every planned operation ran.
    starts = result.trace.filter(kind="op_start")
    db_starts = [ev for ev in starts if ev.obj in ("db.read", "db.write")]
    assert len(db_starts) == 40


def test_stress_many_processes_one_mutex():
    """200 processes through one monitor: no overlap, everyone served."""
    from repro.mechanisms import Monitor

    sched = Scheduler(policy=RandomPolicy(5))
    mon = Monitor(sched, "m")
    state = {"inside": 0, "peak": 0, "served": 0}

    def body():
        yield from mon.enter()
        state["inside"] += 1
        state["peak"] = max(state["peak"], state["inside"])
        yield
        state["inside"] -= 1
        state["served"] += 1
        mon.exit()

    for i in range(200):
        sched.spawn(body, name="P{}".format(i))
    sched.run()
    assert state["peak"] == 1
    assert state["served"] == 200


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------
def test_trace_to_dicts_round_trip():
    entry = solutions_for(problem="readers_priority", mechanism="monitor")[0]
    result = run_workload(entry.factory, staggered_plan(1, steps=4))
    dicts = result.trace.to_dicts()
    assert len(dicts) == len(result.trace)
    assert dicts[0]["kind"] == "spawn"
    assert {"seq", "time", "pid", "pname", "kind", "obj", "detail"} <= set(
        dicts[0]
    )


def test_trace_to_json_parses():
    entry = solutions_for(problem="readers_priority", mechanism="monitor")[0]
    result = run_workload(entry.factory, staggered_plan(2, steps=4))
    parsed = json.loads(result.trace.to_json())
    assert isinstance(parsed, list)
    assert parsed[0]["seq"] == 0


def test_trace_json_handles_unserializable_detail():
    from repro.runtime.trace import Event, Trace

    trace = Trace()
    trace.append(Event(0, 0, 1, "P", "custom", "x", detail=object()))
    parsed = json.loads(trace.to_json())
    assert "object" in parsed[0]["detail"]
