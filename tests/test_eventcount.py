"""Unit tests for eventcounts and sequencers: counting, await thresholds,
wake ordering, ticket totality, and the canonical usage patterns."""

from repro.mechanisms import EventCount, Sequencer
from repro.runtime import DeadlockError, RandomPolicy, Scheduler

import pytest


def test_read_and_advance():
    sched = Scheduler()
    ec = EventCount(sched, "e")

    def body():
        assert ec.read() == 0
        ec.advance()
        ec.advance()
        assert ec.read() == 2
        yield

    sched.spawn(body)
    sched.run()


def test_await_already_satisfied_is_immediate():
    sched = Scheduler()
    ec = EventCount(sched, "e")
    done = []

    def body():
        ec.advance()
        yield from ec.await_(1)
        done.append(True)

    sched.spawn(body)
    sched.run()
    assert done == [True]


def test_await_blocks_until_threshold():
    sched = Scheduler()
    ec = EventCount(sched, "e")
    order = []

    def waiter():
        yield from ec.await_(3)
        order.append("woken")

    def advancer():
        for i in range(3):
            yield
            order.append("advance")
            ec.advance()

    sched.spawn(waiter, name="w")
    sched.spawn(advancer, name="a")
    sched.run()
    assert order == ["advance", "advance", "advance", "woken"]


def test_waiters_wake_in_threshold_order():
    sched = Scheduler()
    ec = EventCount(sched, "e")
    woken = []

    def waiter(threshold):
        def body():
            yield from ec.await_(threshold)
            woken.append(threshold)
        return body

    def advancer():
        for __ in range(3):
            yield
            ec.advance()

    sched.spawn(waiter(3), name="w3")
    sched.spawn(waiter(1), name="w1")
    sched.spawn(waiter(2), name="w2")
    sched.spawn(advancer, name="a")
    sched.run()
    assert woken == [1, 2, 3]


def test_single_advance_wakes_all_reached_thresholds():
    sched = Scheduler()
    ec = EventCount(sched, "e")
    woken = []

    def waiter(tag):
        def body():
            yield from ec.await_(1)
            woken.append(tag)
        return body

    def advancer():
        yield
        yield
        ec.advance()

    sched.spawn(waiter("a"), name="a")
    sched.spawn(waiter("b"), name="b")
    sched.spawn(advancer, name="adv")
    sched.run()
    assert sorted(woken) == ["a", "b"]


def test_unreached_threshold_deadlocks():
    sched = Scheduler()
    ec = EventCount(sched, "e")

    def waiter():
        yield from ec.await_(5)

    sched.spawn(waiter, name="w")
    with pytest.raises(DeadlockError):
        sched.run()


def test_waiters_count():
    sched = Scheduler()
    ec = EventCount(sched, "e")
    seen = []

    def waiter():
        yield from ec.await_(9)

    def checker():
        yield
        seen.append(ec.waiters)
        for __ in range(9):
            ec.advance()
        yield

    sched.spawn(waiter, name="w")
    sched.spawn(checker, name="c")
    sched.run()
    assert seen == [1]


def test_sequencer_issues_increasing_tickets():
    sched = Scheduler()
    seq = Sequencer(sched, "s")
    tickets = []

    def body():
        tickets.append(seq.ticket())
        tickets.append(seq.ticket())
        yield

    sched.spawn(body)
    sched.run()
    assert tickets == [0, 1]
    assert seq.issued == 2


def test_ticket_machine_mutual_exclusion():
    """The canonical pattern: ticket + await = FCFS mutual exclusion."""
    sched = Scheduler(policy=RandomPolicy(3))
    seq = Sequencer(sched, "s")
    ec = EventCount(sched, "e")
    state = {"inside": 0, "peak": 0}
    service = []

    def body(tag):
        def run():
            ticket = seq.ticket()
            yield from ec.await_(ticket)
            state["inside"] += 1
            state["peak"] = max(state["peak"], state["inside"])
            service.append((ticket, tag))
            yield
            state["inside"] -= 1
            ec.advance()
        return run

    for tag in "abcd":
        sched.spawn(body(tag), name=tag)
    sched.run()
    assert state["peak"] == 1
    assert [t for t, __ in service] == sorted(t for t, __ in service)


def test_reed_kanodia_bounded_buffer_pattern():
    """The Reed–Kanodia producer/consumer over two eventcounts."""
    sched = Scheduler()
    capacity = 2
    ec_in = EventCount(sched, "in")
    ec_out = EventCount(sched, "out")
    slots = [None] * capacity
    got = []
    total = 6

    def producer():
        for i in range(1, total + 1):
            yield from ec_out.await_(i - capacity)
            slots[(i - 1) % capacity] = i * 10
            ec_in.advance()

    def consumer():
        for i in range(1, total + 1):
            yield from ec_in.await_(i)
            got.append(slots[(i - 1) % capacity])
            ec_out.advance()

    sched.spawn(producer, name="P")
    sched.spawn(consumer, name="C")
    sched.run()
    assert got == [10, 20, 30, 40, 50, 60]
