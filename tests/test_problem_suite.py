"""Integration tests over the full problem suite: every registered solution
passes its oracle battery, plus problem-specific behavioural checks."""

import pytest

from repro.problems import alarm_clock, bounded_buffer, disk_scheduler
from repro.problems import fcfs_resource, one_slot_buffer, staged_queue
from repro.problems.registry import (
    REGISTRY,
    all_solutions,
    build_evaluator,
    get_solution,
    solutions_for,
)
from repro.resources import fcfs_seek_distance
from repro.runtime import RandomPolicy, Scheduler


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_covers_expected_grid():
    problems = {entry.problem for entry in all_solutions()}
    assert problems == {
        "bounded_buffer", "fcfs_resource", "readers_priority",
        "writers_priority", "rw_fcfs", "disk_scheduler", "alarm_clock",
        "one_slot_buffer", "staged_queue",
    }
    assert len(all_solutions()) == 55


def test_registry_lookup():
    entry = get_solution("readers_priority", "pathexpr")
    assert entry.description.mechanism == "pathexpr"
    with pytest.raises(KeyError):
        get_solution("readers_priority", "quantum")


def test_solutions_for_filters():
    monitors = solutions_for(mechanism="monitor")
    assert all(e.mechanism == "monitor" for e in monitors)
    rw = solutions_for(problem="readers_priority")
    assert {e.mechanism for e in rw} == {
        "semaphore", "monitor", "serializer", "pathexpr", "csp", "ccr",
    }


def test_all_descriptions_validate():
    for entry in all_solutions():
        assert entry.description.validate() == [], entry.key


@pytest.mark.parametrize(
    "entry", all_solutions(), ids=lambda e: "{}-{}".format(*e.key)
)
def test_every_registered_solution_verifies(entry):
    """The headline integration test: every registered solution passes its
    full oracle battery."""
    assert entry.verifier() == []


def test_evaluator_end_to_end():
    report = build_evaluator().evaluate(run_verifiers=False)
    assert len(report.entries) == 55 + 4  # registry + infeasibility records
    text = report.render()
    assert "pathexpr" in text and "serializer" in text
    assert "csp" in text and "ccr" in text


# ----------------------------------------------------------------------
# Bounded buffer specifics
# ----------------------------------------------------------------------
def test_bounded_buffer_capacity_respected():
    """Producers stall at capacity: with no consumer, exactly `capacity`
    puts complete."""
    for cls in (
        bounded_buffer.SemaphoreBoundedBuffer,
        bounded_buffer.MonitorBoundedBuffer,
        bounded_buffer.SerializerBoundedBuffer,
        bounded_buffer.OpenPathBoundedBuffer,
    ):
        sched = Scheduler()
        impl = cls(sched, capacity=3)

        def producer(i):
            def body():
                yield from impl.put(i)
            return body

        for i in range(6):
            sched.spawn(producer(i), name="p{}".format(i))
        result = sched.run(on_deadlock="return")
        assert impl.buffer.size == 3, cls.__name__
        assert len(result.blocked) == 3, cls.__name__


def test_bounded_buffer_fifo_data_order():
    sched = Scheduler()
    impl = bounded_buffer.MonitorBoundedBuffer(sched, capacity=2)
    got = []

    def producer():
        for i in range(5):
            yield from impl.put(i)

    def consumer():
        for __ in range(5):
            value = yield from impl.get()
            got.append(value)

    sched.spawn(producer, name="p")
    sched.spawn(consumer, name="c")
    sched.run()
    assert got == [0, 1, 2, 3, 4]


# ----------------------------------------------------------------------
# Disk scheduler specifics
# ----------------------------------------------------------------------
def test_scan_beats_fcfs_on_seek_distance():
    """The quantitative shape: elevator total seek <= FCFS total seek on a
    contended batch (E10 context)."""
    plan = [(0, t) for t in (95, 12, 143, 37, 180, 55, 8, 120)]
    __, scan_impl = disk_scheduler.run_requests(
        lambda s: disk_scheduler.MonitorDiskScheduler(s), plan
    )
    __, fcfs_impl = disk_scheduler.run_requests(
        lambda s: disk_scheduler.SemaphoreDiskFcfs(s), plan
    )
    assert scan_impl.disk.total_seek < fcfs_impl.disk.total_seek


def test_all_disk_schedulers_agree_on_serve_order():
    plan = [(0, t) for t in (60, 20, 90, 40)]
    orders = []
    for cls in (
        disk_scheduler.MonitorDiskScheduler,
        disk_scheduler.SerializerDiskScheduler,
        disk_scheduler.OpenPathDiskScheduler,
    ):
        __, impl = disk_scheduler.run_requests(lambda s, c=cls: c(s), plan)
        orders.append(impl.disk.served)
    assert orders[0] == orders[1] == orders[2] == [60, 90, 40, 20]


def test_fcfs_seek_distance_helper_matches_baseline():
    plan = [(0, t) for t in (60, 20, 90)]
    __, impl = disk_scheduler.run_requests(
        lambda s: disk_scheduler.SemaphoreDiskFcfs(s), plan
    )
    assert impl.disk.total_seek == fcfs_seek_distance(0, [60, 20, 90])


# ----------------------------------------------------------------------
# Alarm clock specifics
# ----------------------------------------------------------------------
def test_alarm_wake_order_is_deadline_order():
    for cls in (
        alarm_clock.MonitorAlarmClock,
        alarm_clock.SerializerAlarmClock,
        alarm_clock.OpenPathAlarmClock,
        alarm_clock.SemaphoreAlarmClock,
    ):
        __, wakes = alarm_clock.run_sleepers(
            lambda s, c=cls: c(s), delays=(7, 3, 9, 1)
        )
        assert wakes == [1, 3, 7, 9], cls.__name__


def test_alarm_zero_delay_is_immediate():
    sched = Scheduler()
    impl = alarm_clock.MonitorAlarmClock(sched)
    woke = []

    def sleeper():
        yield from impl.wakeme(0)
        woke.append(sched.now)

    sched.spawn(sleeper, name="s")
    sched.run()
    assert woke == [0]


# ----------------------------------------------------------------------
# Staged queue specifics
# ----------------------------------------------------------------------
def test_staged_queue_naive_single_queue_fails():
    """The E8 contrast: discarding type information loses class priority."""
    verifier = staged_queue.make_verifier(
        lambda s: staged_queue.MonitorSingleQueue(s)
    )
    assert verifier() != []


def test_staged_queue_service_order():
    result = staged_queue.run_classes(
        lambda s: staged_queue.MonitorStagedQueue(s)
    )
    starts = [
        ev.obj for ev in result.trace.projection("op_start")
        if ev.obj.startswith("res.acquire")
    ]
    # First in (a B) is served, then all queued A's, then remaining B's.
    assert starts[0] == "res.acquire_b"
    assert starts[1:5] == ["res.acquire_a"] * 4
    assert starts[5:] == ["res.acquire_b"] * 3


# ----------------------------------------------------------------------
# FCFS resource under randomized schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_fcfs_resource_random_schedules_safe(seed):
    """Occupancy safety must hold under any schedule (FCFS ordering is only
    asserted under staggered arrivals, where it is well-defined)."""
    from repro.verify import check_single_occupancy

    result = fcfs_resource.run_contenders(
        lambda s: fcfs_resource.MonitorFcfsResource(s),
        policy=RandomPolicy(seed),
        stagger=False,
    )
    assert check_single_occupancy(result.trace, "res", ["use"]) == []


# ----------------------------------------------------------------------
# One-slot buffer value integrity
# ----------------------------------------------------------------------
def test_one_slot_values_conserved():
    __, consumed = one_slot_buffer.run_ping_pong(
        lambda s: one_slot_buffer.PathOneSlotBuffer(s)
    )
    assert len(consumed) == 6
    assert len(set(consumed)) == 6  # no duplicates, no losses
