"""Tests for the synthesis subsystem: grammar, CEGIS loop, oracle cache,
and the footnote-3 auto-repair.

The expensive full pipeline (``synthesize`` / ``repair_footnote3``) runs
once per module via fixtures; everything else asserts against those
shared outcomes or uses single scheduled runs.
"""

import os

import pytest

from repro.runtime.policies import ScriptedPolicy
from repro.synth import (
    Candidate,
    OracleCache,
    SynthConfig,
    cache_key,
    enumerate_candidates,
    enumerate_path_programs,
    reads_overlap,
    repair_footnote3,
    replay_verdict,
    run_candidate_footnote3,
    run_candidate_two_readers,
    synthesize,
)
from repro.synth.cache import CORRECT, VIOLATION
from repro.verify import SYNTH_RW_BATTERY, battery


def _config(tmp_root, fp_cache=False):
    config = SynthConfig.fast()
    config.cache_root = os.path.join(str(tmp_root), "oracle")
    config.use_fp_cache = fp_cache
    return config


@pytest.fixture(scope="module")
def cache_root(tmp_path_factory):
    return tmp_path_factory.mktemp("synth_cache")


@pytest.fixture(scope="module")
def outcome(cache_root):
    """One cold synthesis run, shared by every assertion below."""
    return synthesize(_config(cache_root))


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
def test_path_programs_deterministic_and_sized():
    first = enumerate_path_programs()
    second = enumerate_path_programs()
    assert [p.text for p in first] == [p.text for p in second]
    assert [p.size for p in first] == sorted(p.size for p in first)
    # The paper's own shapes are in the space: the exclusion selection and
    # the unconstrained two-path program.
    texts = [p.text for p in first]
    assert any("path { read } , write end" in t for t in texts)
    assert any("path read end" in t and "path write end" in t
               for t in texts)


def test_candidates_smallest_first_and_deterministic():
    a = list(enumerate_candidates(max_size=6))
    b = list(enumerate_candidates(max_size=6))
    assert a == b
    sizes = [c.size for c in a]
    assert sizes == sorted(sizes)
    assert all(c.size <= 6 for c in a)
    # Distinct candidates get distinct fingerprints (cache-key safety).
    prints = [c.fingerprint for c in a]
    assert len(set(prints)) == len(prints)


def test_serializer_family_gating():
    full = list(enumerate_candidates(max_size=6, include_serializer=True))
    fast = list(enumerate_candidates(max_size=6, include_serializer=False))
    assert len(fast) < len(full)
    assert any(c.family == "serializer" for c in full)
    assert not any(c.family == "serializer" for c in fast)


# ----------------------------------------------------------------------
# The CEGIS loop
# ----------------------------------------------------------------------
def test_synthesize_finds_minimal_correct_candidate(outcome):
    assert outcome.ok
    winner = outcome.winner
    # Smallest-first enumeration: nothing strictly smaller can be correct,
    # and the known-minimal repair is the burst-selection path plus a
    # single write guard (size 5).
    assert winner.size == 5
    assert "path { read } , write end" in winner.paths_text
    assert winner.write_guard == ("active(write)==0",)
    assert outcome.verification["status"] == CORRECT
    assert outcome.verification["runs"] > 0


def test_counterexamples_prune_without_exploration(outcome):
    stats = outcome.stats
    assert stats.explored > 0
    # The E20 acceptance bar: banked counterexamples reject at least 2x
    # as many candidates as full explorations are paid for.
    assert stats.cex_rejected >= 2 * stats.explored
    assert stats.explorations_skipped == \
        stats.cache_hits + stats.cex_rejected
    assert stats.bank_size >= 1


def test_banked_counterexample_rejects_known_bad_candidate(outcome):
    """A banked witness rejects the broken pure-selection program in ONE
    scheduled run — no exploration."""
    broken = Candidate(paths_text="path read end\npath write end\n",
                       read_guard=(), write_guard=(), path_size=2)
    check = battery(*SYNTH_RW_BATTERY)
    rejected = False
    for cex in outcome.bank:
        run = run_candidate_footnote3(
            broken, ScriptedPolicy(list(cex.decisions)))
        if check(run):
            rejected = True
            break
    assert rejected, "no banked counterexample rejects the broken program"


def test_winner_admits_concurrent_readers(outcome):
    witness = outcome.verification["overlap_witness"]
    run = run_candidate_two_readers(
        outcome.winner, ScriptedPolicy([int(d) for d in witness]))
    assert reads_overlap(run)


# ----------------------------------------------------------------------
# The replayable oracle cache
# ----------------------------------------------------------------------
def test_cache_resume_skips_all_exploration(outcome, cache_root):
    resumed = synthesize(_config(cache_root))
    assert resumed.winner == outcome.winner
    assert resumed.stats.explored == 0
    assert resumed.stats.cex_replays == 0
    assert resumed.stats.cache_hits == resumed.stats.candidates_tried


def test_cached_violations_replay_deterministically(outcome, cache_root):
    cache = OracleCache(os.path.join(str(cache_root), "oracle"))
    entries = [e for e in cache.entries()
               if e["verdict"].get("status") == VIOLATION]
    assert entries, "synthesis must have cached violation verdicts"
    for entry in entries[:10]:
        data = entry["candidate"]
        candidate = Candidate(
            paths_text=data["paths"],
            read_guard=tuple(data["read_guard"]),
            write_guard=tuple(data["write_guard"]),
            path_size=(data["size"] - len(data["read_guard"])
                       - len(data["write_guard"])),
        )
        # Twice, to pin determinism — same witness, same messages.
        first = replay_verdict(candidate, entry["verdict"])
        second = replay_verdict(candidate, entry["verdict"])
        assert first and first == second


def test_cache_key_covers_all_verdict_inputs():
    a = Candidate(paths_text="path read end\n", read_guard=(),
                  write_guard=(), path_size=1)
    b = Candidate(paths_text="path read end\n", read_guard=(),
                  write_guard=("active(write)==0",), path_size=1)
    assert cache_key(a, "w", ("o",)) != cache_key(b, "w", ("o",))
    assert cache_key(a, "w", ("o",)) != cache_key(a, "w2", ("o",))
    assert cache_key(a, "w", ("o",)) != cache_key(a, "w", ("o", "p"))
    assert cache_key(a, "w", ("o",)) == cache_key(a, "w", ("o",))


def test_cache_miss_on_empty_store(tmp_path):
    cache = OracleCache(str(tmp_path / "nowhere"))
    probe = Candidate(paths_text="path read end\n", read_guard=(),
                      write_guard=(), path_size=1)
    assert cache.lookup(probe, "w", ("o",)) is None
    assert cache.entries() == []


# ----------------------------------------------------------------------
# The flagship repair
# ----------------------------------------------------------------------
def test_repair_footnote3_end_to_end(tmp_path):
    report = repair_footnote3(_config(tmp_path))
    # Diagnosis: the verbatim Figure-1 program violates, with a causal
    # explanation of the overtake.
    assert any("pending" in m for m in report.witness.messages)
    assert report.witness.causal
    assert "W2" in "\n".join(report.witness.causal)
    # Repair: a correct minimal candidate, machine-checked.
    assert report.ok
    assert report.outcome.winner.size == 5
    rendered = report.render()
    assert "synthesized repair" in rendered
    assert "path { read } , write end" in rendered
    payload = report.to_dict()
    assert payload["repair"]["found"] is True
    assert payload["broken"]["messages"]


def test_synth_cli_fast_json(tmp_path, capsys, monkeypatch):
    from repro.__main__ import main

    monkeypatch.chdir(tmp_path)
    rc = main(["synth", "--fast", "--json", "--no-fp-cache",
               "--cache-root", str(tmp_path / "oracle")])
    assert rc == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["repair"]["found"] is True
    stats = payload["stats"]
    assert stats["cex_rejected"] >= 2 * stats["explored"]
