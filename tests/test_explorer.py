"""Unit tests for the schedule explorer: enumeration, violation hunting,
budgets, and witness replay."""

from repro.runtime import Mutex, Scheduler, ScriptedPolicy
from repro.verify import ScheduleExplorer


def two_increments_system(policy):
    """A racy read-modify-write counter: some schedules lose an update."""
    sched = Scheduler(policy=policy)
    state = {"n": 0}

    def incrementer():
        observed = state["n"]
        yield  # the race window
        state["n"] = observed + 1

    sched.spawn(incrementer, name="A")
    sched.spawn(incrementer, name="B")
    result = sched.run()
    result.results["final"] = state["n"]
    return result


def test_explorer_finds_lost_update():
    explorer = ScheduleExplorer(two_increments_system, max_runs=100)
    outcome = explorer.explore(
        lambda run: ["lost update"] if run.results["final"] != 2 else []
    )
    assert not outcome.ok
    assert outcome.witness is not None


def test_explorer_exhausts_small_space():
    explorer = ScheduleExplorer(two_increments_system, max_runs=100)
    outcome = explorer.explore(lambda run: [])
    assert outcome.exhausted
    assert outcome.runs >= 2  # at least both orderings


def test_explorer_respects_run_budget():
    explorer = ScheduleExplorer(two_increments_system, max_runs=1)
    outcome = explorer.explore(lambda run: [])
    assert outcome.runs == 1
    assert not outcome.exhausted


def test_witness_replays_deterministically():
    explorer = ScheduleExplorer(two_increments_system, max_runs=100)
    witness = explorer.find_schedule(
        lambda run: ["x"] if run.results["final"] != 2 else []
    )
    assert witness is not None
    replay = two_increments_system(ScriptedPolicy(list(witness)))
    assert replay.results["final"] != 2


def test_explorer_ok_when_property_always_holds():
    def safe_system(policy):
        sched = Scheduler(policy=policy)
        lock = Mutex(sched, "m")
        state = {"n": 0}

        def incrementer():
            yield from lock.acquire()
            observed = state["n"]
            yield
            state["n"] = observed + 1
            lock.release()

        sched.spawn(incrementer, name="A")
        sched.spawn(incrementer, name="B")
        result = sched.run()
        result.results["final"] = state["n"]
        return result

    explorer = ScheduleExplorer(safe_system, max_runs=500)
    outcome = explorer.explore(
        lambda run: ["lost"] if run.results["final"] != 2 else []
    )
    assert outcome.ok
    assert outcome.exhausted


def test_stop_at_first_short_circuits():
    explorer = ScheduleExplorer(two_increments_system, max_runs=100)
    outcome = explorer.explore(
        lambda run: ["bad"] if run.results["final"] != 2 else [],
        stop_at_first=True,
    )
    assert len(outcome.violations) == 1


def test_max_depth_limits_branching():
    explorer = ScheduleExplorer(two_increments_system, max_runs=1000, max_depth=1)
    outcome = explorer.explore(lambda run: [])
    # With depth 1 only the first decision branches.
    assert outcome.runs <= 3
