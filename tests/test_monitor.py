"""Unit tests for Hoare monitors: possession, entry FIFO, condition waits,
Hoare vs Mesa signalling, priority wait, urgent stack, and protocol errors."""

import pytest

from repro.mechanisms import Condition, Monitor
from repro.runtime import IllegalOperationError, ProcessFailed, Scheduler


def test_monitor_mutual_exclusion():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    inside = []
    overlap = []

    def body(tag):
        yield from mon.enter()
        inside.append(tag)
        overlap.append(len(inside))
        yield
        inside.remove(tag)
        mon.exit()

    for tag in "abcd":
        sched.spawn(body, tag, name=tag)
    sched.run()
    assert max(overlap) == 1


def test_monitor_entry_is_fifo():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    order = []

    def body(tag):
        yield from mon.enter()
        order.append(tag)
        yield
        mon.exit()

    for tag in "abc":
        sched.spawn(body, tag, name=tag)
    sched.run()
    assert order == ["a", "b", "c"]


def test_wait_releases_monitor():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    order = []

    def waiter():
        yield from mon.enter()
        order.append("wait")
        yield from cond.wait()
        order.append("woken")
        mon.exit()

    def other():
        yield from mon.enter()
        order.append("other-inside")
        yield from cond.signal()
        mon.exit()

    sched.spawn(waiter, name="w")
    sched.spawn(other, name="o")
    sched.run()
    assert order == ["wait", "other-inside", "woken"]


def test_hoare_signal_hands_over_immediately():
    """Under Hoare semantics the signalled process runs inside the monitor
    before the signaller's next monitor action."""
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    order = []

    def waiter():
        yield from mon.enter()
        yield from cond.wait()
        order.append("waiter-resumed")
        mon.exit()

    def signaller():
        yield from mon.enter()
        order.append("pre-signal")
        yield from cond.signal()
        order.append("post-signal")
        mon.exit()

    sched.spawn(waiter, name="w")
    sched.spawn(signaller, name="s")
    sched.run()
    assert order == ["pre-signal", "waiter-resumed", "post-signal"]


def test_hoare_no_barging_between_signal_and_resume():
    """A third process waiting at entry must not slip in between signal and
    the waiter's resumption (possession is handed directly)."""
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    order = []

    def waiter():
        yield from mon.enter()
        yield from cond.wait()
        order.append("waiter")
        mon.exit()

    def signaller():
        yield from mon.enter()
        yield from cond.signal()
        order.append("signaller")
        mon.exit()

    def barger():
        yield
        yield from mon.enter()
        order.append("barger")
        mon.exit()

    sched.spawn(waiter, name="w")
    sched.spawn(signaller, name="s")
    sched.spawn(barger, name="b")
    sched.run()
    assert order.index("waiter") < order.index("barger")


def test_mesa_signal_continues():
    sched = Scheduler()
    mon = Monitor(sched, "m", signal_semantics="mesa")
    cond = mon.condition("c")
    order = []

    def waiter():
        yield from mon.enter()
        yield from cond.wait()
        order.append("waiter")
        mon.exit()

    def signaller():
        yield from mon.enter()
        yield from cond.signal()
        order.append("signaller-continues")
        mon.exit()

    sched.spawn(waiter, name="w")
    sched.spawn(signaller, name="s")
    sched.run()
    assert order == ["signaller-continues", "waiter"]


def test_signal_on_empty_condition_is_noop():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    done = []

    def body():
        yield from mon.enter()
        yield from cond.signal()
        done.append(True)
        mon.exit()

    sched.spawn(body)
    sched.run()
    assert done == [True]


def test_condition_queue_attribute():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    observed = []

    def waiter():
        yield from mon.enter()
        yield from cond.wait()
        mon.exit()

    def checker():
        yield from mon.enter()
        observed.append(cond.queue)
        observed.append(len(cond))
        yield from cond.signal()
        mon.exit()

    sched.spawn(waiter, name="w")
    sched.spawn(checker, name="c")
    sched.run()
    assert observed == [True, 1]


def test_priority_wait_wakes_smallest_rank():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    woken = []

    def waiter(tag, rank):
        yield from mon.enter()
        yield from cond.wait(priority=rank)
        woken.append(tag)
        mon.exit()

    def signaller():
        for _ in range(4):
            yield
        yield from mon.enter()
        while cond.queue:
            yield from cond.signal()
        mon.exit()

    sched.spawn(waiter, "far", 90, name="far")
    sched.spawn(waiter, "near", 10, name="near")
    sched.spawn(waiter, "mid", 50, name="mid")
    sched.spawn(signaller, name="sig")
    sched.run()
    assert woken == ["near", "mid", "far"]


def test_priority_wait_ties_break_fifo():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    woken = []

    def waiter(tag):
        yield from mon.enter()
        yield from cond.wait(priority=5)
        woken.append(tag)
        mon.exit()

    def signaller():
        yield
        yield
        yield from mon.enter()
        while cond.queue:
            yield from cond.signal()
        mon.exit()

    sched.spawn(waiter, "first", name="first")
    sched.spawn(waiter, "second", name="second")
    sched.spawn(signaller, name="sig")
    sched.run()
    assert woken == ["first", "second"]


def test_minrank():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    observed = []

    def waiter(rank):
        yield from mon.enter()
        yield from cond.wait(priority=rank)
        mon.exit()

    def checker():
        yield
        yield
        yield from mon.enter()
        observed.append(cond.minrank())
        while cond.queue:
            yield from cond.signal()
        mon.exit()

    sched.spawn(waiter, 42, name="a")
    sched.spawn(waiter, 7, name="b")
    sched.spawn(checker, name="chk")
    sched.run()
    assert observed == [7]
    assert cond.minrank() is None


def test_signal_and_exit():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    order = []

    def waiter():
        yield from mon.enter()
        yield from cond.wait()
        order.append("waiter")
        mon.exit()

    def signaller():
        yield from mon.enter()
        order.append("signaller")
        cond.signal_and_exit()

    sched.spawn(waiter, name="w")
    sched.spawn(signaller, name="s")
    result = sched.run()
    assert order == ["signaller", "waiter"]
    assert not result.blocked


def test_signal_and_exit_empty_releases_monitor():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    order = []

    def one():
        yield from mon.enter()
        cond.signal_and_exit()

    def two():
        yield from mon.enter()
        order.append("two")
        mon.exit()

    sched.spawn(one, name="one")
    sched.spawn(two, name="two")
    sched.run()
    assert order == ["two"]


def test_broadcast_under_hoare():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    woken = []

    def waiter(tag):
        yield from mon.enter()
        yield from cond.wait()
        woken.append(tag)
        mon.exit()

    def caster():
        yield
        yield
        yield from mon.enter()
        yield from cond.broadcast()
        mon.exit()

    sched.spawn(waiter, "a", name="a")
    sched.spawn(waiter, "b", name="b")
    sched.spawn(caster, name="cast")
    sched.run()
    assert sorted(woken) == ["a", "b"]


def test_procedure_helper_exits_on_exception():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    survived = []

    def failing_body():
        raise ValueError("inside monitor")
        yield  # pragma: no cover

    def bad():
        yield from mon.procedure(failing_body())

    def good():
        yield
        yield from mon.enter()
        survived.append(True)
        mon.exit()

    sched.spawn(bad, name="bad")
    sched.spawn(good, name="good")
    sched.run(on_error="record")
    assert survived == [True]
    assert mon.active_name is None


def test_wait_outside_monitor_raises():
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")

    def body():
        yield from cond.wait()

    sched.spawn(body)
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, IllegalOperationError)


def test_exit_without_enter_raises():
    sched = Scheduler()
    mon = Monitor(sched, "m")

    def body():
        yield
        mon.exit()

    sched.spawn(body)
    with pytest.raises(ProcessFailed):
        sched.run()


def test_reenter_raises():
    sched = Scheduler()
    mon = Monitor(sched, "m")

    def body():
        yield from mon.enter()
        yield from mon.enter()

    sched.spawn(body)
    with pytest.raises(ProcessFailed):
        sched.run()


def test_bad_signal_semantics_rejected():
    with pytest.raises(ValueError):
        Monitor(Scheduler(), signal_semantics="eiffel")


def test_urgent_stack_priority_over_entry():
    """After the signalled process exits, the signaller (urgent) resumes
    before any process waiting at entry."""
    sched = Scheduler()
    mon = Monitor(sched, "m")
    cond = mon.condition("c")
    order = []

    def waiter():
        yield from mon.enter()
        yield from cond.wait()
        order.append("waiter")
        mon.exit()

    def signaller():
        yield from mon.enter()
        yield from cond.signal()
        order.append("signaller")
        mon.exit()

    def entrant():
        yield
        yield from mon.enter()
        order.append("entrant")
        mon.exit()

    sched.spawn(waiter, name="w")
    sched.spawn(signaller, name="s")
    sched.spawn(entrant, name="e")
    sched.run()
    assert order == ["waiter", "signaller", "entrant"]
