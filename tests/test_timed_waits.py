"""Timed blocking calls: ``timeout=`` on every mechanism, the stale-timer
guard in ``_advance_clock``, step-limit diagnostics, ``run_processes``
plumbing, and the ``retrying`` helper.

The cross-cutting contract: a timed waiter that gives up is *dequeued*
before :class:`WaitTimeout` is delivered, so a later signal can never
target a process that already walked away.
"""

import pytest

from repro.mechanisms.channels import Channel, ReceiveOp, SendOp, select
from repro.mechanisms.monitor import Monitor
from repro.mechanisms.pathexpr import PathResource
from repro.mechanisms.serializer import Serializer
from repro.runtime import (
    BroadcastEvent,
    FaultPlan,
    Mutex,
    ProcessFailed,
    Scheduler,
    Semaphore,
    StepLimitExceeded,
    WaitTimeout,
    retrying,
    run_processes,
)


# ----------------------------------------------------------------------
# Semaphore / mutex / event timeouts
# ----------------------------------------------------------------------
class TestPrimitiveTimeouts:
    def test_semaphore_p_timeout_raises_and_dequeues(self):
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")
        outcomes = {}

        def quitter():
            try:
                yield from sem.p(timeout=5)
                outcomes["quitter"] = "got it"
            except WaitTimeout as exc:
                outcomes["quitter"] = exc.what

        def patient():
            yield from sem.p()
            outcomes["patient"] = "got it"

        def granter():
            yield from sched.sleep(10)  # past the quitter's deadline
            sem.v()

        sched.spawn(quitter, name="Q")
        sched.spawn(patient, name="W")
        sched.spawn(granter, name="G")
        result = sched.run()
        # The quitter timed out; the V went to the still-waiting patient,
        # never to the process that gave up.
        assert outcomes == {"quitter": "semaphore s", "patient": "got it"}
        assert result.trace.first(kind="timeout") is not None

    def test_mutex_acquire_timeout(self):
        sched = Scheduler()
        lock = Mutex(sched, name="m")
        timed_out = []

        def holder():
            yield from lock.acquire()
            yield from sched.sleep(20)
            lock.release()

        def impatient():
            yield
            try:
                yield from lock.acquire(timeout=5)
            except WaitTimeout:
                timed_out.append(True)

        sched.spawn(holder, name="H")
        sched.spawn(impatient, name="I")
        sched.run()
        assert timed_out == [True]
        assert not lock.held  # the holder's release found no waiters left

    def test_event_wait_timeout(self):
        sched = Scheduler()
        event = BroadcastEvent(sched, name="go")
        seen = []

        def waiter():
            try:
                yield from event.wait(timeout=3)
            except WaitTimeout:
                seen.append("timeout")

        def late_setter():
            yield from sched.sleep(10)
            event.set()

        sched.spawn(waiter, name="W")
        sched.spawn(late_setter, name="S")
        sched.run()
        assert seen == ["timeout"]

    def test_zero_timeout_rejected(self):
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")

        def waiter():
            yield from sem.p(timeout=0)

        sched.spawn(waiter, name="W")
        with pytest.raises(ProcessFailed) as info:
            sched.run()
        assert isinstance(info.value.__cause__, ValueError)


# ----------------------------------------------------------------------
# Monitor timeouts
# ----------------------------------------------------------------------
class TestMonitorTimeouts:
    def test_enter_timeout(self):
        sched = Scheduler()
        mon = Monitor(sched, name="mon")
        seen = []

        def occupant():
            yield from mon.enter()
            yield from sched.sleep(20)
            mon.exit()

        def impatient():
            yield
            try:
                yield from mon.enter(timeout=5)
            except WaitTimeout:
                seen.append("timeout")

        sched.spawn(occupant, name="O")
        sched.spawn(impatient, name="I")
        sched.run()
        assert seen == ["timeout"]

    def test_condition_wait_timeout_holds_monitor_on_raise(self):
        # The waiter must re-own the monitor when WaitTimeout is raised, so
        # it can inspect state and exit cleanly — Mesa-style timed wait.
        sched = Scheduler()
        mon = Monitor(sched, name="mon")
        cond = mon.condition("c")
        observed = []

        def waiter():
            yield from mon.enter()
            try:
                yield from cond.wait(timeout=5)
            except WaitTimeout:
                observed.append(mon.active_name)  # still inside
            mon.exit()

        def bystander():
            yield from sched.sleep(10)
            yield from mon.enter()
            observed.append("bystander in")
            mon.exit()

        sched.spawn(waiter, name="W")
        sched.spawn(bystander, name="B")
        result = sched.run()
        assert observed == ["W", "bystander in"]
        assert not result.deadlocked

    def test_condition_wait_timeout_ignores_late_signal(self):
        sched = Scheduler()
        mon = Monitor(sched, name="mon")
        cond = mon.condition("c")
        order = []

        def quitter():
            yield from mon.enter()
            try:
                yield from cond.wait(timeout=5)
                order.append("quitter signalled")
            except WaitTimeout:
                order.append("quitter timeout")
            mon.exit()

        def patient():
            yield from mon.enter()
            yield from cond.wait()
            order.append("patient signalled")
            mon.exit()

        def signaller():
            yield from sched.sleep(10)
            yield from mon.enter()
            yield from cond.signal()  # must reach the patient waiter
            mon.exit()

        sched.spawn(quitter, name="Q")
        sched.spawn(patient, name="P")
        sched.spawn(signaller, name="S")
        result = sched.run()
        assert "quitter timeout" in order
        assert "patient signalled" in order
        assert not result.deadlocked


# ----------------------------------------------------------------------
# Serializer timeouts
# ----------------------------------------------------------------------
class TestSerializerTimeouts:
    def test_enqueue_timeout_reacquires_possession(self):
        # A timed-out enqueue returns holding possession (like a monitor
        # timed wait), so the caller must still exit.
        sched = Scheduler()
        ser = Serializer(sched, name="ser")
        q = ser.queue("q")
        seen = []

        def waiter():
            yield from ser.enter()
            try:
                yield from ser.enqueue(q, guarantee=lambda: False, timeout=5)
            except WaitTimeout:
                seen.append("timeout")
            ser.exit()

        def clock():
            yield from sched.sleep(10)

        def after():
            yield
            yield from ser.enter()
            seen.append("after in")
            ser.exit()

        sched.spawn(waiter, name="W")
        sched.spawn(clock, name="C")
        sched.spawn(after, name="A")
        result = sched.run()
        # W reacquired possession to raise, then exited — so A got in too
        # (possession was free while W sat parked in the queue, so A may
        # run first; order is policy-dependent, completion is not).
        assert set(seen) == {"timeout", "after in"}
        assert not result.deadlocked

    def test_enter_timeout(self):
        sched = Scheduler()
        ser = Serializer(sched, name="ser")
        q = ser.queue("q")
        seen = []

        def possessor():
            yield from ser.enter()
            # Park in the queue forever, holding nothing: possession is
            # given up during enqueue, so the impatient enter would succeed
            # were it patient — but it times out first.
            try:
                yield from ser.enqueue(q, guarantee=lambda: False, timeout=30)
            except WaitTimeout:
                pass
            ser.exit()

        def impatient():
            yield
            try:
                yield from ser.enter(timeout=5)
                seen.append("in")
                ser.exit()
            except WaitTimeout:
                seen.append("timeout")

        sched.spawn(possessor, name="P")
        sched.spawn(impatient, name="I")
        result = sched.run()
        # Possession was free while P sat in the queue, so I got in.
        assert seen == ["in"]
        assert not result.deadlocked


# ----------------------------------------------------------------------
# Channel timeouts
# ----------------------------------------------------------------------
class TestChannelTimeouts:
    def test_send_timeout_withdraws_offer(self):
        sched = Scheduler()
        chan = Channel(sched, name="ch")
        log = []

        def sender():
            try:
                yield from chan.send("stale", timeout=5)
            except WaitTimeout:
                log.append("send timeout")
            # A fresh rendezvous afterwards must not see the stale offer.
            yield from chan.send("fresh")

        def receiver():
            yield from sched.sleep(10)
            value = yield from chan.receive()
            log.append(value)

        sched.spawn(sender, name="S")
        sched.spawn(receiver, name="R")
        sched.run()
        assert log == ["send timeout", "fresh"]

    def test_receive_timeout(self):
        sched = Scheduler()
        chan = Channel(sched, name="ch")
        log = []

        def receiver():
            try:
                yield from chan.receive(timeout=5)
            except WaitTimeout:
                log.append("recv timeout")

        def clock():
            yield from sched.sleep(10)

        sched.spawn(receiver, name="R")
        sched.spawn(clock, name="C")
        sched.run()
        assert log == ["recv timeout"]

    def test_select_timeout_withdraws_all_arms(self):
        sched = Scheduler()
        a = Channel(sched, name="a")
        b = Channel(sched, name="b")
        log = []

        def chooser():
            try:
                yield from select(
                    sched, [ReceiveOp(a), ReceiveOp(b)], timeout=5
                )
            except WaitTimeout:
                log.append("select timeout")
            # Neither channel may still hold a parked arm of ours.
            assert a.receivers_waiting == 0 and b.receivers_waiting == 0

        def late_sender():
            yield from sched.sleep(10)
            yield from select(sched, [SendOp(b, "late")], timeout=5)

        sched.spawn(chooser, name="C")
        sched.spawn(late_sender, name="S")
        result = sched.run(on_error="record")
        assert log == ["select timeout"]
        # The late sender found no receiver and timed out too — its offer
        # went to nobody because the chooser had withdrawn.
        assert result.trace.filter(kind="timeout")


# ----------------------------------------------------------------------
# Path expressions
# ----------------------------------------------------------------------
class TestPathexprTimeout:
    def test_invoke_timeout_rolls_back_prologue(self):
        # "path work end": work excludes end until it completes.  A timed
        # invoke of the blocked op must undo its partial prologue so the
        # expression state stays consistent for later invokers.
        sched = Scheduler()
        res = PathResource(sched, "path 1:(work)  end", name="r")
        state = []

        def body(r):
            yield from sched.sleep(20)

        def quick(r):
            yield

        res.define("work", body)
        res.define("end", quick)

        def slow():
            yield from res.invoke("work")
            state.append("work done")

        def impatient():
            yield
            try:
                yield from res.invoke("work", timeout=5)
            except WaitTimeout:
                state.append("timeout")

        def finisher():
            yield
            yield from res.invoke("work")
            state.append("second work done")

        sched.spawn(slow, name="S")
        sched.spawn(impatient, name="I")
        sched.spawn(finisher, name="F")
        result = sched.run()
        assert state[0] == "timeout"
        assert "work done" in state and "second work done" in state
        assert not result.deadlocked


# ----------------------------------------------------------------------
# Stale timers (_advance_clock guard)
# ----------------------------------------------------------------------
class TestStaleTimers:
    def test_normal_wake_before_deadline_cancels_timer(self):
        # Regression: the waiter is granted the semaphore *before* its
        # timeout deadline; when the clock later sweeps past the deadline
        # the stale entry must not fire — no spurious timeout, no second
        # wake of a process that already moved on.
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")
        log = []

        def waiter():
            yield from sem.p(timeout=100)
            log.append("woken")
            yield from sched.sleep(500)  # drives the clock past deadline
            log.append("slept")

        def granter():
            yield
            sem.v()

        sched.spawn(waiter, name="W")
        sched.spawn(granter, name="G")
        result = sched.run()
        assert log == ["woken", "slept"]
        assert result.trace.filter(kind="timeout") == []
        assert result.time == 500  # sleep completed; no early wake at 100

    def test_dead_waiter_timer_is_discarded(self):
        # A killed process's pending timeout must not fire on its corpse.
        plan = FaultPlan().kill("W", at_time=5)
        sched = Scheduler(fault_plan=plan)
        sem = Semaphore(sched, initial=0, name="s")

        def waiter():
            yield from sem.p(timeout=50)

        def clock():
            yield from sched.sleep(100)

        def pacer():
            # Advances the clock to t=10 so the kill lands *before* the
            # waiter's t=50 deadline.
            yield from sched.sleep(10)

        sched.spawn(waiter, name="W")
        sched.spawn(clock, name="C")
        sched.spawn(pacer, name="P")
        result = sched.run(on_error="record")
        assert result.failed() == ["W"]
        assert result.trace.filter(kind="timeout") == []


# ----------------------------------------------------------------------
# Step-limit diagnostics
# ----------------------------------------------------------------------
class TestStepLimitDiagnostics:
    def test_step_limit_carries_trace_tail_and_ready_queue(self):
        sched = Scheduler(max_steps=50)

        def spinner():
            while True:
                sched.log("spin", "loop")
                yield

        sched.spawn(spinner, name="A")
        sched.spawn(spinner, name="B")
        with pytest.raises(StepLimitExceeded) as info:
            sched.run()
        err = info.value
        assert err.recent_events  # the tail is attached...
        assert any(ev.kind == "spin" for ev in err.recent_events)
        assert set(err.ready) & {"A", "B"}  # ...and the ready snapshot
        text = str(err)
        assert "ready queue:" in text and "last" in text


# ----------------------------------------------------------------------
# run_processes plumbing
# ----------------------------------------------------------------------
class TestRunProcessesPlumbing:
    def test_on_error_record_keeps_running(self):
        def bad():
            yield
            raise RuntimeError("boom")

        def good():
            yield
            yield
            return "ok"

        result = run_processes(
            bad, good, names=["bad", "good"], on_error="record"
        )
        assert result.failed() == ["bad"]
        assert result.results["good"] == "ok"

    def test_fault_plan_and_preemptive_are_plumbed(self):
        plan = FaultPlan().kill("victim", at_step=1)

        def victim():
            for __ in range(5):
                yield

        def survivor():
            yield
            return "alive"

        result = run_processes(
            victim, survivor,
            names=["victim", "survivor"],
            on_error="record",
            preemptive=True,
            fault_plan=plan,
        )
        assert result.failed() == ["victim"]
        assert result.results["survivor"] == "alive"


# ----------------------------------------------------------------------
# Bounded retry
# ----------------------------------------------------------------------
class TestRetrying:
    def test_succeeds_on_later_attempt(self):
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")
        got = []

        def waiter():
            value = yield from retrying(
                lambda i: sem.p(timeout=4), attempts=5
            )
            got.append(("ok", value))

        def granter():
            yield from sched.sleep(10)  # two timeouts, then success
            sem.v()

        sched.spawn(waiter, name="W")
        sched.spawn(granter, name="G")
        result = sched.run()
        assert got and got[0][0] == "ok"
        assert len(result.trace.filter(kind="timeout")) == 2

    def test_exhaustion_reraises_last_timeout(self):
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")
        raised = []

        def waiter():
            try:
                yield from retrying(lambda i: sem.p(timeout=3), attempts=2)
            except WaitTimeout as exc:
                raised.append(exc.what)

        def clock():
            yield from sched.sleep(50)

        sched.spawn(waiter, name="W")
        sched.spawn(clock, name="C")
        result = sched.run()
        assert raised == ["semaphore s"]
        assert len(result.trace.filter(kind="timeout")) == 2

    def test_backoff_spaces_attempts_in_virtual_time(self):
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")

        def waiter():
            try:
                yield from retrying(
                    lambda i: sem.p(timeout=2),
                    attempts=3,
                    backoff=lambda i: 10 * (i + 1),
                    sched=sched,
                )
            except WaitTimeout:
                pass

        def clock():
            yield from sched.sleep(100)

        sched.spawn(waiter, name="W")
        sched.spawn(clock, name="C")
        result = sched.run()
        # 2 + 10 + 2 + 20 + 2 = 36 ticks of retry traffic; the last try's
        # timeout lands at t=36.
        timeouts = result.trace.filter(kind="timeout")
        assert [ev.time for ev in timeouts] == [2, 14, 36]

    def test_attempts_must_be_positive(self):
        with pytest.raises(ValueError):
            list(retrying(lambda i: iter(()), attempts=0))
