"""Property-based tests (hypothesis) for the extension mechanisms and the
parameter-based problems: channel conservation, CCR exclusion, alarm-clock
deadlines, and disk SCAN validity under randomized inputs/schedules."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mechanisms import Channel, SharedRegion
from repro.problems.alarm_clock import (
    CcrAlarmClock,
    CspAlarmClock,
    MonitorAlarmClock,
    SerializerAlarmClock,
    run_sleepers,
)
from repro.problems.disk_scheduler import (
    MonitorDiskScheduler,
    run_requests,
)
from repro.problems.readers_writers import (
    CcrReadersPriority,
    CspReadersPriority,
    run_workload,
)
from repro.runtime import RandomPolicy, Scheduler
from repro.verify import check_alarm_wakeups, check_mutual_exclusion, check_scan_order

COMMON_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ----------------------------------------------------------------------
# Channels conserve messages
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(
    values=st.lists(st.integers(), min_size=1, max_size=10),
    senders=st.integers(1, 3),
    seed=st.integers(0, 1000),
)
def test_channel_conserves_messages(values, senders, seed):
    """Everything sent is received exactly once, in any schedule."""
    sched = Scheduler(policy=RandomPolicy(seed))
    chan = Channel(sched, "c")
    received = []
    shares = [values[i::senders] for i in range(senders)]

    def sender(items):
        def body():
            for item in items:
                yield from chan.send(item)
        return body

    def receiver():
        for __ in range(len(values)):
            item = yield from chan.receive()
            received.append(item)

    for i, share in enumerate(shares):
        sched.spawn(sender(share), name="S{}".format(i))
    sched.spawn(receiver, name="R")
    result = sched.run()
    assert not result.deadlocked
    assert sorted(received) == sorted(values)


@COMMON_SETTINGS
@given(seed=st.integers(0, 1000), contenders=st.integers(2, 5))
def test_ccr_region_exclusion_random_schedules(seed, contenders):
    sched = Scheduler(policy=RandomPolicy(seed))
    cell = SharedRegion(sched, {"inside": 0, "peak": 0}, name="v")

    def body():
        yield from cell.enter()
        cell.vars["inside"] += 1
        cell.vars["peak"] = max(cell.vars["peak"], cell.vars["inside"])
        yield
        cell.vars["inside"] -= 1
        cell.leave()

    for i in range(contenders):
        sched.spawn(body, name="P{}".format(i))
    sched.run()
    assert cell.vars["peak"] == 1


# ----------------------------------------------------------------------
# Alarm clock: every implementation, random delays
# ----------------------------------------------------------------------
_alarm_impls = st.sampled_from([
    MonitorAlarmClock, SerializerAlarmClock, CspAlarmClock, CcrAlarmClock,
])


@COMMON_SETTINGS
@given(
    cls=_alarm_impls,
    delays=st.lists(st.integers(1, 12), min_size=1, max_size=6),
)
def test_alarm_deadlines_hold_for_random_delays(cls, delays):
    result, wakes = run_sleepers(lambda s: cls(s), tuple(delays))
    assert not result.deadlocked
    assert check_alarm_wakeups(result.trace, "alarm") == []
    assert wakes == sorted(wakes)


# ----------------------------------------------------------------------
# Disk: SCAN validity for random distinct track batches
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(data=st.data())
def test_disk_scan_valid_for_random_batches(data):
    tracks = data.draw(
        st.lists(
            st.integers(1, 199), min_size=2, max_size=8, unique=True
        )
    )
    delays = data.draw(
        st.lists(
            st.integers(0, 5),
            min_size=len(tracks),
            max_size=len(tracks),
        )
    )
    plan = list(zip(delays, tracks))
    result, impl = run_requests(lambda s: MonitorDiskScheduler(s), plan)
    assert not result.deadlocked
    assert check_scan_order(result.trace, "disk", start_track=0) == []
    assert sorted(impl.disk.served) == sorted(tracks)


# ----------------------------------------------------------------------
# Extension readers/writers: exclusion under random workloads+schedules
# ----------------------------------------------------------------------
_plans = st.lists(
    st.tuples(
        st.sampled_from(["R", "W"]),
        st.integers(0, 3),
        st.integers(1, 3),
    ),
    min_size=2,
    max_size=7,
)


@COMMON_SETTINGS
@given(
    cls=st.sampled_from([CspReadersPriority, CcrReadersPriority]),
    plan=_plans,
    seed=st.integers(0, 500),
)
def test_extension_rw_exclusion_random(cls, plan, seed):
    result = run_workload(
        lambda sched: cls(sched), plan, policy=RandomPolicy(seed)
    )
    assert not result.deadlocked
    assert check_mutual_exclusion(
        result.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
    ) == []
