"""Unit tests for the path-expression tokenizer, parser, and AST."""

import pytest

from repro.mechanisms.pathexpr import (
    Burst,
    Name,
    PathSyntaxError,
    Selection,
    Sequence,
    parse_path,
    parse_paths,
)
from repro.mechanisms.pathexpr.parser import tokenize


def test_tokenize_basic():
    tokens = tokenize("path a ; b end")
    assert [t.kind for t in tokens] == ["path", "name", ";", "name", "end"]


def test_tokenize_rejects_junk():
    with pytest.raises(PathSyntaxError):
        tokenize("path a ! b end")


def test_parse_single_name():
    path = parse_path("path read end")
    assert path.body == Name("read")


def test_parse_sequence():
    path = parse_path("path a ; b ; c end")
    assert isinstance(path.body, Sequence)
    assert [el.value for el in path.body.elements] == ["a", "b", "c"]


def test_parse_selection():
    path = parse_path("path a , b end")
    assert isinstance(path.body, Selection)
    assert [alt.value for alt in path.body.alternatives] == ["a", "b"]


def test_selection_binds_looser_than_sequence():
    path = parse_path("path a ; b , c end")
    assert isinstance(path.body, Selection)
    first, second = path.body.alternatives
    assert isinstance(first, Sequence)
    assert second == Name("c")


def test_parse_burst():
    path = parse_path("path { read } end")
    assert path.body == Burst(Name("read"))


def test_parse_grouping():
    path = parse_path("path { read } , (openwrite ; write) end")
    assert isinstance(path.body, Selection)
    burst, seq = path.body.alternatives
    assert isinstance(burst, Burst)
    assert isinstance(seq, Sequence)


def test_parse_figure1_paths():
    """The exact three declarations of the paper's Figure 1."""
    program = """
        path writeattempt end
        path { requestread } , requestwrite end
        path { read } , (openwrite ; write) end
    """
    paths = parse_paths(program)
    assert len(paths) == 3
    assert paths[0].body == Name("writeattempt")
    assert paths[1].operation_names() == {"requestread", "requestwrite"}
    assert paths[2].operation_names() == {"read", "openwrite", "write"}


def test_parse_figure2_paths():
    """The exact three declarations of the paper's Figure 2."""
    program = """
        path readattempt end
        path requestread , { requestwrite } end
        path { openread ; read } , write end
    """
    paths = parse_paths(program)
    assert len(paths) == 3
    assert isinstance(paths[1].body, Selection)
    burst = paths[2].body.alternatives[0]
    assert isinstance(burst, Burst)
    assert isinstance(burst.body, Sequence)


def test_nested_burst():
    path = parse_path("path { { a } } end")
    assert path.body == Burst(Burst(Name("a")))


def test_unparse_round_trip():
    sources = [
        "path read end",
        "path a ; b end",
        "path a , b end",
        "path { read } , write end",
        "path { read } , (openwrite ; write) end",
        "path a ; (b , c) ; d end",
        "path { (a ; b) } end",
    ]
    for source in sources:
        parsed = parse_path(source)
        assert parse_path(parsed.unparse()) == parsed


def test_operation_names_collects_all():
    path = parse_path("path a ; (b , { c }) end")
    assert path.operation_names() == {"a", "b", "c"}


def test_missing_end_raises():
    with pytest.raises(PathSyntaxError):
        parse_path("path a ; b")


def test_missing_path_keyword_raises():
    with pytest.raises(PathSyntaxError):
        parse_path("a ; b end")


def test_unclosed_brace_raises():
    with pytest.raises(PathSyntaxError):
        parse_path("path { a end")


def test_trailing_input_raises():
    with pytest.raises(PathSyntaxError):
        parse_path("path a end extra")


def test_empty_path_raises():
    with pytest.raises(PathSyntaxError):
        parse_path("path end")


def test_empty_program_raises():
    with pytest.raises(PathSyntaxError):
        parse_paths("   ")


def test_dangling_separator_raises():
    with pytest.raises(PathSyntaxError):
        parse_path("path a ; end")


def test_error_carries_position():
    try:
        parse_path("path a @ b end")
    except PathSyntaxError as err:
        assert err.position == 7
    else:  # pragma: no cover
        pytest.fail("expected PathSyntaxError")


def test_comments_are_stripped():
    program = """
        -- Figure 1, first declaration
        path writeattempt end  -- serializes write attempts
        path { requestread } , requestwrite end
    """
    paths = parse_paths(program)
    assert len(paths) == 2
    assert paths[0].body == Name("writeattempt")


def test_comment_only_program_raises():
    with pytest.raises(PathSyntaxError):
        parse_paths("-- nothing here")


def test_error_position_survives_comment_stripping():
    try:
        parse_path("-- lead-in\npath a @ b end")
    except PathSyntaxError as err:
        assert err.position == len("-- lead-in\npath a ")
    else:  # pragma: no cover
        pytest.fail("expected PathSyntaxError")
