"""Unit tests for the core scheduler: spawning, stepping, blocking, timers,
deadlock detection, policies, and trace bookkeeping."""

import pytest

from repro.runtime import (
    DeadlockError,
    FIFOPolicy,
    NamedOrderPolicy,
    ProcessFailed,
    ProcessState,
    RandomPolicy,
    Scheduler,
    SchedulerStateError,
    ScriptedPolicy,
    Semaphore,
    StepLimitExceeded,
    run_processes,
)


def test_single_process_runs_to_completion():
    sched = Scheduler()
    log = []

    def body():
        log.append("a")
        yield
        log.append("b")

    sched.spawn(body, name="solo")
    result = sched.run()
    assert log == ["a", "b"]
    assert not result.deadlocked
    assert result.blocked == []


def test_process_return_value_collected():
    sched = Scheduler()

    def body():
        yield
        return 42

    sched.spawn(body, name="answer")
    result = sched.run()
    assert result.results["answer"] == 42


def test_fifo_policy_round_robins():
    sched = Scheduler(policy=FIFOPolicy())
    order = []

    def body(tag):
        for _ in range(3):
            order.append(tag)
            yield

    sched.spawn(body, "a", name="A")
    sched.spawn(body, "b", name="B")
    sched.run()
    assert order == ["a", "b", "a", "b", "a", "b"]


def test_spawn_inside_process():
    sched = Scheduler()
    order = []

    def child():
        order.append("child")
        yield

    def parent():
        order.append("parent")
        sched.spawn(child, name="kid")
        yield

    sched.spawn(parent, name="parent")
    sched.run()
    assert order == ["parent", "child"]


def test_park_without_unpark_is_deadlock():
    sched = Scheduler()

    def body():
        yield from sched.park("forever")

    sched.spawn(body, name="stuck")
    with pytest.raises(DeadlockError) as err:
        sched.run()
    assert "stuck" in str(err.value)


def test_deadlock_can_be_returned_instead_of_raised():
    sched = Scheduler()

    def body():
        yield from sched.park("forever")

    sched.spawn(body, name="stuck")
    result = sched.run(on_deadlock="return")
    assert result.deadlocked
    assert result.blocked == ["stuck"]


def test_unpark_delivers_value():
    sched = Scheduler()
    received = []
    procs = {}

    def waiter():
        value = yield from sched.park("token")
        received.append(value)

    def waker():
        yield
        sched.unpark(procs["w"], "hello")

    procs["w"] = sched.spawn(waiter, name="waiter")
    sched.spawn(waker, name="waker")
    sched.run()
    assert received == ["hello"]


def test_unpark_nonblocked_raises():
    sched = Scheduler()

    def sleeper():
        yield

    def buggy(target):
        yield
        sched.unpark(target)

    target = sched.spawn(sleeper, name="t")
    sched.spawn(buggy, target, name="buggy")
    with pytest.raises(ProcessFailed):
        sched.run()


def test_sleep_advances_virtual_clock():
    sched = Scheduler()
    wake_times = []

    def sleeper(ticks):
        yield from sched.sleep(ticks)
        wake_times.append((ticks, sched.now))

    sched.spawn(sleeper, 5, name="s5")
    sched.spawn(sleeper, 2, name="s2")
    result = sched.run()
    assert sorted(wake_times) == [(2, 2), (5, 5)]
    assert result.time == 5


def test_sleep_zero_does_not_block():
    sched = Scheduler()
    done = []

    def body():
        yield from sched.sleep(0)
        done.append(True)

    sched.spawn(body)
    sched.run()
    assert done == [True]


def test_step_limit_guards_livelock():
    sched = Scheduler(max_steps=50)

    def spinner():
        while True:
            yield

    sched.spawn(spinner)
    with pytest.raises(StepLimitExceeded):
        sched.run()


def test_process_exception_wrapped():
    sched = Scheduler()

    def bad():
        yield
        raise ValueError("boom")

    sched.spawn(bad, name="bad")
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, ValueError)


def test_process_exception_recorded_mode():
    sched = Scheduler()
    survived = []

    def bad():
        yield
        raise ValueError("boom")

    def good():
        yield
        yield
        survived.append(True)

    sched.spawn(bad, name="bad")
    sched.spawn(good, name="good")
    result = sched.run(on_error="record")
    assert survived == [True]
    assert "good" in result.results


def test_scripted_policy_controls_interleaving():
    order = []

    def body(tag):
        order.append(tag)
        yield
        order.append(tag)

    # Always pick the last ready process.
    sched = Scheduler(policy=ScriptedPolicy([1, 1, 1, 1, 1, 1]))
    sched.spawn(body, "a", name="A")
    sched.spawn(body, "b", name="B")
    sched.run()
    assert order[0] == "b"


def test_scripted_policy_records_branching():
    policy = ScriptedPolicy([])
    sched = Scheduler(policy=policy)

    def body():
        yield

    sched.spawn(body, name="A")
    sched.spawn(body, name="B")
    sched.run()
    assert policy.branch_log[0] == 2
    assert all(n >= 1 for n in policy.branch_log)


def test_named_order_policy_follows_names():
    order = []

    def body(tag):
        order.append(tag)
        yield

    sched = Scheduler(policy=NamedOrderPolicy(["B", "A"]))
    sched.spawn(body, "a", name="A")
    sched.spawn(body, "b", name="B")
    sched.run()
    assert order == ["b", "a"]


def test_random_policy_is_seed_deterministic():
    def run_with_seed(seed):
        order = []

        def body(tag):
            for _ in range(3):
                order.append(tag)
                yield

        sched = Scheduler(policy=RandomPolicy(seed))
        for tag in "abc":
            sched.spawn(body, tag, name=tag.upper())
        sched.run()
        return order

    assert run_with_seed(7) == run_with_seed(7)


def test_trace_records_spawn_and_exit():
    sched = Scheduler()

    def body():
        yield

    sched.spawn(body, name="X")
    result = sched.run()
    kinds = [ev.kind for ev in result.trace]
    assert "spawn" in kinds
    assert "exit" in kinds


def test_arrival_stamps_are_ordered():
    sched = Scheduler()

    def body():
        yield

    p1 = sched.spawn(body, name="first")
    p2 = sched.spawn(body, name="second")
    assert p1.arrival < p2.arrival


def test_spawn_after_run_rejected():
    sched = Scheduler()

    def body():
        yield

    sched.spawn(body)
    sched.run()
    with pytest.raises(SchedulerStateError):
        sched.spawn(body)


def test_non_generator_body_rejected():
    sched = Scheduler()

    def not_a_generator():
        return 3

    with pytest.raises(SchedulerStateError):
        sched.spawn(not_a_generator)


def test_run_processes_helper():
    log = []

    def make(tag):
        def body():
            log.append(tag)
            yield
        return body

    result = run_processes(make("x"), make("y"), names=["X", "Y"])
    assert log == ["x", "y"]
    assert set(result.results) == {"X", "Y"}


def test_process_state_transitions():
    sched = Scheduler()

    def body():
        yield

    proc = sched.spawn(body)
    assert proc.state is ProcessState.READY
    sched.run()
    assert proc.state is ProcessState.DONE
    assert not proc.alive


def test_preemptive_checkpoint_yields():
    sched = Scheduler(preemptive=True)
    sem = Semaphore(sched, initial=1, name="s")
    switches = []

    def body(tag):
        yield from sem.p()
        switches.append(tag)
        sem.v()

    sched.spawn(body, "a", name="A")
    sched.spawn(body, "b", name="B")
    sched.run()
    assert sorted(switches) == ["a", "b"]
