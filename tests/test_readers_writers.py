"""Integration tests: every readers/writers variant under every mechanism
passes its exclusion + priority/ordering oracle battery."""

import pytest

from repro.problems.readers_writers import (
    BURST_PLAN,
    PHASED_PLAN,
    MonitorReadersPriority,
    MonitorRWFcfs,
    MonitorWritersPriority,
    PathReadersPriority,
    PathRWFcfs,
    PathWritersPriority,
    SemaphoreReadersPriority,
    SemaphoreWritersPriority,
    SerializerReadersPriority,
    SerializerRWFcfs,
    SerializerWritersPriority,
    make_verifier,
    run_workload,
    staggered_plan,
)
from repro.runtime import RandomPolicy, Scheduler
from repro.verify import (
    check_fcfs,
    check_mutual_exclusion,
    check_no_overtake,
)

READERS_PRIORITY_IMPLS = [
    SemaphoreReadersPriority,
    MonitorReadersPriority,
    SerializerReadersPriority,
    PathReadersPriority,
]
WRITERS_PRIORITY_IMPLS = [
    SemaphoreWritersPriority,
    MonitorWritersPriority,
    SerializerWritersPriority,
    PathWritersPriority,
]
FCFS_IMPLS = [MonitorRWFcfs, SerializerRWFcfs, PathRWFcfs]
ALL_IMPLS = READERS_PRIORITY_IMPLS + WRITERS_PRIORITY_IMPLS + FCFS_IMPLS


def impl_id(cls):
    return "{}-{}".format(cls.mechanism, cls.problem)


# ----------------------------------------------------------------------
# Exclusion safety: every implementation, several plans and schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", ALL_IMPLS, ids=impl_id)
@pytest.mark.parametrize("plan_name", ["burst", "phased", "staggered"])
def test_exclusion_safety(cls, plan_name):
    plan = {
        "burst": BURST_PLAN,
        "phased": PHASED_PLAN,
        "staggered": staggered_plan(11),
    }[plan_name]
    result = run_workload(lambda sched: cls(sched), plan)
    assert not result.deadlocked, result.blocked
    assert check_mutual_exclusion(
        result.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
    ) == []


@pytest.mark.parametrize("cls", ALL_IMPLS, ids=impl_id)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_exclusion_safety_random_schedules(cls, seed):
    result = run_workload(
        lambda sched: cls(sched), BURST_PLAN, policy=RandomPolicy(seed)
    )
    assert not result.deadlocked, result.blocked
    assert check_mutual_exclusion(
        result.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
    ) == []


# ----------------------------------------------------------------------
# Priority / ordering oracles
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", READERS_PRIORITY_IMPLS, ids=impl_id)
def test_readers_priority_no_overtake(cls):
    for plan in (BURST_PLAN, PHASED_PLAN, staggered_plan(5)):
        result = run_workload(lambda sched: cls(sched), plan)
        assert check_no_overtake(result.trace, "db", "read", "write") == []


@pytest.mark.parametrize("cls", WRITERS_PRIORITY_IMPLS, ids=impl_id)
def test_writers_priority_no_overtake(cls):
    for plan in (BURST_PLAN, PHASED_PLAN, staggered_plan(5)):
        result = run_workload(lambda sched: cls(sched), plan)
        assert check_no_overtake(result.trace, "db", "write", "read") == []


@pytest.mark.parametrize("cls", FCFS_IMPLS, ids=impl_id)
def test_fcfs_order(cls):
    for plan in (BURST_PLAN, PHASED_PLAN, staggered_plan(5)):
        result = run_workload(lambda sched: cls(sched), plan)
        assert check_fcfs(result.trace, "db", ["read", "write"]) == []


# ----------------------------------------------------------------------
# Behavioural specifics
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cls",
    [
        SemaphoreReadersPriority,
        MonitorReadersPriority,
        SerializerReadersPriority,
        PathReadersPriority,
    ],
    ids=impl_id,
)
def test_readers_actually_share(cls):
    """Two readers with long critical sections must overlap."""
    sched = Scheduler()
    impl = cls(sched)
    active = {"n": 0}
    peak = {"max": 0}

    def reader():
        yield from impl.read(work=0)

    # Use the trace to detect overlap instead of instrumenting read bodies.
    def long_reader(name):
        def body():
            yield from impl.read(work=4)
        return body

    sched.spawn(long_reader("a"), name="Ra")
    sched.spawn(long_reader("b"), name="Rb")
    result = sched.run()
    starts = [ev for ev in result.trace if ev.kind == "op_start" and ev.obj == "db.read"]
    ends = [ev for ev in result.trace if ev.kind == "op_end" and ev.obj == "db.read"]
    assert len(starts) == 2
    # Overlap: the second start happens before the first end.
    assert starts[1].seq < ends[0].seq, "readers did not share the resource"
    del active, peak, reader


@pytest.mark.parametrize("cls", ALL_IMPLS, ids=impl_id)
def test_reads_return_written_values(cls):
    """Data integrity: each read returns the latest committed write."""
    sched = Scheduler()
    impl = cls(sched)
    observed = []

    def writer():
        yield from impl.write(7, work=1)

    def reader():
        yield from sched.sleep(3)
        value = yield from impl.read(work=1)
        observed.append(value)

    sched.spawn(writer, name="W")
    sched.spawn(reader, name="R")
    sched.run()
    assert observed == [7]


def test_path_fcfs_is_serial_by_construction():
    """The honest base-path FCFS solution gives up reader concurrency —
    the documented degradation (§4.2)."""
    sched = Scheduler()
    impl = PathRWFcfs(sched)

    def reader(name):
        def body():
            yield from impl.read(work=4)
        return body

    sched.spawn(reader("a"), name="Ra")
    sched.spawn(reader("b"), name="Rb")
    result = sched.run()
    starts = [ev for ev in result.trace if ev.kind == "op_start" and ev.obj == "db.read"]
    ends = [ev for ev in result.trace if ev.kind == "op_end" and ev.obj == "db.read"]
    assert starts[1].seq > ends[0].seq, "admission gate should serialize"


@pytest.mark.parametrize(
    "problem,cls",
    [
        ("readers_priority", MonitorReadersPriority),
        ("writers_priority", MonitorWritersPriority),
        ("rw_fcfs", MonitorRWFcfs),
        ("readers_priority", SerializerReadersPriority),
        ("readers_priority", PathReadersPriority),
        ("writers_priority", PathWritersPriority),
    ],
)
def test_make_verifier_passes_for_correct_solutions(problem, cls):
    verifier = make_verifier(lambda sched: cls(sched), problem)
    assert verifier() == []


def test_make_verifier_catches_broken_solution():
    """A deliberately broken 'solution' (no synchronization at all) must be
    caught by the battery."""

    class Broken(SemaphoreReadersPriority):
        def write(self, value, work=1):
            self._request("write")
            self._start("write")
            yield from self.db.write(value)
            yield from self._work(work)
            self._finish("write")

    verifier = make_verifier(lambda sched: Broken(sched), "readers_priority")
    assert verifier() != []


def test_writers_priority_blocks_new_readers():
    """While writers are waiting, an arriving reader must not slip in
    (writers-priority semantics), for every mechanism."""
    for cls in WRITERS_PRIORITY_IMPLS:
        sched = Scheduler()
        impl = cls(sched)
        order = []

        def early_reader():
            value = yield from impl.read(work=6)
            order.append("R1")

        def writer():
            yield from sched.sleep(1)
            yield from impl.write(1, work=1)
            order.append("W")

        def late_reader():
            yield from sched.sleep(2)
            yield from impl.read(work=1)
            order.append("R2")

        sched.spawn(early_reader, name="R1")
        sched.spawn(writer, name="W")
        sched.spawn(late_reader, name="R2")
        sched.run()
        assert order.index("W") < order.index("R2"), cls.__name__
