"""Tests for buffered (capacity > 0) channels: asynchronous sends, blocking
at capacity, FIFO draining, refill from parked senders, and select arms."""

import pytest

from repro.mechanisms import Channel, ReceiveOp, SendOp, select
from repro.runtime import RandomPolicy, Scheduler


def test_negative_capacity_rejected():
    with pytest.raises(ValueError):
        Channel(Scheduler(), capacity=-1)


def test_buffered_send_does_not_block_until_full():
    sched = Scheduler()
    chan = Channel(sched, "c", capacity=2)
    progress = []

    def sender():
        yield from chan.send(1)
        progress.append("one")
        yield from chan.send(2)
        progress.append("two")
        yield from chan.send(3)  # buffer full: blocks
        progress.append("three")

    sched.spawn(sender, name="s")
    result = sched.run(on_deadlock="return")
    assert progress == ["one", "two"]
    assert result.blocked == ["s"]
    assert chan.buffered == 2


def test_buffered_fifo_order():
    sched = Scheduler()
    chan = Channel(sched, "c", capacity=3)
    got = []

    def sender():
        for v in ("a", "b", "c"):
            yield from chan.send(v)

    def receiver():
        yield
        for __ in range(3):
            got.append((yield from chan.receive()))

    sched.spawn(sender, name="s")
    sched.spawn(receiver, name="r")
    sched.run()
    assert got == ["a", "b", "c"]


def test_receive_refills_from_parked_sender():
    """When a slot frees up, the oldest blocked sender completes and its
    value lands in the buffer, preserving order."""
    sched = Scheduler()
    chan = Channel(sched, "c", capacity=1)
    got = []
    sent = []

    def sender():
        for v in (1, 2, 3):
            yield from chan.send(v)
            sent.append(v)

    def receiver():
        yield
        for __ in range(3):
            got.append((yield from chan.receive()))
            yield

    sched.spawn(sender, name="s")
    sched.spawn(receiver, name="r")
    sched.run()
    assert got == [1, 2, 3]
    assert sent == [1, 2, 3]


def test_receiver_waiting_gets_direct_delivery():
    """A parked receiver is served before the buffer is used."""
    sched = Scheduler()
    chan = Channel(sched, "c", capacity=5)
    got = []

    def receiver():
        got.append((yield from chan.receive()))

    def sender():
        yield
        yield from chan.send("direct")

    sched.spawn(receiver, name="r")
    sched.spawn(sender, name="s")
    sched.run()
    assert got == ["direct"]
    assert chan.buffered == 0


def test_select_receive_arm_drains_buffer():
    sched = Scheduler()
    a = Channel(sched, "a", capacity=2)
    b = Channel(sched, "b", capacity=2)
    picked = []

    def prefill():
        yield from b.send(9)

    def selector():
        yield
        index, value = yield from select(sched, [ReceiveOp(a), ReceiveOp(b)])
        picked.append((index, value))

    sched.spawn(prefill, name="p")
    sched.spawn(selector, name="sel")
    sched.run()
    assert picked == [(1, 9)]


def test_select_send_arm_uses_buffer_space():
    sched = Scheduler()
    chan = Channel(sched, "c", capacity=1)
    picked = []

    def selector():
        index, value = yield from select(sched, [SendOp(chan, 42)])
        picked.append((index, value))

    sched.spawn(selector, name="sel")
    sched.run()
    assert picked == [(0, None)]
    assert chan.buffered == 1


def test_buffered_conservation_under_random_schedules():
    for seed in (0, 1, 2):
        sched = Scheduler(policy=RandomPolicy(seed))
        chan = Channel(sched, "c", capacity=2)
        got = []

        def sender(base):
            def body():
                for i in range(4):
                    yield from chan.send(base + i)
            return body

        def receiver():
            for __ in range(8):
                got.append((yield from chan.receive()))

        sched.spawn(sender(100), name="s1")
        sched.spawn(sender(200), name="s2")
        sched.spawn(receiver, name="r")
        result = sched.run()
        assert not result.deadlocked
        assert sorted(got) == [100, 101, 102, 103, 200, 201, 202, 203]


def test_rendezvous_channels_unchanged():
    """Capacity 0 keeps strict rendezvous semantics."""
    sched = Scheduler()
    chan = Channel(sched, "c")
    assert chan.capacity == 0
    assert chan.buffered == 0

    def sender():
        yield from chan.send(1)

    sched.spawn(sender, name="s")
    result = sched.run(on_deadlock="return")
    assert result.blocked == ["s"]
