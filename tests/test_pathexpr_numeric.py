"""Tests for the Flon–Habermann numeric operator (``path N : body end``):
parsing, unparsing, and the compiled N-cycles-in-flight semantics."""

import pytest

from repro.mechanisms.pathexpr import (
    PathResource,
    PathSyntaxError,
    parse_path,
)
from repro.runtime import Scheduler


def test_parse_multiplicity():
    path = parse_path("path 3 : ( put ; get ) end")
    assert path.multiplicity == 3
    assert path.operation_names() == {"put", "get"}


def test_default_multiplicity_is_one():
    assert parse_path("path a end").multiplicity == 1


def test_unparse_includes_multiplicity():
    path = parse_path("path 4 : ( a , b ) end")
    assert parse_path(path.unparse()) == path
    assert "4 :" in path.unparse()


def test_zero_multiplicity_rejected():
    with pytest.raises(PathSyntaxError):
        parse_path("path 0 : ( a ) end")


def test_number_without_colon_rejected():
    with pytest.raises(PathSyntaxError):
        parse_path("path 3 a end")


def test_numeric_bounds_cycles_in_flight():
    """path 2 : (acquire ; release) end — at most 2 unreleased acquires."""
    sched = Scheduler()
    res = PathResource(
        sched, "path 2 : ( acquire ; release ) end", name="r"
    )
    held = {"n": 0, "peak": 0}

    def acquiring(res_):
        held["n"] += 1
        held["peak"] = max(held["peak"], held["n"])
        yield

    def releasing(res_):
        held["n"] -= 1
        yield

    res.define("acquire", acquiring)
    res.define("release", releasing)

    def user():
        yield from res.invoke("acquire")
        yield
        yield from res.invoke("release")

    for i in range(5):
        sched.spawn(user, name="U{}".format(i))
    sched.run()
    assert held["peak"] == 2
    assert held["n"] == 0


def test_numeric_one_is_plain_alternation():
    sched = Scheduler()
    res = PathResource(sched, "path 1 : ( put ; get ) end", name="r")
    order = []

    def invoke(op):
        def body():
            yield from res.invoke(op)
            order.append(op)
        return body

    sched.spawn(invoke("get"), name="G")
    sched.spawn(invoke("put"), name="P")
    sched.run()
    assert order == ["put", "get"]


def test_numeric_with_selection_inside():
    """path 2 : ( (a , b) ; c ) end — two in-flight cycles, each one a-or-b
    followed by c."""
    sched = Scheduler()
    res = PathResource(sched, "path 2 : ( (a , b) ; c ) end", name="r")
    counts = {"openings": 0, "closings": 0, "peak": 0}

    def opening(res_):
        counts["openings"] += 1
        counts["peak"] = max(
            counts["peak"], counts["openings"] - counts["closings"]
        )
        yield

    def closing(res_):
        counts["closings"] += 1
        yield

    res.define("a", opening)
    res.define("b", opening)
    res.define("c", closing)

    def user(op):
        def body():
            yield from res.invoke(op)
            yield from res.invoke("c")
        return body

    for i, op in enumerate(["a", "b", "a"]):
        sched.spawn(user(op), name="U{}".format(i))
    sched.run()
    assert counts["peak"] <= 2
    assert counts["openings"] == counts["closings"] == 3


def test_bounded_buffer_shape_via_numeric_operator():
    """The motivating use: puts run at most N ahead of gets."""
    sched = Scheduler()
    res = PathResource(
        sched,
        ["path 3 : ( put ; get ) end", "path put , get end"],
        name="buf",
    )
    lead = {"value": 0, "peak": 0}

    def putting(res_):
        lead["value"] += 1
        lead["peak"] = max(lead["peak"], lead["value"])
        yield

    def getting(res_):
        lead["value"] -= 1
        yield

    res.define("put", putting)
    res.define("get", getting)

    def producer():
        for __ in range(6):
            yield from res.invoke("put")

    def consumer():
        # Start only after the producer has hit the capacity wall: virtual
        # time advances only when nothing is runnable, i.e. once the
        # producer is blocked by the numeric bound.
        yield from sched.sleep(1)
        for __ in range(6):
            yield from res.invoke("get")

    sched.spawn(producer, name="P")
    sched.spawn(consumer, name="C")
    sched.run()
    assert lead["peak"] == 3
    assert lead["value"] == 0
