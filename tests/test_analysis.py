"""Unit + integration tests for the analysis layer: diffing, modification
reports, independence probes, conflict detection, and size metrics — ending
with the paper's §5 verdicts reproduced from the real registry."""

import pytest

from repro.analysis import (
    detect_info_conflicts,
    diff_components,
    measure,
    measure_all,
    modification_report,
    per_mechanism_totals,
    render_independence,
    render_sizes,
    render_totals,
    run_probes,
    summarize_independence,
)
from repro.core import (
    Component,
    ConstraintRealization,
    Directness,
    ModularityProfile,
    SolutionDescription,
)
from repro.problems.registry import all_solutions


def make(problem, mechanism, components, realizations):
    return SolutionDescription(
        problem=problem,
        mechanism=mechanism,
        components=tuple(components),
        realizations=tuple(realizations),
        modularity=ModularityProfile(True, True, True),
    )


# ----------------------------------------------------------------------
# diff_components
# ----------------------------------------------------------------------
def test_diff_identical():
    comps = [Component("a", "path", "x"), Component("b", "condition", "y")]
    diff = diff_components(comps, comps)
    assert diff.touched == 0
    assert diff.change_fraction == 0.0
    assert diff.unchanged == ("a", "b")


def test_diff_added_removed_changed():
    source = [Component("a", "path", "1"), Component("b", "path", "2")]
    target = [Component("b", "path", "CHANGED"), Component("c", "path", "3")]
    diff = diff_components(source, target)
    assert diff.added == ("c",)
    assert diff.removed == ("a",)
    assert diff.changed == ("b",)
    assert diff.touched == 3
    assert diff.total == 3
    assert diff.change_fraction == 1.0


def test_diff_kind_change_counts_as_changed():
    source = [Component("a", "condition", "")]
    target = [Component("a", "queue", "")]
    assert diff_components(source, target).changed == ("a",)


def test_diff_empty_inputs():
    diff = diff_components([], [])
    assert diff.change_fraction == 0.0


# ----------------------------------------------------------------------
# modification_report
# ----------------------------------------------------------------------
def _realization(cid, comps):
    return ConstraintRealization(cid, tuple(comps), (), Directness.DIRECT)


def test_modification_report_stable_shared_constraint():
    shared = Component("core", "procedure", "same text")
    a = make("p1", "m", [shared, Component("prio", "procedure", "A")],
             [_realization("shared_c", ["core"]),
              _realization("pa", ["prio"])])
    b = make("p2", "m", [shared, Component("prio", "procedure", "B")],
             [_realization("shared_c", ["core"]),
              _realization("pb", ["prio"])])
    report = modification_report(a, b, ["shared_c"])
    assert report.shared_constraints_stable
    assert report.stable_shared == ("shared_c",)
    assert report.diff.changed == ("prio",)


def test_modification_report_rewritten_shared_constraint():
    a = make("p1", "m", [Component("core", "procedure", "v1")],
             [_realization("shared_c", ["core"])])
    b = make("p2", "m", [Component("core", "procedure", "v2")],
             [_realization("shared_c", ["core"])])
    report = modification_report(a, b, ["shared_c"])
    assert not report.shared_constraints_stable
    assert report.unstable_shared == ("shared_c",)


def test_modification_report_missing_realization_is_unstable():
    a = make("p1", "m", [Component("x", "path")], [_realization("c", ["x"])])
    b = make("p2", "m", [Component("x", "path")], [])
    report = modification_report(a, b, ["c"])
    assert report.unstable_shared == ("c",)


def test_modification_report_rejects_cross_mechanism():
    a = make("p1", "monitor", [], [])
    b = make("p2", "serializer", [], [])
    with pytest.raises(ValueError):
        modification_report(a, b)


def test_modification_report_render():
    a = make("p1", "m", [Component("x", "path", "1")],
             [_realization("c", ["x"])])
    b = make("p2", "m", [Component("x", "path", "2")],
             [_realization("c", ["x"])])
    text = modification_report(a, b, ["c"]).render()
    assert "p1 -> p2" in text
    assert "REWRITTEN" in text


# ----------------------------------------------------------------------
# Probes and conflicts on synthetic data
# ----------------------------------------------------------------------
def test_run_probes_reports_missing_pairs():
    descriptions = [
        make("readers_priority", "exotic", [], []),
        # no writers_priority/exotic solution
    ]
    results = run_probes(descriptions)
    exotic = [r for r in results if r.mechanism == "exotic"]
    assert all(r.report is None for r in exotic)
    assert all(r.independent is None for r in exotic)


def test_detect_info_conflicts():
    description = make(
        "rw_fcfs", "monitor",
        [Component("q", "condition")],
        [ConstraintRealization(
            "arrival_order", ("q",), ("two_stage_queue",), Directness.DIRECT
        )],
    )
    conflicts = detect_info_conflicts([description])
    assert conflicts == {"monitor": ["rw_fcfs/arrival_order"]}


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_measure_counts_gates_and_volume():
    description = make(
        "p", "m",
        [
            Component("g1", "sync_procedure", "abc"),
            Component("g2", "sync_procedure", "de"),
            Component("c", "condition", ""),
        ],
        [],
    )
    size = measure(description)
    assert size.gates == 2
    assert size.components == 3
    assert size.text_volume == 5


def test_per_mechanism_totals():
    a = make("p1", "m", [Component("x", "path", "12")], [])
    b = make("p2", "m", [Component("y", "sync_procedure", "3")], [])
    totals = per_mechanism_totals(measure_all([a, b]))
    assert totals["m"]["solutions"] == 2
    assert totals["m"]["gates"] == 1
    assert totals["m"]["text_volume"] == 3


def test_renderers_produce_tables():
    sizes = measure_all(e.description for e in all_solutions())
    assert "components" in render_sizes(sizes)
    assert "mechanism" in render_totals(per_mechanism_totals(sizes))


# ----------------------------------------------------------------------
# The paper's §5 verdicts, from the real registry
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def registry_summaries():
    descriptions = [e.description for e in all_solutions()]
    return summarize_independence(descriptions)


def test_paper_verdict_pathexpr_violated(registry_summaries):
    """§5.1.2: 'A modification to one constraint involves changing the
    entire solution.'"""
    summary = registry_summaries["pathexpr"]
    assert summary.verdict == "VIOLATED"
    assert summary.mean_change_fraction == 1.0


def test_paper_verdict_monitor_conflict_only(registry_summaries):
    """§5.2: independent except the T1xT2 queue conflict (two-stage fix)."""
    summary = registry_summaries["monitor"]
    assert summary.verdict == "partially violated"
    priority_flip = [
        p for p in summary.probes
        if p.probe == ("readers_priority", "writers_priority")
    ][0]
    assert priority_flip.independent is True
    conflict_probe = [
        p for p in summary.probes
        if p.probe == ("readers_priority", "rw_fcfs")
    ][0]
    assert conflict_probe.independent is False
    assert summary.conflicts == ["rw_fcfs/arrival_order"]


def test_paper_verdict_serializer_independent(registry_summaries):
    """§5.2: serializers keep constraints independent; automatic signals
    separate request time from request type."""
    summary = registry_summaries["serializer"]
    assert summary.verdict == "independent"


def test_paper_verdict_semaphore_violated(registry_summaries):
    """The CHP problem-2 explosion: almost everything rewritten."""
    summary = registry_summaries["semaphore"]
    assert summary.verdict == "VIOLATED"
    assert summary.mean_change_fraction > 0.8


def test_monitor_priority_flip_is_small(registry_summaries):
    """'The difficulty in making modifications corresponded to the extent
    of the change desired' — the monitor flip touches ~2 components."""
    flip = [
        p for p in registry_summaries["monitor"].probes
        if p.probe == ("readers_priority", "writers_priority")
    ][0]
    assert flip.report.diff.touched <= 2


def test_render_independence_table(registry_summaries):
    text = render_independence(registry_summaries)
    assert "rw_exclusion:stable" in text
    assert "VIOLATED" in text
