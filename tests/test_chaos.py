"""Chaos exploration: fault points x schedules, run classification, the
robustness report, and the explorer-driven T6 safety check.

Fast deterministic subsets run in tier-1; the full sweeps (every fault
point, full schedule budget) are ``@pytest.mark.slow``.
"""

import pytest

from repro.problems.one_slot_buffer.impls import (
    MonitorOneSlotBuffer,
    PathOneSlotBuffer,
    SemaphoreOneSlotBuffer,
    SerializerOneSlotBuffer,
)
from repro.runtime import FaultPlan, Scheduler
from repro.verify import ScheduleExplorer, check_alternation
from repro.verify.chaos import (
    CONTAINING,
    DEADLOCKING,
    PROPAGATING,
    STEP_LIMITED,
    ChaosResult,
    PointOutcome,
    FaultPoint,
    chaos_explore,
    classify_run,
    enumerate_fault_points,
    expected_classifications,
    robustness_report,
    _mutex_scenario,
    _sem_scenario,
)


# ----------------------------------------------------------------------
# classify_run
# ----------------------------------------------------------------------
def _run_with(plan, bodies, names, **kwargs):
    sched = Scheduler(fault_plan=plan, preemptive=True)
    for body, name in zip(bodies, names):
        sched.spawn(body(sched), name=name)
    return sched.run(on_deadlock="return", on_error="record", **kwargs)


class TestClassifyRun:
    def _simple_run(self, plan):
        def victim(sched):
            def body():
                for __ in range(4):
                    yield
            return body
        def bystander(sched):
            def body():
                yield
            return body
        return _run_with(plan, [victim, bystander], ["V", "B"])

    def test_missed_when_kill_never_fires(self):
        run = self._simple_run(FaultPlan().kill("V", at_step=99))
        label, messages = classify_run(run, "V")
        assert label == "missed" and messages == []

    def test_containing_when_only_victim_dies(self):
        run = self._simple_run(FaultPlan().kill("V", at_step=1))
        label, __ = classify_run(run, "V")
        assert label == CONTAINING

    def test_deadlocking_when_survivors_wedge(self):
        from repro.runtime import Semaphore

        plan = FaultPlan().kill("V", on_entry="s")
        sched = Scheduler(fault_plan=plan, preemptive=True)
        sem = Semaphore(sched, initial=1, name="s")

        def worker():
            yield from sem.p()
            yield from sched.checkpoint()
            sem.v()

        sched.spawn(worker, name="V")
        sched.spawn(worker, name="B")
        run = sched.run(on_deadlock="return", on_error="record")
        label, __ = classify_run(run, "V")
        assert label == DEADLOCKING

    def test_propagating_when_another_process_dies(self):
        def victim(sched):
            def body():
                yield
                yield
            return body

        def collateral(sched):
            def body():
                yield
                yield
                yield
                raise RuntimeError("collateral damage")
            return body

        run = _run_with(
            FaultPlan().kill("V", at_step=1), [victim, collateral], ["V", "C"]
        )
        label, __ = classify_run(run, "V")
        assert label == PROPAGATING

    def test_propagating_when_oracle_complains(self):
        run = self._simple_run(FaultPlan().kill("V", at_step=1))
        label, messages = classify_run(
            run, "V", check=lambda r: ["constraint broken"]
        )
        assert label == PROPAGATING
        assert messages == ["constraint broken"]


# ----------------------------------------------------------------------
# Fault-point enumeration and aggregation
# ----------------------------------------------------------------------
class TestFaultPoints:
    def test_enumerate_covers_every_victim_step(self):
        points = enumerate_fault_points(_mutex_scenario(), "P0")
        assert points  # the victim takes at least one step
        assert [p.step for p in points] == list(range(len(points)))
        assert all(p.process == "P0" for p in points)

    def test_chaos_result_classification_precedence(self):
        result = ChaosResult(name="x", victim="P0")
        result.outcomes.append(PointOutcome(
            point=FaultPoint("P0", 0), runs=3, contained=2, propagated=1,
        ))
        assert result.classification == PROPAGATING
        result.outcomes.append(PointOutcome(
            point=FaultPoint("P0", 1), runs=1, deadlocked=1,
        ))
        assert result.classification == DEADLOCKING  # worst outcome wins


# ----------------------------------------------------------------------
# chaos_explore on single scenarios (fast, deterministic)
# ----------------------------------------------------------------------
class TestChaosExplore:
    def test_mutex_scenario_contains_faults(self):
        result = chaos_explore(
            "mutex", _mutex_scenario(), "P0",
            max_runs_per_point=6, max_points=3,
        )
        assert result.classification == CONTAINING
        assert result.contained > 0
        assert result.propagated == 0 and result.deadlocked == 0

    def test_raw_semaphore_scenario_deadlocks(self):
        result = chaos_explore(
            "semaphore", _sem_scenario(crash_release=False), "P0",
            max_runs_per_point=6, max_points=4,
        )
        assert result.classification == DEADLOCKING
        assert result.deadlocked > 0

    def test_fast_report_matches_fault_model(self):
        results, table = robustness_report(fast=True)
        got = {r.name: r.classification for r in results}
        assert got == expected_classifications()
        # The table renders one row per scenario plus a header.
        for r in results:
            assert r.name in table


@pytest.mark.slow
def test_full_report_matches_fault_model():
    results, __ = robustness_report(fast=False)
    got = {r.name: r.classification for r in results}
    assert got == expected_classifications()


# ----------------------------------------------------------------------
# T6 under fire: one-slot buffer alternation with one injected kill
# ----------------------------------------------------------------------
def _buffer_build(impl_cls):
    """A producer/consumer pair over one buffer; fault-plan-parameterized."""

    def build(policy, plan):
        sched = Scheduler(policy=policy, preemptive=True, fault_plan=plan)
        buf = impl_cls(sched, name="slot")

        def producer():
            for i in range(2):
                yield from buf.put(i)

        def consumer():
            for __ in range(2):
                yield from buf.get()

        sched.spawn(producer, name="Prod")
        sched.spawn(consumer, name="Cons")
        return sched.run(on_deadlock="return", on_error="record")

    return build


def _assert_alternation_under_kill(impl_cls, runs_per_point, max_points=None):
    """T6 (slot alternation) must hold in every schedule of every faulted
    run: a crash may stall the buffer (deadlock) or propagate an integrity
    error, but a get must never overtake its put."""
    build = _buffer_build(impl_cls)
    points = enumerate_fault_points(build, "Prod")
    assert points
    if max_points is not None:
        points = points[:max_points]
    total = 0
    for point in points:
        plan = FaultPlan().kill(point.process, at_step=point.step)

        def check(run):
            return check_alternation(run.trace, "slot")

        outcome = ScheduleExplorer(
            lambda policy: build(policy, plan),
            max_runs=runs_per_point, max_depth=50,
        ).explore(check)
        assert outcome.violations == [], (
            "alternation broke for {} kill at step {}".format(
                impl_cls.__name__, point.step
            )
        )
        total += outcome.runs
    assert total >= len(points)  # every point actually explored


def test_t6_alternation_survives_kills_monitor_fast():
    _assert_alternation_under_kill(
        MonitorOneSlotBuffer, runs_per_point=8, max_points=4
    )


@pytest.mark.slow
@pytest.mark.parametrize("impl_cls", [
    PathOneSlotBuffer,
    SemaphoreOneSlotBuffer,
    MonitorOneSlotBuffer,
    SerializerOneSlotBuffer,
])
def test_t6_alternation_survives_kills_all_impls(impl_cls):
    _assert_alternation_under_kill(impl_cls, runs_per_point=40)


class TestStepLimitClassification:
    """Regression: a budget cutoff is not one label (satellite of the
    recovery PR).  Still-runnable at the limit = step-limited (livelock
    territory); nothing runnable = a wedge churning behind timers, which
    classifies as fault-deadlocking."""

    def test_step_limited_while_runnable_is_not_a_wedge(self):
        # A real livelock: two spinners never finish inside the budget but
        # are runnable the whole time.
        plan = FaultPlan().kill("P0", at_step=1)
        sched = Scheduler(fault_plan=plan, max_steps=30)

        def spinner():
            while True:
                yield

        sched.spawn(spinner, name="P0")
        sched.spawn(spinner, name="P1")
        run = sched.run(on_deadlock="return", on_error="record",
                        on_steplimit="return")
        assert run.step_limited
        assert run.ready  # still making progress at the cutoff
        label, messages = classify_run(run, "P0")
        assert label == STEP_LIMITED
        assert messages == []

    def test_step_limited_with_nothing_runnable_is_deadlocking(self):
        from repro.runtime.trace import RunResult, Trace

        run = RunResult(trace=Trace(), step_limited=True, ready=[])
        assert classify_run(run, "P0")[0] == DEADLOCKING

    def test_step_limit_checked_before_missed(self):
        # Even when the victim never died, a truncated run proves nothing:
        # the cutoff label wins over "missed".
        sched = Scheduler(max_steps=10)

        def spinner():
            while True:
                yield

        sched.spawn(spinner, name="P0")
        run = sched.run(on_steplimit="return")
        assert run.step_limited
        assert classify_run(run, "P0")[0] == STEP_LIMITED

    def test_outcome_counters_track_step_limited(self):
        outcome = PointOutcome(point=FaultPoint("P0", 0))
        assert outcome.step_limited == 0
        result = ChaosResult(name="x", victim="P0", outcomes=[outcome])
        outcome.step_limited += 1
        assert result.step_limited == 1
        assert result.classification == STEP_LIMITED
        # Precedence: any deadlock outranks the step-limit label.
        outcome.deadlocked += 1
        assert result.classification == DEADLOCKING
