"""Fault-injection runtime: kills, delays, dropped signals, and the
per-mechanism crash semantics (DESIGN.md "Fault model").

The acceptance bar: killing a process inside any of the six mechanisms must
never silently wedge the survivors — either they proceed (the mechanism's
crash cleanup ran) or the run ends in a deadlock whose wait-for graph names
the dead process.
"""

import pytest

from repro.mechanisms.channels import Channel
from repro.mechanisms.monitor import Monitor
from repro.mechanisms.pathexpr import PathResource
from repro.mechanisms.serializer import Serializer
from repro.runtime import (
    DeadlockError,
    FaultPlan,
    Mutex,
    PeerFailed,
    ProcessKilled,
    Scheduler,
    SchedulerStateError,
    Semaphore,
)


def _lock_workers(sched, enter, leave, n=3):
    """Spawn n workers that enter a critical region, log, and leave."""
    def worker():
        yield from enter()
        sched.log("cs", "r")
        yield from sched.checkpoint()
        result = leave()
        if result is not None:  # generator-style exit (yield from)
            yield from result
    for i in range(n):
        sched.spawn(worker, name="P{}".format(i))


# ----------------------------------------------------------------------
# FaultPlan trigger kinds
# ----------------------------------------------------------------------
class TestFaultPlanTriggers:
    def test_kill_at_step(self):
        plan = FaultPlan().kill("P0", at_step=2)
        sched = Scheduler(fault_plan=plan)

        def worker():
            for __ in range(10):
                yield

        sched.spawn(worker, name="P0")
        sched.spawn(worker, name="P1")
        result = sched.run(on_error="record")
        assert result.failed() == ["P0"]
        assert result.proc_steps["P0"] == 2  # died before its third step
        assert result.proc_steps["P1"] == 11
        assert "P1" in result.results

    def test_kill_on_entry_to_named_object(self):
        plan = FaultPlan().kill("P0", on_entry="m")
        sched = Scheduler(fault_plan=plan, preemptive=True)
        lock = Mutex(sched, name="m")
        _lock_workers(sched, lock.acquire, lambda: lock.release())
        result = sched.run(on_deadlock="return", on_error="record")
        assert result.failed() == ["P0"]
        # The victim died *after* acquiring: the kill is inside the region.
        assert any(
            ev.kind == "acquire" and ev.pname == "P0" for ev in result.trace
        )
        assert not result.deadlocked
        assert set(result.results) == {"P1", "P2"}

    def test_kill_at_virtual_time_hits_blocked_process(self):
        plan = FaultPlan().kill("P0", at_time=5)
        sched = Scheduler(fault_plan=plan)

        def sleeper():
            yield from sched.sleep(100)

        def clock():
            yield from sched.sleep(10)

        sched.spawn(sleeper, name="P0")
        sched.spawn(clock, name="P1")
        result = sched.run(on_deadlock="return", on_error="record")
        assert result.failed() == ["P0"]  # killed while blocked on its timer
        assert "P1" in result.results

    def test_delay_wakeups(self):
        plan = FaultPlan().delay_wakeups("P1", ticks=7)
        sched = Scheduler(fault_plan=plan)
        sem = Semaphore(sched, initial=0, name="s")

        def waiter():
            yield from sem.p()

        def signaller():
            yield
            sem.v()

        sched.spawn(waiter, name="P1")
        sched.spawn(signaller, name="P0")
        result = sched.run()
        assert result.trace.first(kind="wake_delayed") is not None
        assert set(result.results) == {"P0", "P1"}
        assert result.time == 7  # the wakeup arrived late, by the clock

    def test_drop_signal_loses_wakeup(self):
        plan = FaultPlan().drop_signal("s", nth=1)
        sched = Scheduler(fault_plan=plan)
        sem = Semaphore(sched, initial=0, name="s")

        def waiter():
            yield from sem.p()

        def signaller():
            yield
            sem.v()

        sched.spawn(waiter, name="P1")
        sched.spawn(signaller, name="P0")
        result = sched.run(on_deadlock="return")
        assert result.trace.first(kind="fault_drop") is not None
        assert result.deadlocked and result.blocked == ["P1"]

    def test_kill_requires_exactly_one_coordinate(self):
        with pytest.raises(ValueError):
            FaultPlan().kill("P0")
        with pytest.raises(ValueError):
            FaultPlan().kill("P0", at_step=1, at_time=2)

    def test_plan_reusable_across_runs(self):
        plan = FaultPlan().kill("P0", at_step=1)
        for __ in range(2):  # begin() re-arms fired faults
            sched = Scheduler(fault_plan=plan)

            def worker():
                for __ in range(5):
                    yield

            sched.spawn(worker, name="P0")
            result = sched.run(on_error="record")
            assert result.failed() == ["P0"]


# ----------------------------------------------------------------------
# Scheduler.kill contract
# ----------------------------------------------------------------------
class TestKill:
    def test_kill_runs_body_finally(self):
        sched = Scheduler(fault_plan=FaultPlan().kill("P0", at_step=1))
        observed = []

        def worker():
            try:
                for __ in range(5):
                    yield
            finally:
                observed.append("finally")

        sched.spawn(worker, name="P0")
        sched.run(on_error="record")
        assert observed == ["finally"]

    def test_killed_process_carries_exception(self):
        sched = Scheduler(fault_plan=FaultPlan().kill("P0", at_step=0))

        def worker():
            yield

        proc = sched.spawn(worker, name="P0")
        sched.run(on_error="record")
        assert isinstance(proc.exception, ProcessKilled)

    def test_kill_of_finished_process_rejected(self):
        sched = Scheduler()

        def worker():
            yield

        proc = sched.spawn(worker, name="P0")
        sched.run()
        with pytest.raises(SchedulerStateError):
            sched.kill(proc)


# ----------------------------------------------------------------------
# Wildcard drops and describe/repr consistency
# ----------------------------------------------------------------------
class TestFaultPlanWildcardAndDescribe:
    def test_wildcard_drop_counts_signals_on_any_object(self):
        # drop_signal("*", nth=2): the 2nd V/signal *anywhere* vanishes,
        # whatever object carries it.
        plan = FaultPlan().drop_signal("*", nth=2)
        sched = Scheduler(fault_plan=plan)
        s1 = Semaphore(sched, initial=0, name="s1")
        s2 = Semaphore(sched, initial=0, name="s2")

        def waiter(sem):
            def body():
                yield from sem.p()
            return body

        def signaller():
            yield
            s1.v()   # 1st signal overall: delivered
            s2.v()   # 2nd: dropped

        sched.spawn(waiter(s1), name="W1")
        sched.spawn(waiter(s2), name="W2")
        sched.spawn(signaller, name="P0")
        result = sched.run(on_deadlock="return")
        assert result.trace.first(kind="fault_drop") is not None
        assert "W1" in result.results
        assert result.blocked == ["W2"]

    def test_wildcard_and_exact_rules_keep_independent_counters(self):
        plan = FaultPlan().drop_signal("s1", nth=1).drop_signal("*", nth=2)
        plan.begin()
        assert plan.should_drop("s1")        # exact rule fires
        assert plan.should_drop("s2")        # wildcard's own 2nd signal
        assert not plan.should_drop("s2")

    def test_exact_rules_on_one_object_compose(self):
        # Two entries on the same object drop its first two signals.
        plan = FaultPlan().drop_signal("s", nth=1).drop_signal("s", nth=2)
        plan.begin()
        assert plan.should_drop("s")
        assert plan.should_drop("s")
        assert not plan.should_drop("s")

    def test_describe_repr_round_trip(self):
        plan = (FaultPlan()
                .kill("P0", at_step=2)
                .kill("P1", on_entry="m")
                .kill("P2", at_time=9)
                .delay_wakeups("*", ticks=3)
                .drop_signal("*", nth=2)
                .drop_signal("c", nth=1))
        rendered = repr(plan)
        for line in plan.describe():
            assert line in rendered
        assert "delay wakeups of * by 3 ticks" in rendered
        assert "drop signal #2 on any object" in rendered
        assert "drop signal #1 on c" in rendered

    def test_dict_round_trip(self):
        # The resilience search serializes its crash witnesses (the
        # BENCH_resilience.json artifact), so the dict form must rebuild
        # a plan that describes — and therefore fires — identically.
        plan = (FaultPlan()
                .kill("P0", at_step=2)
                .kill("P1", on_entry="m")
                .kill("P2", at_time=9)
                .delay_wakeups("sup", ticks=3)
                .drop_signal("c", nth=2))
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone.to_dict() == plan.to_dict()
        assert clone.describe() == plan.describe()
        # Behavioural spot-checks on the rebuilt triggers.
        clone.begin()
        assert clone.kill_due("P2", steps=0, now=9) is not None
        assert clone.kill_due("P3", steps=0, now=9) is None
        assert clone.wake_delay("sup") == 3
        assert clone.wake_delay("P0") == 0
        assert not clone.should_drop("c")
        assert clone.should_drop("c")


# ----------------------------------------------------------------------
# Channel quarantine lift (crash_reclaim) edge cases
# ----------------------------------------------------------------------
class TestChannelCrashReclaim:
    def test_reclaim_preserves_buffered_items_from_dead_sender(self):
        sched = Scheduler()
        chan = Channel(sched, name="c", capacity=2, peer_fault="break")

        def sender():
            yield from chan.send("a")
            yield from chan.send("b")
            raise RuntimeError("boom")

        def supervisor():
            while not chan.broken:
                yield from sched.sleep(1)
            corpse = next(p for p in sched.processes if p.name == "S")
            assert chan.crash_reclaim(corpse) == "reset"
            first = yield from chan.receive()
            second = yield from chan.receive()
            return [first, second]

        sched.spawn(sender, name="S")
        sched.spawn(supervisor, name="R")
        result = sched.run(on_error="record")
        # The quarantine lifted and the pre-crash sends survived it.
        assert result.results["R"] == ["a", "b"]
        assert result.trace.first(kind="chan_reset") is not None

    def test_reclaim_races_a_delayed_peer_failed_delivery(self):
        # The receiver is parked when the channel breaks; its PeerFailed
        # wakeup is delayed by a fault plan, and the quarantine lifts
        # *before* the delivery lands.  The in-flight failure must still
        # arrive (the break really happened), but a retry then succeeds
        # against the reset channel.
        plan = FaultPlan().delay_wakeups("R", ticks=5)
        sched = Scheduler(fault_plan=plan)
        chan = Channel(sched, name="c", peer_fault="break")

        def dying_user():
            yield
            raise RuntimeError("boom")

        def receiver():
            try:
                value = yield from chan.receive()
                return ("got", value)
            except PeerFailed:
                assert not chan.broken  # reclaim already lifted it
                value = yield from chan.receive(timeout=30)
                return ("retried", value)

        def late_sender():
            yield from sched.sleep(8)
            yield from chan.send("fresh")

        corpse = sched.spawn(dying_user, name="S")
        chan.link(corpse)
        sched.spawn(receiver, name="R")
        sched.spawn(late_sender, name="L")

        def supervisor():
            while not chan.broken:
                yield from sched.sleep(1)
            assert chan.crash_reclaim(corpse) == "reset"

        sched.spawn(supervisor, name="Sup")
        result = sched.run(on_error="record")
        assert result.results["R"] == ("retried", "fresh")
        assert result.trace.first(kind="chan_break") is not None
        assert result.trace.first(kind="chan_reset") is not None

    def test_reclaim_by_non_user_keeps_the_quarantine(self):
        sched = Scheduler()
        chan = Channel(sched, name="c", peer_fault="break")

        def dying_user():
            yield
            raise RuntimeError("boom")

        def bystander():
            yield from sched.sleep(3)

        corpse = sched.spawn(dying_user, name="S")
        chan.link(corpse)
        other = sched.spawn(bystander, name="B")
        result = sched.run(on_error="record")
        assert chan.broken
        # A process that never used the channel cannot lift its quarantine.
        assert chan.crash_reclaim(other) is None
        assert chan.broken
        assert result.failed() == ["S"]


# ----------------------------------------------------------------------
# Kill inside the critical region, per mechanism
# ----------------------------------------------------------------------
class TestCrashSemantics:
    """Survivors must progress (or a graph must name the dead)."""

    def test_mutex_holder_death_releases_to_next(self):
        plan = FaultPlan().kill("P0", on_entry="m")
        sched = Scheduler(fault_plan=plan, preemptive=True)
        lock = Mutex(sched, name="m")
        _lock_workers(sched, lock.acquire, lambda: lock.release())
        result = sched.run(on_deadlock="return", on_error="record")
        assert not result.deadlocked
        assert set(result.results) == {"P1", "P2"}
        released = result.trace.first(
            kind="release", predicate=lambda ev: ev.detail is not None
            and "crash_release" in str(ev.detail)
        )
        assert released is not None

    def test_raw_semaphore_holder_death_deadlocks_with_named_corpse(self):
        plan = FaultPlan().kill("P0", on_entry="s")
        sched = Scheduler(fault_plan=plan, preemptive=True)
        sem = Semaphore(sched, initial=1, name="s")
        _lock_workers(sched, sem.p, lambda: sem.v())
        result = sched.run(on_deadlock="return", on_error="record")
        assert result.deadlocked
        assert result.graph is not None
        rendered = result.graph.render()
        assert "P0[dead]" in rendered  # the corpse is named as holder
        assert "semaphore s" in rendered

    def test_semaphore_crash_release_contains_the_fault(self):
        plan = FaultPlan().kill("P0", on_entry="s")
        sched = Scheduler(fault_plan=plan, preemptive=True)
        sem = Semaphore(sched, initial=1, name="s", crash_release=True)
        _lock_workers(sched, sem.p, lambda: sem.v())
        result = sched.run(on_deadlock="return", on_error="record")
        assert not result.deadlocked
        assert set(result.results) == {"P1", "P2"}

    def test_semaphore_handoff_window_death_returns_permit(self):
        # P0 holds; P1 and P2 parked.  P0 Vs (permit granted directly to
        # P1) and P1 is killed at its resume step — before its p() returns.
        # The in-flight permit must be re-granted, not lost.
        plan = FaultPlan().kill("P1", at_step=1)
        sched = Scheduler(fault_plan=plan)
        sem = Semaphore(sched, initial=1, name="s")

        def holder():
            yield from sem.p()
            yield
            sem.v()  # direct handoff to the parked P1

        def waiter():
            yield from sem.p()  # parks: one step completed
            sem.v()

        sched.spawn(holder, name="P0")
        sched.spawn(waiter, name="P1")
        sched.spawn(waiter, name="P2")
        result = sched.run(on_deadlock="return", on_error="record")
        assert result.failed() == ["P1"]
        assert not result.deadlocked
        assert set(result.results) == {"P0", "P2"}

    def test_monitor_occupant_death_passes_possession(self):
        plan = FaultPlan().kill("P0", on_entry="mon")
        sched = Scheduler(fault_plan=plan, preemptive=True)
        mon = Monitor(sched, name="mon")
        _lock_workers(sched, mon.enter, lambda: mon.exit())
        result = sched.run(on_deadlock="return", on_error="record")
        assert not result.deadlocked
        assert set(result.results) == {"P1", "P2"}

    def test_monitor_condition_waiter_death_is_dequeued(self):
        # at_time kills fire even while the victim is blocked on the queue.
        plan = FaultPlan().kill("P0", at_time=5)
        sched = Scheduler(fault_plan=plan)
        mon = Monitor(sched, name="mon")
        cond = mon.condition("c")

        def waiter():
            yield from mon.enter()
            yield from cond.wait()
            mon.exit()

        def signaller():
            yield from sched.sleep(10)  # advance the clock past the kill
            yield from mon.enter()
            yield from cond.signal()
            mon.exit()

        sched.spawn(waiter, name="P0")
        sched.spawn(waiter, name="P1")
        sched.spawn(signaller, name="P2")
        result = sched.run(on_deadlock="return", on_error="record")
        # One waiter died on the condition queue; the signal must wake the
        # live one, not the corpse.
        assert "P0" in result.failed()
        assert "P1" in result.results and "P2" in result.results

    def test_serializer_crowd_member_death_reopens_resource(self):
        plan = FaultPlan().kill("P0", on_entry="c")
        sched = Scheduler(fault_plan=plan, preemptive=True)
        ser = Serializer(sched, name="ser")
        q = ser.queue("q")
        crowd = ser.crowd("c")

        def worker():
            yield from ser.enter()
            yield from ser.enqueue(q, guarantee=lambda: crowd.empty)
            yield from ser.join_crowd(crowd)
            yield from sched.checkpoint()
            yield from ser.leave_crowd(crowd)
            ser.exit()

        for i in range(3):
            sched.spawn(worker, name="P{}".format(i))
        result = sched.run(on_deadlock="return", on_error="record")
        assert not result.deadlocked
        assert set(result.results) == {"P1", "P2"}
        crash_leave = result.trace.first(kind="leave_crowd", obj="c",
                                         predicate=lambda e: e.detail == "crash")
        assert crash_leave is not None

    def test_pathexpr_mid_body_death_repairs_network(self):
        plan = FaultPlan().kill("P0", on_entry="r.work")
        sched = Scheduler(fault_plan=plan, preemptive=True)
        res = PathResource(sched, "path work end", name="r")

        def body(r):
            yield from sched.checkpoint()

        res.define("work", body)

        def worker():
            yield from res.invoke("work")

        for i in range(3):
            sched.spawn(worker, name="P{}".format(i))
        result = sched.run(on_deadlock="return", on_error="record")
        assert not result.deadlocked
        assert set(result.results) == {"P1", "P2"}
        assert result.trace.first(kind="path_recover") is not None

    def test_channel_peer_death_delivers_peer_failed(self):
        plan = FaultPlan().kill("P0", at_step=1)
        sched = Scheduler(fault_plan=plan)
        chan = Channel(sched, name="ch")
        failures = []

        def client():
            yield
            yield
            yield from chan.send("req")

        def server():
            try:
                yield from chan.receive()
            except PeerFailed as exc:
                failures.append(exc)

        chan.link(sched.spawn(client, name="P0"))
        chan.link(sched.spawn(server, name="P1"))
        result = sched.run(on_deadlock="return", on_error="record")
        assert not result.deadlocked
        assert len(failures) == 1 and failures[0].peer == "P0"
        assert "P1" in result.results  # the survivor handled it and finished
        with pytest.raises(PeerFailed):
            chan._check_broken()  # the channel stays broken afterwards

    def test_channel_peer_fault_ignore_leaves_graph_to_name_the_dead(self):
        plan = FaultPlan().kill("P0", at_step=1)
        sched = Scheduler(fault_plan=plan)
        chan = Channel(sched, name="ch", peer_fault="ignore")

        def client():
            yield
            yield
            yield from chan.send("req")

        def server():
            value = yield from chan.receive()
            return value

        chan.link(sched.spawn(client, name="P0"))
        chan.link(sched.spawn(server, name="P1"))
        result = sched.run(on_deadlock="return", on_error="record")
        assert result.deadlocked and result.blocked == ["P1"]
        assert "channel ch" in result.graph.render()


# ----------------------------------------------------------------------
# Wait-for graph diagnosis
# ----------------------------------------------------------------------
class TestWaitForGraph:
    def test_deadlock_error_carries_rendered_graph(self):
        sched = Scheduler()
        a = Mutex(sched, name="a")
        b = Mutex(sched, name="b")

        def one():
            yield from a.acquire()
            yield
            yield from b.acquire()

        def two():
            yield from b.acquire()
            yield
            yield from a.acquire()

        sched.spawn(one, name="P1")
        sched.spawn(two, name="P2")
        with pytest.raises(DeadlockError) as info:
            sched.run()
        err = info.value
        assert err.graph is not None
        text = str(err)
        assert "wait-for graph" in text
        assert "cycle:" in text
        assert "mutex a" in text and "mutex b" in text

    def test_graph_names_dead_process_holding_nothing(self):
        # Even a corpse with no recorded holds appears in the dead section.
        plan = FaultPlan().kill("P0", at_step=0)
        sched = Scheduler(fault_plan=plan)
        sem = Semaphore(sched, initial=0, name="s")

        def victim():
            yield

        def waiter():
            yield from sem.p()

        sched.spawn(victim, name="P0")
        sched.spawn(waiter, name="P1")
        result = sched.run(on_deadlock="return", on_error="record")
        assert result.deadlocked
        rendered = result.graph.render()
        assert "P1" in rendered and "P0" in rendered


class TestWaitForGraphEdgeCases:
    """Edge cases of the wait-for diagnosis (satellites of the recovery
    PR): self-waits, waits on an already-crashed holder, and cycles that
    survive pruning of a crashed node."""

    def test_self_wait_is_a_cycle(self):
        # A process P-ing a Semaphore(1) twice waits on the permit it
        # itself holds: the graph must report the one-node cycle.
        sched = Scheduler()
        sem = Semaphore(sched, initial=1, name="s")

        def greedy():
            yield from sem.p()
            yield from sem.p()  # waits on itself

        sched.spawn(greedy, name="P")
        with pytest.raises(DeadlockError) as info:
            sched.run()
        graph = info.value.graph
        assert graph.waits["P"] == "semaphore s"
        assert graph.holds["semaphore s"] == ["P"]
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert cycles[0][0] == "P"
        assert "cycle: P -> semaphore s -> P" in graph.render()

    def test_wait_on_already_crashed_holder(self):
        # P1 parks on a permit whose holder is already dead: no cycle —
        # the edge ends at a corpse, and the render says so.
        plan = FaultPlan().kill("P0", at_step=2)
        sched = Scheduler(fault_plan=plan, preemptive=True)
        sem = Semaphore(sched, initial=1, name="s", crash_release=False)

        def worker():
            yield from sem.p()
            yield from sched.checkpoint()
            sem.v()

        sched.spawn(worker, name="P0")
        sched.spawn(worker, name="P1")
        result = sched.run(on_deadlock="return", on_error="record")
        assert result.deadlocked
        graph = result.graph
        assert graph.waits["P1"] == "semaphore s"
        assert graph.edges_from("P1") == [("semaphore s", "P0")]
        assert graph.dead == {"P0": ["semaphore s"]}
        assert graph.cycles() == []  # a corpse closes no cycle
        rendered = graph.render()
        assert "P0[dead]" in rendered
        assert "held: semaphore s" in rendered

    def test_cycle_survives_crashed_node_pruning(self):
        # A live two-process cycle must still be reported when an
        # unrelated crashed node sits in the graph (the dead node is
        # pruned from cycle traversal, not from the diagnosis).
        from repro.runtime.faults import WaitForGraph

        graph = WaitForGraph(
            waits={"P1": "mutex a", "P2": "mutex b"},
            holds={"mutex a": ["P2"], "mutex b": ["P1"]},
            dead={"P0": ["semaphore s"]},
        )
        cycles = graph.cycles()
        assert len(cycles) == 1
        assert set(cycles[0]) == {"P1", "mutex a", "P2", "mutex b"}
        rendered = graph.render()
        assert "cycle:" in rendered
        assert "dead:  P0 (held: semaphore s)" in rendered
