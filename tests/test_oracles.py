"""Unit tests for the trace oracles, exercised on hand-built traces so each
property's accept/reject behaviour is pinned down exactly."""

from repro.runtime.trace import Event, Trace
from repro.verify import (
    check_alarm_wakeups,
    check_alternation,
    check_class_priority_two_stage,
    check_fcfs,
    check_mutual_exclusion,
    check_no_overtake,
    check_readers_priority_strict,
    check_scan_order,
    check_single_occupancy,
    check_writers_priority_strict,
)


def build_trace(events):
    """events: list of (pid, kind, obj, detail?) or (pid, kind, obj, detail, time)."""
    trace = Trace()
    for seq, item in enumerate(events):
        pid, kind, obj = item[0], item[1], item[2]
        detail = item[3] if len(item) > 3 else None
        time = item[4] if len(item) > 4 else 0
        trace.append(Event(seq, time, pid, "P{}".format(pid), kind, obj, detail))
    return trace


# ----------------------------------------------------------------------
# Mutual exclusion
# ----------------------------------------------------------------------
def test_mutex_ok_for_serial_writes():
    trace = build_trace([
        (1, "op_start", "db.write"),
        (1, "op_end", "db.write"),
        (2, "op_start", "db.write"),
        (2, "op_end", "db.write"),
    ])
    assert check_mutual_exclusion(trace, "db", ["write"], ["read"]) == []


def test_mutex_flags_overlapping_writes():
    trace = build_trace([
        (1, "op_start", "db.write"),
        (2, "op_start", "db.write"),
        (1, "op_end", "db.write"),
        (2, "op_end", "db.write"),
    ])
    violations = check_mutual_exclusion(trace, "db", ["write"])
    assert len(violations) == 1


def test_mutex_allows_shared_overlap():
    trace = build_trace([
        (1, "op_start", "db.read"),
        (2, "op_start", "db.read"),
        (1, "op_end", "db.read"),
        (2, "op_end", "db.read"),
    ])
    assert check_mutual_exclusion(trace, "db", ["write"], ["read"]) == []


def test_mutex_flags_read_during_write():
    trace = build_trace([
        (1, "op_start", "db.write"),
        (2, "op_start", "db.read"),
    ])
    violations = check_mutual_exclusion(trace, "db", ["write"], ["read"])
    assert violations and "shared" in violations[0]


def test_mutex_flags_write_during_read():
    trace = build_trace([
        (1, "op_start", "db.read"),
        (2, "op_start", "db.write"),
    ])
    assert check_mutual_exclusion(trace, "db", ["write"], ["read"])


def test_mutex_ignores_other_resources():
    trace = build_trace([
        (1, "op_start", "db.write"),
        (2, "op_start", "other.write"),
    ])
    assert check_mutual_exclusion(trace, "db", ["write"]) == []


def test_single_occupancy_alias():
    trace = build_trace([
        (1, "op_start", "r.use"),
        (2, "op_start", "r.use"),
    ])
    assert check_single_occupancy(trace, "r", ["use"])


# ----------------------------------------------------------------------
# FCFS
# ----------------------------------------------------------------------
def test_fcfs_ok_in_order():
    trace = build_trace([
        (1, "request", "r.acquire"),
        (2, "request", "r.acquire"),
        (1, "op_start", "r.acquire"),
        (2, "op_start", "r.acquire"),
    ])
    assert check_fcfs(trace, "r", ["acquire"]) == []


def test_fcfs_flags_out_of_order():
    trace = build_trace([
        (1, "request", "r.acquire"),
        (2, "request", "r.acquire"),
        (2, "op_start", "r.acquire"),
        (1, "op_start", "r.acquire"),
    ])
    assert check_fcfs(trace, "r", ["acquire"])


def test_fcfs_handles_repeat_requests_per_process():
    trace = build_trace([
        (1, "request", "r.acquire"),
        (1, "op_start", "r.acquire"),
        (2, "request", "r.acquire"),
        (1, "request", "r.acquire"),
        (2, "op_start", "r.acquire"),
        (1, "op_start", "r.acquire"),
    ])
    assert check_fcfs(trace, "r", ["acquire"]) == []


def test_fcfs_ignores_unserved_tail():
    trace = build_trace([
        (1, "request", "r.acquire"),
        (1, "op_start", "r.acquire"),
        (2, "request", "r.acquire"),  # never served: not a violation
    ])
    assert check_fcfs(trace, "r", ["acquire"]) == []


def test_fcfs_across_two_ops():
    trace = build_trace([
        (1, "request", "db.read"),
        (2, "request", "db.write"),
        (2, "op_start", "db.write"),
        (1, "op_start", "db.read"),
    ])
    assert check_fcfs(trace, "db", ["read", "write"])


# ----------------------------------------------------------------------
# Priority oracles
# ----------------------------------------------------------------------
def test_no_overtake_ok():
    trace = build_trace([
        (1, "request", "db.read"),
        (2, "request", "db.write"),
        (1, "op_start", "db.read"),
        (1, "op_end", "db.read"),
        (2, "op_start", "db.write"),
    ])
    assert check_no_overtake(trace, "db", "read", "write") == []


def test_no_overtake_flags_late_writer_jumping_early_reader():
    trace = build_trace([
        (1, "request", "db.read"),
        (2, "request", "db.write"),
        (2, "op_start", "db.write"),
        (2, "op_end", "db.write"),
        (1, "op_start", "db.read"),
    ])
    assert check_no_overtake(trace, "db", "read", "write")


def test_no_overtake_allows_earlier_writer():
    """A writer that requested BEFORE the reader may go first."""
    trace = build_trace([
        (2, "request", "db.write"),
        (1, "request", "db.read"),
        (2, "op_start", "db.write"),
        (2, "op_end", "db.write"),
        (1, "op_start", "db.read"),
    ])
    assert check_no_overtake(trace, "db", "read", "write") == []


def test_strict_readers_priority_flags_pending_read():
    """The footnote-3 shape: a write starts while a read request pends —
    strict priority flags it even though the writer arrived first."""
    trace = build_trace([
        (2, "request", "db.write"),
        (1, "request", "db.read"),
        (2, "op_start", "db.write"),
    ])
    assert check_readers_priority_strict(trace, "db")


def test_strict_readers_priority_ok_when_no_pending():
    trace = build_trace([
        (2, "request", "db.write"),
        (2, "op_start", "db.write"),
        (2, "op_end", "db.write"),
        (1, "request", "db.read"),
        (1, "op_start", "db.read"),
    ])
    assert check_readers_priority_strict(trace, "db") == []


def test_strict_writers_priority_mirror():
    trace = build_trace([
        (2, "request", "db.write"),
        (1, "request", "db.read"),
        (1, "op_start", "db.read"),
    ])
    assert check_writers_priority_strict(trace, "db")


# ----------------------------------------------------------------------
# Alternation
# ----------------------------------------------------------------------
def test_alternation_ok():
    trace = build_trace([
        (1, "op_start", "slot.put"),
        (2, "op_start", "slot.get"),
        (1, "op_start", "slot.put"),
        (2, "op_start", "slot.get"),
    ])
    assert check_alternation(trace, "slot") == []


def test_alternation_flags_double_put():
    trace = build_trace([
        (1, "op_start", "slot.put"),
        (1, "op_start", "slot.put"),
    ])
    assert check_alternation(trace, "slot")


def test_alternation_flags_get_first():
    trace = build_trace([
        (2, "op_start", "slot.get"),
    ])
    assert check_alternation(trace, "slot")


# ----------------------------------------------------------------------
# Disk SCAN
# ----------------------------------------------------------------------
def test_scan_ok_elevator_order():
    trace = build_trace([
        (1, "request", "disk", 30),
        (2, "request", "disk", 10),
        (3, "request", "disk", 50),
        (0, "serve", "disk", 30),
        (0, "serve", "disk", 50),
        (0, "serve", "disk", 10),
    ])
    assert check_scan_order(trace, "disk", start_track=20) == []


def test_scan_flags_wrong_direction_choice():
    trace = build_trace([
        (1, "request", "disk", 30),
        (2, "request", "disk", 10),
        (3, "request", "disk", 50),
        (0, "serve", "disk", 10),  # head at 20 moving up: should be 30
    ])
    assert check_scan_order(trace, "disk", start_track=20)


def test_scan_flags_unrequested_track():
    trace = build_trace([
        (0, "serve", "disk", 99),
    ])
    assert check_scan_order(trace, "disk")


def test_scan_dynamic_arrivals():
    """A request arriving mid-sweep behind the head waits for the reverse
    sweep."""
    trace = build_trace([
        (1, "request", "disk", 40),
        (0, "serve", "disk", 40),
        (2, "request", "disk", 10),
        (3, "request", "disk", 60),
        (0, "serve", "disk", 60),  # still sweeping up
        (0, "serve", "disk", 10),
    ])
    assert check_scan_order(trace, "disk", start_track=0) == []


# ----------------------------------------------------------------------
# Alarm clock
# ----------------------------------------------------------------------
def test_alarm_ok_exact_wakeups():
    trace = build_trace([
        (1, "wakeme", "alarm", 5, 0),
        (2, "wakeme", "alarm", 2, 0),
        (2, "wake", "alarm", None, 2),
        (1, "wake", "alarm", None, 5),
    ])
    assert check_alarm_wakeups(trace) == []


def test_alarm_flags_early_wake():
    trace = build_trace([
        (1, "wakeme", "alarm", 5, 0),
        (1, "wake", "alarm", None, 3),
    ])
    assert check_alarm_wakeups(trace)


def test_alarm_flags_late_wake():
    trace = build_trace([
        (1, "wakeme", "alarm", 5, 0),
        (1, "wake", "alarm", None, 9),
    ])
    assert check_alarm_wakeups(trace)


def test_alarm_flags_wake_without_request():
    trace = build_trace([
        (1, "wake", "alarm", None, 1),
    ])
    assert check_alarm_wakeups(trace)


# ----------------------------------------------------------------------
# Two-stage class priority
# ----------------------------------------------------------------------
def test_two_stage_ok():
    trace = build_trace([
        (1, "request", "r.acquire_b"),
        (2, "request", "r.acquire_a"),
        (2, "op_start", "r.acquire_a"),
        (1, "op_start", "r.acquire_b"),
    ])
    assert check_class_priority_two_stage(trace, "r", "acquire_a", "acquire_b") == []


def test_two_stage_flags_low_served_over_pending_high():
    trace = build_trace([
        (1, "request", "r.acquire_b"),
        (2, "request", "r.acquire_a"),
        (1, "op_start", "r.acquire_b"),
    ])
    assert check_class_priority_two_stage(trace, "r", "acquire_a", "acquire_b")


def test_two_stage_flags_fcfs_within_class():
    trace = build_trace([
        (1, "request", "r.acquire_a"),
        (2, "request", "r.acquire_a"),
        (2, "op_start", "r.acquire_a"),
        (1, "op_start", "r.acquire_a"),
    ])
    assert check_class_priority_two_stage(trace, "r", "acquire_a", "acquire_b")
