"""Recovery runtime: supervision, lease reclamation, backoff, degradation,
fault-plan search, and the recovery oracles (DESIGN.md "Recovery model").

The acceptance bar: every chaos scenario that wedges *unsupervised* (the
raw semaphore) must classify recovered or degraded under supervision, with
the exclusion oracle holding across every restart boundary — and the
fault-plan search must find the minimal crash set that still defeats
recovery (killing the healer itself).
"""

import warnings

import pytest

from repro.obs.recovery import (
    RecoveryMetrics,
    compute_recovery_metrics,
    recovery_spans,
)
from repro.recover import (
    Degrader,
    ExponentialBackoff,
    FixedBackoff,
    KillSpec,
    LeaseManager,
    NoBackoff,
    RestartPolicy,
    Supervisor,
    minimize_fault_set,
    plan_for,
    retry_with_backoff,
)
from repro.runtime import (
    FaultPlan,
    Mutex,
    RandomPolicy,
    Scheduler,
    Semaphore,
    WaitTimeout,
)
from repro.runtime.faults import retrying
from repro.verify.recovery import (
    DEGRADED,
    RECOVERED,
    VIOLATED,
    WEDGED,
    classify_recovery_run,
    exclusion_oracle,
    expected_recovery,
    minimal_defeat_witness,
    mttr_fingerprints,
    recovery_report,
)


def _noop():
    return
    yield  # pragma: no cover — makes this a generator function


def _one_step():
    yield


# ----------------------------------------------------------------------
# Backoff policies and the retry combinator
# ----------------------------------------------------------------------
class TestBackoff:
    def test_policy_delays(self):
        assert [NoBackoff().delay(i) for i in range(3)] == [0, 0, 0]
        assert [FixedBackoff(5).delay(i) for i in range(3)] == [5, 5, 5]
        assert [ExponentialBackoff(1, 2, cap=4).delay(i)
                for i in range(5)] == [1, 2, 4, 4, 4]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            FixedBackoff(-1)
        with pytest.raises(ValueError):
            ExponentialBackoff(base=0)

    def test_retry_recovers_after_timeouts(self):
        # Producer shows up late; consumer retries with exponential
        # backoff until the rendezvous lands.
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")
        outcome = {}

        def consumer():
            yield from retry_with_backoff(
                lambda i: sem.p(timeout=2),
                attempts=3,
                backoff=ExponentialBackoff(),
                sched=sched,
            )
            outcome["got"] = sched.now

        def producer():
            yield from sched.sleep(5)
            sem.v()

        sched.spawn(consumer, name="C")
        sched.spawn(producer, name="P")
        sched.run()
        assert "got" in outcome

    def test_retry_exhausts_budget(self):
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")
        caught = {}

        def consumer():
            try:
                yield from retry_with_backoff(
                    lambda i: sem.p(timeout=1),
                    attempts=2, backoff=FixedBackoff(1), sched=sched,
                )
            except WaitTimeout as exc:
                caught["exc"] = exc

        sched.spawn(consumer, name="C")
        sched.run()
        assert isinstance(caught["exc"], WaitTimeout)
        # 2 timed waits (1 tick each) + 1 backoff tick between them.
        assert sched.now == 3

    def test_retry_rejects_zero_attempts(self):
        gen = retry_with_backoff(lambda i: iter(()), attempts=0)
        with pytest.raises(ValueError):
            next(gen)

    def test_retrying_shim_warns_and_delegates(self):
        sched = Scheduler()
        sem = Semaphore(sched, initial=0, name="s")
        done = {}

        def consumer():
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                yield from retrying(
                    lambda i: sem.p(timeout=2), attempts=2, sched=sched
                )
            done["warnings"] = [w for w in caught
                                if w.category is DeprecationWarning]

        def producer():
            yield from sched.sleep(1)
            sem.v()

        sched.spawn(consumer, name="C")
        sched.spawn(producer, name="P")
        sched.run()
        assert done["warnings"], "shim must emit DeprecationWarning"


# ----------------------------------------------------------------------
# Supervisor
# ----------------------------------------------------------------------
def _run_supervised(fault_plan=None, policy=None, leases=None,
                    children=2, body=None, **run_kw):
    """One supervised scheduler run; returns (sched, sup, result)."""
    sched = Scheduler(fault_plan=fault_plan)
    sup = Supervisor(sched, policy, leases=leases)

    def default_body():
        yield from sched.checkpoint()

    for i in range(children):
        sup.child("P{}".format(i), body or default_body)
    sup.start()
    result = sched.run(on_deadlock="return", on_error="record", **run_kw)
    return sched, sup, result


class TestSupervisor:
    def test_restarts_killed_child(self):
        plan = FaultPlan().kill("P0", at_step=0)
        __, sup, result = _run_supervised(fault_plan=plan)
        report = sup.report()
        assert report["children"]["P0"]["restarts"] == 1
        assert report["children"]["P0"]["state"] == "done"
        assert report["children"]["P1"]["restarts"] == 0
        assert not result.deadlocked
        # The trace tells the full story: kill, restart, completion.
        assert len(result.trace.filter(kind="restart", obj="P0")) == 1

    def test_backoff_spaces_restart(self):
        plan = FaultPlan().kill("P0", at_step=0)
        sched, sup, __ = _run_supervised(
            fault_plan=plan,
            policy=RestartPolicy(backoff=FixedBackoff(7)),
        )
        restart = sched.trace.filter(kind="restart", obj="P0")[0]
        killed = sched.trace.filter(kind="killed", obj="P0")[0]
        assert restart.time - killed.time == 7

    def test_backoff_composes_with_injected_wakeup_delay(self):
        # The supervisor's own wakeups are fault-injectable: with
        # ``delay_wakeups("sup", 3)`` the death notification that unparks
        # the supervisor lands 3 ticks late, and only then does the
        # backoff timer start — so the restart gap is backoff + delay,
        # not max(backoff, delay).  The timing fingerprint must be
        # identical under different random schedules: every leg is
        # virtual-time, so scheduling noise cannot leak into it.
        def gap(seed, delayed):
            plan = FaultPlan().kill("P0", at_time=10)
            if delayed:
                plan.delay_wakeups("sup", ticks=3)
            sched = Scheduler(policy=RandomPolicy(seed), fault_plan=plan)
            sup = Supervisor(sched, RestartPolicy(backoff=FixedBackoff(5)))

            def victim():
                yield from sched.sleep(20)

            def sibling():
                yield from sched.sleep(30)

            sup.child("P0", victim)
            sup.child("P1", sibling)
            sup.start()
            result = sched.run(on_deadlock="return", on_error="record")
            killed = result.trace.filter(kind="killed", obj="P0")[0]
            restart = result.trace.filter(kind="restart", obj="P0")[0]
            if delayed:
                assert result.trace.first(kind="wake_delayed") is not None
            assert sup.report()["children"]["P0"]["state"] == "done"
            return restart.time - killed.time

        assert [gap(seed, True) for seed in (1, 2)] == [8, 8]
        # Control: without injection the gap is the bare backoff.
        assert [gap(seed, False) for seed in (1, 2)] == [5, 5]

    def test_restart_budget_gives_up(self):
        # P0 is killed twice (second kill targets the restarted
        # incarnation) but the budget allows a single restart.
        plan = FaultPlan().kill("P0", at_step=0).kill("P0", at_step=0)
        __, sup, result = _run_supervised(
            fault_plan=plan, policy=RestartPolicy(max_restarts=1),
        )
        report = sup.report()
        assert report["children"]["P0"]["state"] == "given_up"
        assert report["giveups"] == 1
        assert len(result.trace.filter(kind="restart_giveup")) == 1
        # The sibling still completes: giving up is containment, not wedge.
        assert report["children"]["P1"]["state"] == "done"

    def test_escalate_kills_remaining_children(self):
        plan = FaultPlan().kill("P0", at_step=0)
        sched = Scheduler(fault_plan=plan)
        sup = Supervisor(
            sched, RestartPolicy(strategy="escalate", max_restarts=0)
        )

        def blocked_forever():
            yield from sched.park("wait", "never")

        def victim():
            yield from sched.checkpoint()

        sup.child("P0", victim)
        sup.child("P1", blocked_forever)
        sup.start()
        result = sched.run(on_deadlock="return", on_error="record")
        report = sup.report()
        assert report["escalated"]
        assert len(result.trace.filter(kind="escalate")) == 1
        # P1 was taken down by the escalation instead of wedging the run.
        assert "P1" in result.failed()
        assert not result.deadlocked

    def test_restart_window_resets_budget(self):
        # With a sliding window, old restarts age out of the budget: two
        # kills separated by a long sleep both get restarts even though
        # max_restarts=1.
        plan = FaultPlan().kill("P0", at_step=0).kill("P1", at_step=1)
        sched = Scheduler(fault_plan=plan)
        sup = Supervisor(
            sched,
            RestartPolicy(max_restarts=1, window=5,
                          backoff=FixedBackoff(1)),
        )

        def early():
            yield from sched.checkpoint()

        def late():
            yield from sched.sleep(50)

        sup.child("P0", early)
        sup.child("P1", late)
        sup.start()
        result = sched.run(on_deadlock="return", on_error="record")
        assert len(result.trace.filter(kind="restart")) == 2
        assert sup.report()["giveups"] == 0

    def test_rejects_children_after_start(self):
        sched = Scheduler()
        sup = Supervisor(sched)
        sup.child("P0", _noop)
        sup.start()
        with pytest.raises(RuntimeError):
            sup.child("P1", _noop)

    def test_supervisor_report_is_run_result(self):
        plan = FaultPlan().kill("P0", at_step=0)
        __, sup, result = _run_supervised(fault_plan=plan)
        assert result.results["sup"]["restarts"] == 1


# ----------------------------------------------------------------------
# Lease reclamation
# ----------------------------------------------------------------------
class TestLeases:
    def test_guard_requires_hook(self):
        sched = Scheduler()
        leases = LeaseManager(sched)
        with pytest.raises(TypeError):
            leases.guard(object())

    def test_semaphore_permit_reclaimed(self):
        # The paper's wedging primitive: a raw semaphore whose holder dies.
        # Lease reclamation revokes the permit so the waiter proceeds.
        # (Step 2 is inside the critical region: step 0 is the preemptive
        # entry yield inside p(), step 1 acquires and parks at checkpoint.)
        plan = FaultPlan().kill("P0", at_step=2)
        sched = Scheduler(fault_plan=plan, preemptive=True)
        leases = LeaseManager(sched)
        sem = leases.guard(
            Semaphore(sched, initial=1, name="s", crash_release=False)
        )
        sup = Supervisor(sched, leases=leases)

        def worker():
            yield from sem.p()
            yield from sched.checkpoint()
            sem.v()

        sup.child("P0", worker)
        sup.child("P1", worker)
        sup.start()
        result = sched.run(on_deadlock="return", on_error="record")
        assert not result.deadlocked
        assert [a.outcome for a in leases.actions] == ["released 1 permit"]
        assert len(result.trace.filter(kind="reclaim")) == 1

    def test_sweep_reclaims_without_supervisor(self):
        plan = FaultPlan().kill("P0", at_step=2)
        sched = Scheduler(fault_plan=plan, preemptive=True)
        leases = LeaseManager(sched)
        lock = leases.guard(Mutex(sched, name="m"))

        def worker():
            yield from lock.acquire()
            yield from sched.checkpoint()
            lock.release()

        sched.spawn(worker, name="P0")
        result = sched.run(on_deadlock="return", on_error="record")
        assert "P0" in result.failed()
        # Robust mutex already released on death; sweep finds nothing left.
        assert leases.sweep() == []

    def test_reclaim_is_idempotent(self):
        plan = FaultPlan().kill("P0", at_step=2)
        sched = Scheduler(fault_plan=plan, preemptive=True)
        leases = LeaseManager(sched)
        leases.guard(
            Semaphore(sched, initial=1, name="s", crash_release=False)
        )

        def worker():
            yield from leases.guarded[0].p()
            yield from sched.checkpoint()
            leases.guarded[0].v()

        sched.spawn(worker, name="P0")
        sched.run(on_deadlock="return", on_error="record")
        first = leases.sweep()
        assert len(first) == 1
        assert leases.sweep() == []  # nothing left to revoke


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------
class TestDegradation:
    def test_degrader_threshold(self):
        sched = Scheduler()
        sem = Semaphore(sched, initial=1, name="s", wake_policy="lifo")
        degrader = Degrader(sched, threshold=2)
        assert degrader.note_crash([sem]) == []
        assert not degrader.degraded
        relaxed = degrader.note_crash([sem])
        assert degrader.degraded
        assert relaxed == [("s", "wake policy lifo -> fifo")]
        assert sem._wake_policy == "fifo"
        # Further crashes never degrade twice.
        assert degrader.note_crash([sem]) == []

    def test_degrade_preserves_exclusion_relaxes_priority(self):
        # Under repeated crashes the LIFO semaphore falls back to FIFO
        # (priority constraint relaxed) but the run stays exclusion-safe
        # and classifies degraded, not wedged/violated.
        from repro.verify.recovery import _sem_recovery
        from repro.runtime.policies import ScriptedPolicy

        build = _sem_recovery(degrade_after=1)
        plan = FaultPlan().kill("P0", at_step=2)
        run = build(ScriptedPolicy([]), plan)
        label, messages = classify_recovery_run(
            run, ("P0",), exclusion_oracle("s")
        )
        assert label == DEGRADED
        assert messages == []
        assert len(run.trace.filter(kind="degrade")) == 1


# ----------------------------------------------------------------------
# Recovery classification and oracles
# ----------------------------------------------------------------------
class TestClassification:
    def test_exclusion_oracle_flags_overlap(self):
        sched = Scheduler(preemptive=True)

        def p0():
            sched.log("cs", "r", "enter")
            yield from sched.checkpoint()
            sched.log("cs", "r", "exit")

        def p1():
            sched.log("cs", "r", "enter")
            yield
            sched.log("cs", "r", "exit")

        sched.spawn(p0, name="P0")
        sched.spawn(p1, name="P1")
        run = sched.run()
        messages = exclusion_oracle("r")(run)
        assert messages and "while" in messages[0]

    def test_exclusion_oracle_closes_interval_at_death(self):
        # A corpse that died inside the region must not count as "inside"
        # when its restarted incarnation (same name, new pid) re-enters.
        plan = FaultPlan().kill("P0", at_step=2)
        sched = Scheduler(fault_plan=plan)
        sup = Supervisor(sched)

        def worker():
            sched.log("cs", "r", "enter")
            yield from sched.checkpoint()
            yield from sched.checkpoint()
            sched.log("cs", "r", "exit")

        sup.child("P0", worker)
        sup.start()
        run = sched.run(on_deadlock="return", on_error="record")
        assert exclusion_oracle("r")(run) == []

    def test_classify_missed_without_victim_death(self):
        sched = Scheduler()
        sched.spawn(_noop, name="P0")
        run = sched.run()
        assert classify_recovery_run(run, ("P0",))[0] == "missed"

    def test_classify_wedged_on_deadlock(self):
        plan = FaultPlan().kill("P0", at_step=2)
        sched = Scheduler(fault_plan=plan, preemptive=True)
        sem = Semaphore(sched, initial=1, name="s", crash_release=False)

        def worker():
            yield from sem.p()
            yield from sched.checkpoint()
            sem.v()

        sched.spawn(worker, name="P0")
        sched.spawn(worker, name="P1")
        run = sched.run(on_deadlock="return", on_error="record")
        assert classify_recovery_run(run, ("P0",))[0] == WEDGED

    def test_classify_degraded_on_giveup(self):
        plan = FaultPlan().kill("P0", at_step=0).kill("P0", at_step=0)
        __, __, run = _run_supervised(
            fault_plan=plan, policy=RestartPolicy(max_restarts=1),
        )
        assert classify_recovery_run(run, ("P0",))[0] == DEGRADED

    def test_classify_recovered(self):
        plan = FaultPlan().kill("P0", at_step=0)
        __, __, run = _run_supervised(fault_plan=plan)
        assert classify_recovery_run(run, ("P0",))[0] == RECOVERED


# ----------------------------------------------------------------------
# The supervised scenarios (fast tier; bench_recovery runs the full sweep)
# ----------------------------------------------------------------------
def test_recovery_report_fast_matches_contract():
    results, table = recovery_report(fast=True)
    expected = expected_recovery()
    for res in results:
        assert res.classification in expected[res.name], res.name
        assert res.wedged == 0, res.name
        assert res.violated == 0, res.name
    assert "recovered" in table


def test_previously_wedged_scenario_recovers_supervised():
    # The acceptance criterion, pinned: chaos classifies the raw semaphore
    # fault-deadlocking; its supervised variant fully recovers.
    from repro.verify.chaos import DEADLOCKING, expected_classifications

    assert expected_classifications()["semaphore"] == DEADLOCKING
    results, __ = recovery_report(fast=True)
    by_name = {r.name: r for r in results}
    assert by_name["semaphore"].classification == RECOVERED


def test_mttr_fingerprints_cover_all_mechanisms_deterministically():
    first = mttr_fingerprints()
    assert set(first) == {
        "semaphore", "semaphore+degrade", "mutex", "monitor",
        "serializer", "ccr", "pathexpr", "channel",
    }
    for name, fp in first.items():
        assert fp["recovery_rate"] == 1.0, name
        assert fp["mttr"] >= 1, name
    assert mttr_fingerprints() == first


# ----------------------------------------------------------------------
# Fault-plan search
# ----------------------------------------------------------------------
class TestFaultSearch:
    def test_two_fault_witness_defeats_recovery(self):
        result = minimal_defeat_witness()
        assert result.witness is not None
        assert len(result.witness) == 2
        assert {k.process for k in result.witness} >= {"sup"}
        assert result.witness_label == WEDGED

    def test_witness_is_one_minimal(self):
        # Each kill alone must NOT defeat recovery (ddmin's guarantee).
        from repro.runtime.policies import ScriptedPolicy
        from repro.verify.recovery import _sem_recovery

        result = minimal_defeat_witness()
        build = _sem_recovery()
        for kill in result.witness:
            run = build(ScriptedPolicy([]), plan_for([kill]))
            label, __ = classify_recovery_run(
                run, ("P0", "P1", "P2"), exclusion_oracle("s")
            )
            assert label not in (WEDGED, VIOLATED), kill.describe()

    def test_minimize_drops_redundant_kills(self):
        from repro.runtime.policies import ScriptedPolicy
        from repro.verify.recovery import _sem_recovery

        build = _sem_recovery()

        def classify(run):
            label, __ = classify_recovery_run(
                run, ("P0", "P1", "P2"), exclusion_oracle("s")
            )
            return label

        # Pad the true 2-kill witness with a harmless kill of P2 at step 0
        # (it gets restarted before anyone needs the permit).
        bloated = [
            KillSpec("sup", 0), KillSpec("P2", 0), KillSpec("P0", 2),
        ]
        label = classify(build(ScriptedPolicy([]), plan_for(bloated)))
        assert label == WEDGED  # bloated set is bad...
        witness, tests = minimize_fault_set(build, classify, bloated)
        assert len(witness) == 2  # ...but two kills carry it
        assert {k.process for k in witness} == {"sup", "P0"}
        assert tests >= 2


# ----------------------------------------------------------------------
# MTTR observability
# ----------------------------------------------------------------------
class TestRecoveryObservability:
    def test_spans_fold_death_restart_exit(self):
        plan = FaultPlan().kill("P0", at_step=0)
        __, __, run = _run_supervised(
            fault_plan=plan, policy=RestartPolicy(backoff=FixedBackoff(3)),
        )
        spans = recovery_spans(run)
        assert len(spans) == 1
        span = spans[0]
        assert span.process == "P0"
        assert span.restarted and span.recovered
        assert span.ticks_to_restart == 3
        assert span.ticks_to_recovery >= 3
        assert "recovered in" in span.describe()

    def test_unrestarted_death_is_open_span(self):
        plan = FaultPlan().kill("P0", at_step=0)
        sched = Scheduler(fault_plan=plan)
        sched.spawn(_one_step, name="P0")
        run = sched.run(on_deadlock="return", on_error="record")
        spans = recovery_spans(run)
        assert len(spans) == 1
        assert not spans[0].restarted
        assert spans[0].ticks_to_recovery is None
        assert "never restarted" in spans[0].describe()

    def test_metrics_aggregate(self):
        plan = FaultPlan().kill("P0", at_step=0).kill("P0", at_step=0)
        __, __, run = _run_supervised(
            fault_plan=plan, policy=RestartPolicy(max_restarts=1),
        )
        metrics = compute_recovery_metrics(run)
        assert metrics.deaths == 2
        assert metrics.restarts == 1
        assert metrics.giveups == 1
        assert 0.0 <= metrics.recovery_rate <= 1.0
        assert "mttr" in metrics.render()

    def test_empty_trace_metrics(self):
        sched = Scheduler()
        sched.spawn(_noop, name="P0")
        run = sched.run()
        metrics = compute_recovery_metrics(run)
        assert metrics.deaths == 0
        assert metrics.mttr is None
        assert metrics.recovery_rate == 1.0
