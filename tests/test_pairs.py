"""Unit tests for the §4.2 pairwise information-type analysis."""

from repro.core import (
    Component,
    ConstraintRealization,
    Directness,
    InformationType,
    ModularityProfile,
    SolutionDescription,
    all_pairs,
    conflicting_pairs,
    pair_coverage,
    render_pair_coverage,
    uncovered_pairs,
)
from repro.problems.registry import all_solutions

T1 = InformationType.REQUEST_TYPE
T2 = InformationType.REQUEST_TIME
T4 = InformationType.SYNC_STATE


def test_fifteen_pairs():
    pairs = all_pairs()
    assert len(pairs) == 15
    assert all(len(p) == 2 for p in pairs)
    assert len(set(pairs)) == 15


def test_pair_coverage_finds_probing_problems():
    coverage = pair_coverage()
    assert "rw_fcfs" in coverage[frozenset({T1, T2})]
    assert "staged_queue" in coverage[frozenset({T1, T2})]
    assert "readers_priority" in coverage[frozenset({T1, T4})]


def test_uncovered_pairs_reported():
    gaps = uncovered_pairs()
    # The catalog probes 5 of the 15 pairs; the rest are honest blind spots
    # (the paper: complete pair checking "is not as easy").
    assert frozenset({T1, T2}) not in gaps
    assert len(gaps) == 10


def test_conflicting_pairs_recovers_monitor_t1xt2():
    """The §5.2 monitor conflict is recoverable from the descriptions."""
    conflicts = conflicting_pairs(e.description for e in all_solutions())
    assert "monitor" in conflicts
    assert frozenset({T1, T2}) in conflicts["monitor"]
    # Serializers and CSP never needed the resolving idiom.
    assert "serializer" not in conflicts
    assert "csp" not in conflicts


def test_conflicting_pairs_from_synthetic_description():
    description = SolutionDescription(
        problem="rw_fcfs",
        mechanism="exotic",
        components=(Component("q", "condition"),),
        realizations=(
            ConstraintRealization(
                "arrival_order",
                ("q",),
                ("two_stage_queue",),
                Directness.DIRECT,
                info_handling={T1: Directness.DIRECT, T2: Directness.DIRECT},
            ),
        ),
        modularity=ModularityProfile(True, True, True),
    )
    conflicts = conflicting_pairs([description])
    assert conflicts == {"exotic": {frozenset({T1, T2})}}


def test_render_pair_coverage_table():
    coverage = pair_coverage()
    conflicts = conflicting_pairs(e.description for e in all_solutions())
    text = render_pair_coverage(coverage, conflicts)
    assert "T1xT2" in text
    assert "monitor" in text
    assert "(uncovered)" in text
