"""Integration tests for the §6 extension mechanisms (CSP and CCR) across
the problem suite — experiment E11's substrate."""

import pytest

from repro.problems.alarm_clock import (
    CcrAlarmClock,
    CspAlarmClock,
    run_sleepers,
)
from repro.problems.bounded_buffer import (
    CcrBoundedBuffer,
    CspBoundedBuffer,
    run_producers_consumers,
)
from repro.problems.disk_scheduler import (
    CcrDiskScheduler,
    CspDiskScheduler,
    run_requests,
)
from repro.problems.readers_writers import (
    BURST_PLAN,
    CcrRWFcfs,
    CcrReadersPriority,
    CcrWritersPriority,
    CspRWFcfs,
    CspReadersPriority,
    CspWritersPriority,
    run_workload,
)
from repro.problems.registry import solutions_for
from repro.runtime import RandomPolicy, Scheduler
from repro.verify import check_fcfs, check_mutual_exclusion, check_no_overtake

EXT_RW = [
    CspReadersPriority, CspWritersPriority, CspRWFcfs,
    CcrReadersPriority, CcrWritersPriority, CcrRWFcfs,
]


def impl_id(cls):
    return "{}-{}".format(cls.mechanism, cls.problem)


# ----------------------------------------------------------------------
# Registry-level: every csp/ccr entry passes its full battery
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "entry",
    solutions_for(mechanism="csp") + solutions_for(mechanism="ccr"),
    ids=lambda e: "{}-{}".format(*e.key),
)
def test_extension_solutions_verify(entry):
    assert entry.verifier() == []


# ----------------------------------------------------------------------
# Exclusion safety under random schedules
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", EXT_RW, ids=impl_id)
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_rw_exclusion_random_schedules(cls, seed):
    result = run_workload(
        lambda sched: cls(sched), BURST_PLAN, policy=RandomPolicy(seed)
    )
    assert not result.deadlocked, result.blocked
    assert check_mutual_exclusion(
        result.trace, "db", exclusive_ops=["write"], shared_ops=["read"]
    ) == []


# ----------------------------------------------------------------------
# Behavioural specifics
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cls", [CspReadersPriority, CcrReadersPriority], ids=impl_id
)
def test_ext_readers_share(cls):
    sched = Scheduler()
    impl = cls(sched)

    def reader():
        yield from impl.read(work=5)

    sched.spawn(reader, name="R1")
    sched.spawn(reader, name="R2")
    result = sched.run()
    starts = result.trace.filter(kind="op_start", obj="db.read")
    ends = result.trace.filter(kind="op_end", obj="db.read")
    assert len(starts) == 2
    assert starts[1].seq < ends[0].seq, "readers did not overlap"


@pytest.mark.parametrize(
    "cls", [CspWritersPriority, CcrWritersPriority], ids=impl_id
)
def test_ext_writers_block_new_readers(cls):
    sched = Scheduler()
    impl = cls(sched)
    order = []

    def early_reader():
        yield from impl.read(work=6)
        order.append("R1")

    def writer():
        yield from sched.sleep(1)
        yield from impl.write(1, work=1)
        order.append("W")

    def late_reader():
        yield from sched.sleep(2)
        yield from impl.read(work=1)
        order.append("R2")

    sched.spawn(early_reader, name="R1")
    sched.spawn(writer, name="W")
    sched.spawn(late_reader, name="R2")
    sched.run()
    assert order.index("W") < order.index("R2")


def test_csp_fcfs_channel_is_the_queue():
    """The CSP rw_fcfs server grants in channel (arrival) order."""
    result = run_workload(lambda sched: CspRWFcfs(sched), BURST_PLAN)
    assert check_fcfs(result.trace, "db", ["read", "write"]) == []


def test_ccr_tickets_give_fcfs():
    result = run_workload(lambda sched: CcrRWFcfs(sched), BURST_PLAN)
    assert check_fcfs(result.trace, "db", ["read", "write"]) == []


def test_csp_readers_priority_no_overtake():
    result = run_workload(lambda sched: CspReadersPriority(sched), BURST_PLAN)
    assert check_no_overtake(result.trace, "db", "read", "write") == []


def test_ext_buffer_conservation():
    for cls in (CspBoundedBuffer, CcrBoundedBuffer):
        result, produced, consumed = run_producers_consumers(
            lambda sched, c=cls: c(sched, capacity=2)
        )
        assert not result.deadlocked
        assert sorted(consumed) == sorted(produced), cls.__name__


def test_ext_alarm_wake_order():
    for cls in (CspAlarmClock, CcrAlarmClock):
        __, wakes = run_sleepers(lambda s, c=cls: c(s), delays=(6, 2, 8, 4))
        assert wakes == [2, 4, 6, 8], cls.__name__


def test_ext_disk_scan_orders():
    """CCR grants at request time like the monitor (same order); the CSP
    server's one-hop delay batches a simultaneous burst and serves it in
    pure sweep order — both are valid SCAN (the oracle already checks that
    in the registry battery)."""
    plan = [(0, t) for t in (60, 20, 90, 40)]
    __, ccr_impl = run_requests(lambda s: CcrDiskScheduler(s), plan)
    assert ccr_impl.disk.served == [60, 90, 40, 20]
    __, csp_impl = run_requests(lambda s: CspDiskScheduler(s), plan)
    assert csp_impl.disk.served == [20, 40, 60, 90]
    # The batched sweep is also the cheaper one:
    assert csp_impl.disk.total_seek <= ccr_impl.disk.total_seek


def test_csp_server_is_daemon():
    """The server must not keep the run alive or show up as blocked."""
    sched = Scheduler()
    impl = CspReadersPriority(sched)

    def reader():
        yield from impl.read(work=1)

    sched.spawn(reader, name="R")
    result = sched.run()
    assert result.blocked == []
