"""Tests for the causal layer: happens-before graphs, wait classification,
critical-path conservation, and exporter round-trips.

The load-bearing invariant is **conservation**: the critical-path walk's
segments tile the run exactly, so path ticks plus independently-computed
slack equal the makespan — asserted here on every profileable
(problem, mechanism) pair, not a sample.
"""

import json

from repro.obs import (
    Histogram,
    build_hb_graph,
    chrome_trace,
    classify_wait,
    compute_critical_path,
    causal_chain,
    jsonl_lines,
    parse_jsonl,
    profileable,
    run_causal,
    run_profile,
    wake_records,
)

# ----------------------------------------------------------------------
# Wait classification (DESIGN.md §10 table)
# ----------------------------------------------------------------------


def test_classify_wait_table():
    assert classify_wait("enter(buf.mon)").constraint == "exclusion"
    assert classify_wait("urgent(buf.mon)").constraint == "exclusion"
    assert classify_wait("P(sem)").info_types == ("T4",)
    assert classify_wait("lock(m)").constraint == "exclusion"
    assert classify_wait("wait(buf.nonempty)").constraint == "priority"
    assert classify_wait("wait(buf.nonempty)").info_types == ("T5",)
    assert classify_wait("send(ch)").category == "channel"
    assert classify_wait("recv(ch)").category == "channel"
    assert classify_wait("await(ec >= 3)").category == "eventcount"
    assert classify_wait("guard(count > 0)").constraint == "priority"
    assert classify_wait("region(r)").info_types == ("T4", "T5")
    assert classify_wait("enqueue(disk)").category == "queue"
    assert classify_wait("sleep").constraint == "time"
    assert classify_wait(None).category == "unknown"
    assert classify_wait("frobnicate(x)").constraint == "unknown"


def test_every_observed_park_reason_is_classified():
    """No wait observed in any canonical workload maps to 'unknown' —
    the attribution table covers the whole runtime vocabulary."""
    for label in profileable():
        problem, mechanism = label.split("/")
        result = run_profile(problem, mechanism).result
        for ev in result.trace:
            if ev.kind == "blocked" and isinstance(ev.detail, str):
                assert classify_wait(ev.detail).category != "unknown", (
                    "{}: unclassified wait {!r}".format(label, ev.detail))


# ----------------------------------------------------------------------
# Happens-before graph + vector clocks
# ----------------------------------------------------------------------


def test_hb_graph_program_order_and_wakes():
    profile = run_profile("bounded_buffer", "semaphore")
    graph = build_hb_graph(profile.result.trace)
    summary = graph.summary()
    assert summary["events"] == len(list(profile.result.trace))
    assert summary["edge_kinds"].get("program", 0) > 0
    assert summary["edge_kinds"].get("wake", 0) > 0
    # Edges always point forward on the seq axis (seq order is a
    # topological order of the graph).
    assert all(edge.src < edge.dst for edge in graph.edges)


def test_hb_clock_dominance_matches_program_order():
    profile = run_profile("one_slot_buffer", "csp")
    graph = build_hb_graph(profile.result.trace)
    events = graph.events
    by_pid = {}
    for ev in events:
        if ev.pid >= 0:
            by_pid.setdefault(ev.pid, []).append(ev)
    # Same-process events are totally ordered by happens-before.
    for own in by_pid.values():
        for a, b in zip(own, own[1:]):
            assert graph.happens_before(a.seq, b.seq)
            assert not graph.happens_before(b.seq, a.seq)
            assert not graph.concurrent(a.seq, b.seq)


def test_hb_wake_edge_orders_waker_before_woken():
    """A wakeup creates causality across processes: the unblocked event
    happens-before the woken process's next step."""
    profile = run_profile("bounded_buffer", "monitor")
    events = list(profile.result.trace)
    graph = build_hb_graph(events)
    wakes = [w for w in wake_records(events) if w.kind == "wake"]
    assert wakes, "monitor workload must contain signal wakeups"
    for wake in wakes:
        nxt = next((ev for ev in events
                    if ev.pid == wake.woken_pid and ev.seq > wake.seq), None)
        if nxt is not None:
            assert graph.happens_before(wake.seq, nxt.seq)


def test_hb_concurrency_exists_between_independent_processes():
    profile = run_profile("bounded_buffer", "csp")
    graph = build_hb_graph(profile.result.trace)
    pairs = [(a.seq, b.seq)
             for a in graph.events for b in graph.events
             if a.pid >= 0 and b.pid >= 0 and a.pid != b.pid]
    assert any(graph.concurrent(a, b) for a, b in pairs), (
        "some cross-process pair must be causally unordered")


# ----------------------------------------------------------------------
# Critical path: conservation on EVERY profileable pair
# ----------------------------------------------------------------------


def test_conservation_on_every_pair():
    """path_ticks + slack == makespan, slack == 0, per-process conservation,
    and segments tile [start, end] without overlap — on every registered
    (problem, mechanism) with a workload."""
    labels = profileable()
    assert len(labels) >= 30
    for label in labels:
        problem, mechanism = label.split("/")
        path = run_causal(problem, mechanism).path
        assert path.path_ticks + path.slack == path.makespan, label
        assert path.slack == 0, label
        cursor = path.start_seq
        for seg in path.segments:
            assert seg.start_seq == cursor, (
                "{}: gap/overlap at seq {}".format(label, cursor))
            assert seg.duration > 0, label
            cursor = seg.end_seq
        assert cursor == path.end_seq, label
        for name, row in path.per_process().items():
            assert row["on_path"] + row["slack"] == path.makespan, (
                "{} / {}".format(label, name))


def test_conservation_under_seeded_policies():
    for seed in (1, 7, 42):
        path = run_causal("bounded_buffer", "monitor", seed=seed).path
        assert path.path_ticks + path.slack == path.makespan
        assert path.slack == 0


def test_attribution_totals_match_path():
    path = run_causal("bounded_buffer", "semaphore").path
    assert sum(path.constraint_ticks().values()) == path.path_ticks
    blocked = sum(seg.duration for seg in path.segments
                  if seg.kind in ("blocked", "timer"))
    assert sum(path.blocked_ticks_by_object().values()) == blocked


def test_virtual_speedups_are_bounded_by_waits():
    path = run_causal("bounded_buffer", "serializer").path
    for obj, entry in path.virtual_speedups().items():
        assert 0 <= entry["saved"] <= entry["bound"], obj
        assert entry["bound"] <= path.path_ticks


def test_causal_chain_is_human_readable():
    path = run_causal("bounded_buffer", "monitor").path
    lines = causal_chain(path, limit=4)
    assert 0 < len(lines) <= 4
    assert any("waited" in line or "ran" in line for line in lines)


def test_causal_json_bit_identical_for_same_seed(capsys):
    from repro.__main__ import main

    argv = ["causal", "bounded_buffer", "eventcount", "--seed", "3",
            "--no-save", "--json"]
    assert main(list(argv)) == 0
    first = capsys.readouterr().out
    assert main(list(argv)) == 0
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    assert payload["record"]["makespan"] == payload["critical_path"]["makespan"]


# ----------------------------------------------------------------------
# Satellite: exporter round-trip
# ----------------------------------------------------------------------


def test_jsonl_round_trip_preserves_spans_and_events():
    profile = run_profile("bounded_buffer", "ccr")
    lines = list(jsonl_lines(profile.spans, profile.result.trace))
    spans, events = parse_jsonl(lines)
    assert [s.to_dict() for s in spans] == \
        [s.to_dict() for s in profile.spans]
    originals = list(profile.result.trace)
    assert len(events) == len(originals)
    for got, want in zip(events, originals):
        assert (got.seq, got.pid, got.pname, got.kind, got.obj) == \
            (want.seq, want.pid, want.pname, want.kind, want.obj)
        # Details survive when JSON-representable; otherwise they were
        # stringified on export (documented lossiness).
        assert got.detail == want.detail or got.detail == str(want.detail)


def test_chrome_trace_uses_only_valid_trace_event_keys():
    report = run_causal("bounded_buffer", "monitor")
    doc = chrome_trace(report.profile.spans, report.profile.result.trace,
                       "test", critical=report.path.segments)
    allowed = {"name", "cat", "ph", "ts", "dur", "pid", "tid", "args", "s"}
    for entry in doc["traceEvents"]:
        assert set(entry) <= allowed, sorted(entry)
    cats = {entry.get("cat") for entry in doc["traceEvents"]}
    assert "critical" in cats, "critical-path track must be exported"
    flagged = [entry for entry in doc["traceEvents"]
               if entry.get("args", {}).get("critical")]
    assert flagged, "on-path spans must carry args.critical = True"


# ----------------------------------------------------------------------
# Satellite: empty-histogram percentile regression test
# ----------------------------------------------------------------------


def test_histogram_percentile_empty_returns_zero():
    hist = Histogram()
    assert hist.percentile(0) == 0
    assert hist.percentile(50) == 0
    assert hist.percentile(100) == 0
    hist.observe(5)
    assert hist.percentile(50) == 5
