"""Observability layer: golden span-folding tests on hand-written event
sequences, sink integration, exporter validity, lazy trace views, and CLI
smoke tests.

The golden tests pin the folding *rules* (suspend/resume across Hoare
signals, crowd membership, crash closure) independently of any mechanism
implementation: the sequences below are the event vocabulary each mechanism
emits, written out by hand.
"""

import json

from repro.__main__ import main
from repro.obs import (
    MetricsSink,
    NullSink,
    RecordingSink,
    chrome_trace,
    compute_metrics,
    fold_spans,
    jsonl_lines,
    run_profile,
    spans_by_kind,
)
from repro.runtime.scheduler import Scheduler
from repro.runtime.trace import Event, Trace, TraceView


def E(seq, pid, pname, kind, obj="", detail=None, time=0):
    return Event(seq, time, pid, pname, kind, obj, detail)


def span_map(spans):
    """Index spans by (kind, pname, obj, start_seq) for golden assertions."""
    return {(s.kind, s.pname, s.obj, s.start_seq): s for s in spans}


# ----------------------------------------------------------------------
# Golden: monitor with a Hoare signal handoff
# ----------------------------------------------------------------------
def test_golden_monitor_hoare_handoff():
    trace = [
        E(1, 1, "P1", "enter", "mon"),
        E(2, 1, "P1", "wait", "cond"),        # releases mon, queues on cond
        E(3, 1, "P1", "blocked", "cond"),
        E(4, 2, "P2", "enter", "mon"),
        E(5, 2, "P2", "signal", "cond", "wake:P1"),  # Hoare: mon -> P1 now
        E(6, 2, "P2", "blocked", "mon"),      # signaller parks on urgent
        E(7, 2, "P2", "unblocked", "P1"),
        E(8, 1, "P1", "leave", "mon"),
        E(9, 1, "P1", "unblocked", "P2"),
        E(10, 2, "P2", "leave", "mon"),
    ]
    spans = span_map(fold_spans(trace))

    # P1 held mon 1..2, suspended across the wait, resumed at the signal
    # (possession transfers at signal time under Hoare semantics).
    assert spans[("possession", "P1", "mon", 1)].end_seq == 2
    assert spans[("possession", "P1", "mon", 1)].detail == "suspended"
    assert spans[("possession", "P1", "mon", 5)].end_seq == 8
    assert spans[("possession", "P1", "mon", 5)].detail == "resumed"
    # Queue residency on the condition: wait -> signal.
    assert spans[("queue", "P1", "cond", 2)].end_seq == 5
    # Blocked interval: park -> wakeup.
    assert spans[("blocked", "P1", "cond", 3)].end_seq == 7
    # P2: held 4..6, parked on urgent 6..9, resumed 9..10.
    assert spans[("possession", "P2", "mon", 4)].end_seq == 6
    assert spans[("blocked", "P2", "mon", 6)].end_seq == 9
    assert spans[("possession", "P2", "mon", 9)].end_seq == 10
    # Nothing leaked.
    assert not [s for s in spans.values() if s.outcome == "leaked"]


# ----------------------------------------------------------------------
# Golden: serializer queue + crowd (the false-resume regression)
# ----------------------------------------------------------------------
def test_golden_serializer_crowd_no_false_resume():
    trace = [
        E(1, 1, "P1", "enter", "ser"),
        E(2, 1, "P1", "join_crowd", "crowd"),   # possession released
        E(3, 1, "P1", "blocked", "sem"),        # body blocks on UNRELATED obj
        E(4, 0, "S", "unblocked", "P1"),        # sem wakeup: NOT a handback
        E(5, 1, "P1", "leave_crowd", "crowd"),  # possession returns here
        E(6, 1, "P1", "leave", "ser"),
    ]
    spans = span_map(fold_spans(trace))
    assert spans[("possession", "P1", "ser", 1)].end_seq == 2
    # The sem wakeup must NOT resume the serializer possession: the resumed
    # segment starts at leave_crowd (5), not at the unblock (4).
    assert spans[("possession", "P1", "ser", 5)].end_seq == 6
    assert ("possession", "P1", "ser", 4) not in spans
    assert spans[("crowd", "P1", "crowd", 2)].end_seq == 5
    assert spans[("blocked", "P1", "sem", 3)].end_seq == 4


def test_golden_serializer_queue_wait_proceed():
    trace = [
        E(1, 1, "P1", "enter", "ser"),
        E(2, 1, "P1", "wait", "q"),
        E(3, 1, "P1", "blocked", "q"),
        E(4, 0, "S", "unblocked", "P1"),
        E(5, 1, "P1", "proceed", "q"),
        E(6, 1, "P1", "leave", "ser"),
    ]
    spans = span_map(fold_spans(trace))
    assert spans[("queue", "P1", "q", 2)].end_seq == 5
    assert spans[("blocked", "P1", "q", 3)].end_seq == 4
    # Possession resumed at the wakeup (the queue grant handed it back).
    assert spans[("possession", "P1", "ser", 4)].end_seq == 6


# ----------------------------------------------------------------------
# Golden: path-expression operation latency
# ----------------------------------------------------------------------
def test_golden_pathexpr_operation_latency():
    trace = [
        E(1, 1, "P1", "request", "res.op"),
        E(2, 2, "P2", "request", "res.op"),
        E(3, 1, "P1", "op_start", "res.op"),
        E(4, 1, "P1", "op_end", "res.op"),
        E(5, 2, "P2", "op_start", "res.op"),
        E(6, 2, "P2", "op_abort", "res.op"),
    ]
    spans = span_map(fold_spans(trace))
    assert spans[("op_queue", "P1", "res.op", 1)].end_seq == 3
    assert spans[("op_queue", "P2", "res.op", 2)].end_seq == 5
    assert spans[("service", "P1", "res.op", 3)].end_seq == 4
    aborted = spans[("service", "P2", "res.op", 5)]
    assert aborted.end_seq == 6
    assert aborted.outcome == "crashed"


def test_golden_cross_process_service():
    # A CSP-style server starts the op the client requested: the client's
    # op_queue span must close at the server's op_start.
    trace = [
        E(1, 1, "C", "request", "buf.put"),
        E(2, 0, "server", "op_start", "buf.put"),
        E(3, 0, "server", "op_end", "buf.put"),
    ]
    spans = span_map(fold_spans(trace))
    assert spans[("op_queue", "C", "buf.put", 1)].end_seq == 2
    assert spans[("service", "server", "buf.put", 2)].end_seq == 3


# ----------------------------------------------------------------------
# Golden: a kill mid-possession closes spans with the crashed marker
# ----------------------------------------------------------------------
def test_golden_kill_mid_possession_closes_crashed():
    trace = [
        E(1, 1, "P1", "enter", "mon"),
        E(2, 2, "P2", "blocked", "mon.entry"),
        E(3, -1, "chaos", "killed", "P1", "fault"),
        E(4, 0, "S", "unblocked", "P2"),
        E(5, 2, "P2", "enter", "mon"),
        E(6, 2, "P2", "leave", "mon"),
    ]
    spans = fold_spans(trace)
    victim = [s for s in spans if s.pname == "P1"]
    assert len(victim) == 1
    assert victim[0].kind == "possession"
    assert victim[0].outcome == "crashed"
    assert victim[0].end_seq == 3
    # The survivor's spans are untouched.
    survivor = span_map(spans)[("possession", "P2", "mon", 5)]
    assert survivor.outcome == "ok"


def test_golden_open_spans_leak_at_end_of_trace():
    spans = fold_spans([E(1, 1, "P1", "blocked", "sem")])
    assert spans[0].outcome == "leaked"


# ----------------------------------------------------------------------
# Sink integration
# ----------------------------------------------------------------------
def test_null_sink_is_normalized_away():
    sched = Scheduler(sink=NullSink())
    assert sched._sink is None


def test_metrics_sink_counts_steps_and_switches():
    report = run_profile("bounded_buffer", "monitor")
    sink = report.sink
    assert isinstance(sink, MetricsSink)
    assert sink.steps > 0
    assert 0 < sink.context_switches < sink.steps
    assert sink.events == len(report.result.trace)
    # Probed queue depths reached the metrics.
    assert any(om.max_queue_depth > 0
               for om in report.metrics.objects.values())


def test_recording_sink_depth_timeline():
    report = run_profile("bounded_buffer", "semaphore")
    sink = report.sink
    assert isinstance(sink, RecordingSink)
    gauged = {obj for (__, __, __, obj, __) in sink.samples}
    assert any(obj.startswith("semaphore ") for obj in gauged)
    obj = sorted(gauged)[0]
    timeline = sink.depth_timeline(obj)
    assert timeline and all(len(point) == 2 for point in timeline)


def test_profile_deterministic_and_seeded():
    a = run_profile("bounded_buffer", "monitor")
    b = run_profile("bounded_buffer", "monitor")
    assert [s.to_dict() for s in a.spans] == [s.to_dict() for s in b.spans]
    seeded = run_profile("bounded_buffer", "monitor", seed=3)
    assert seeded.metrics.steps != 0
    assert seeded.seed == 3


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_chrome_trace_shape():
    report = run_profile("bounded_buffer", "monitor")
    doc = chrome_trace(report.spans, report.result.trace)
    assert set(doc) >= {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    assert events
    phases = {ev["ph"] for ev in events}
    assert phases <= {"X", "i", "M"}
    for ev in events:
        if ev["ph"] == "X":
            assert ev["dur"] >= 1
            assert {"name", "ts", "pid", "tid", "args"} <= set(ev)
    json.dumps(doc)  # must be serializable as-is


def _network_run():
    """A run whose trace carries the full network vocabulary: sends,
    delivers, drops, dups, delays, plus a scripted partition and heal."""
    from repro.dist import NetPlan, Network
    from repro.runtime.scheduler import Scheduler

    sched = Scheduler()
    plan = (NetPlan().drop("a", "b", nth=2).duplicate("a", "b", nth=3)
            .delay("a", "b", nth=4, ticks=2).partition(["a"], ["b"],
                                                       at=50, heal_at=60))
    net = Network(sched, plan)
    net.start()

    def sender():
        for i in range(5):
            yield from net.node("b").send(i)
            yield from sched.sleep(3)
        yield from sched.sleep(70)

    def receiver():
        for _ in range(4):  # one message is dropped
            yield from net.node("b").receive(timeout=100)

    sched.spawn(sender, name="a")
    sched.spawn(receiver, name="b")
    return sched.run()


def test_chrome_trace_network_track():
    from repro.obs import fold_spans

    result = _network_run()
    trace_kinds = {ev.kind for ev in result.trace}
    assert {"msg_send", "msg_deliver", "msg_drop", "msg_dup", "msg_delay",
            "net_partition", "net_heal"} <= trace_kinds
    doc = chrome_trace(list(fold_spans(result.trace)), result.trace)
    events = doc["traceEvents"]
    net_events = [ev for ev in events if ev.get("cat") == "network"]
    exported_kinds = {ev["name"].split(" ")[0] for ev in net_events}
    # Nothing network-flavoured is dropped or misfiled any more.
    assert {"msg_send", "msg_deliver", "msg_drop", "msg_dup", "msg_delay",
            "net_partition", "net_heal"} <= exported_kinds
    # All on one dedicated track, disjoint from every process track and
    # labelled "network" in the thread metadata.
    net_tids = {ev["tid"] for ev in net_events}
    assert len(net_tids) == 1
    net_tid = net_tids.pop()
    proc_tids = {ev["tid"] for ev in events
                 if ev["ph"] == "X" and ev.get("cat") != "network"}
    assert net_tid not in proc_tids
    names = {ev["tid"]: ev["args"]["name"] for ev in events
             if ev["ph"] == "M" and ev["name"] == "thread_name"}
    assert names[net_tid] == "network"
    for ev in net_events:
        assert ev["ph"] == "i"
        assert "pname" in ev["args"]
    json.dumps(doc)


def test_network_events_round_trip_through_jsonl():
    from repro.obs import fold_spans, parse_jsonl

    result = _network_run()
    spans = list(fold_spans(result.trace))
    lines = list(jsonl_lines(spans, result.trace))
    back_spans, back_events = parse_jsonl(lines)
    original = [(e.seq, e.kind, e.obj) for e in result.trace
                if e.kind.startswith(("msg_", "net_"))]
    recovered = [(e.seq, e.kind, e.obj) for e in back_events
                 if e.kind.startswith(("msg_", "net_"))]
    assert original and original == recovered
    assert len(back_spans) == len(spans)


def test_jsonl_lines_parse():
    report = run_profile("fcfs_resource", "semaphore")
    lines = list(jsonl_lines(report.spans, report.result.trace))
    records = [json.loads(line) for line in lines]
    kinds = {r["record"] for r in records}
    assert kinds == {"span", "event"}


# ----------------------------------------------------------------------
# Lazy trace views
# ----------------------------------------------------------------------
def test_trace_filter_is_lazy():
    trace = Trace()
    for index in range(5):
        trace.append(E(index, 1, "P1", "request" if index % 2 else "op_start",
                       "res.op"))
    view = trace.filter(kind="request")
    assert isinstance(view, TraceView)
    assert not isinstance(view, list)
    first = next(iter(view))
    assert first.seq == 1
    assert len(view) == 2
    assert view == [ev for ev in trace if ev.kind == "request"]
    assert bool(trace.filter(kind="nope")) is False


def test_trace_filter_criteria():
    trace = Trace()
    trace.append(E(1, 1, "P1", "request", "a"))
    trace.append(E(2, 2, "P2", "op_start", "a"))
    trace.append(E(3, 1, "P1", "op_end", "b"))
    assert [ev.seq for ev in trace.filter(pid=1)] == [1, 3]
    assert [ev.seq for ev in trace.filter(kind="request|op_end")] == [1, 3]
    assert [ev.seq for ev in trace.filter(obj="a", pname="P2")] == [2]


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_compute_metrics_without_sink():
    report = run_profile("bounded_buffer", "monitor")
    offline = compute_metrics(report.result, report.spans, sink=None)
    with_sink = report.metrics
    # Contention metrics are sink-independent (the sink additionally
    # contributes probe-gauge-only objects, so compare on offline's keys).
    for name, om in offline.objects.items():
        assert om.blocked_total == with_sink.objects[name].blocked_total
    assert offline.handoffs == with_sink.handoffs
    # Step counts come from the run result when no sink is present.
    assert offline.steps == report.result.steps


def test_metrics_render_and_dict():
    report = run_profile("staged_queue", "serializer")
    text = report.metrics.render()
    assert "switches=" in text and "object" in text
    payload = report.metrics.to_dict()
    json.dumps(payload)
    assert payload["steps"] == report.metrics.steps


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_profile_chrome_export(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main(["profile", "bounded_buffer", "monitor",
                 "--export", "chrome", "--out", str(out)])
    assert code == 0
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    assert "run:" in capsys.readouterr().out


def test_cli_profile_json(capsys):
    code = main(["profile", "fcfs_resource", "monitor", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["problem"] == "fcfs_resource"
    assert payload["spans"]


def test_cli_profile_unknown_pair_lists_choices(capsys):
    code = main(["profile", "bounded_buffer", "nope"])
    assert code == 1
    assert "bounded_buffer/monitor" in capsys.readouterr().out


def test_cli_metrics_table_and_json(capsys):
    code = main(["metrics", "--problem", "fcfs_resource"])
    assert code == 0
    table = capsys.readouterr().out
    assert "fcfs_resource" in table and "mechanism" in table
    code = main(["metrics", "--problem", "fcfs_resource",
                 "--mechanism", "monitor", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["mechanism"] == "monitor"


def test_cli_timeline_seed(capsys):
    assert main(["timeline", "--seed", "7"]) == 0
    assert capsys.readouterr().out.strip()
