"""Unit tests for serializers: possession, queues with guarantees, automatic
signalling, crowds, join/leave, dispatch priorities, and protocol errors."""

import pytest

from repro.mechanisms import Serializer
from repro.runtime import IllegalOperationError, ProcessFailed, Scheduler


def test_possession_is_exclusive():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    inside = []
    overlap = []

    def body(tag):
        yield from ser.enter()
        inside.append(tag)
        overlap.append(len(inside))
        inside.remove(tag)
        ser.exit()

    for tag in "abc":
        sched.spawn(body, tag, name=tag)
    sched.run()
    assert max(overlap) == 1


def test_entry_is_fifo():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    order = []

    def body(tag):
        yield from ser.enter()
        order.append(tag)
        yield
        ser.exit()

    for tag in "abc":
        sched.spawn(body, tag, name=tag)
    sched.run()
    assert order == ["a", "b", "c"]


def test_enqueue_with_true_guarantee_proceeds():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    q = ser.queue("q")
    done = []

    def body():
        yield from ser.enter()
        yield from ser.enqueue(q, lambda: True)
        done.append(True)
        ser.exit()

    sched.spawn(body)
    sched.run()
    assert done == [True]


def test_enqueue_blocks_until_guarantee_holds():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    q = ser.queue("q")
    flag = {"open": False}
    order = []

    def waiter():
        yield from ser.enter()
        yield from ser.enqueue(q, lambda: flag["open"])
        order.append("waiter")
        ser.exit()

    def opener():
        yield
        yield from ser.enter()
        flag["open"] = True
        order.append("opener")
        ser.exit()  # automatic signalling re-evaluates the guarantee

    sched.spawn(waiter, name="w")
    sched.spawn(opener, name="o")
    sched.run()
    assert order == ["opener", "waiter"]


def test_automatic_signalling_no_explicit_signal_needed():
    """The defining serializer feature: nobody calls signal; releasing
    possession re-evaluates guarantees."""
    sched = Scheduler()
    ser = Serializer(sched, "s")
    q = ser.queue("q")
    counter = {"n": 0}
    woken = []

    def waiter(tag, threshold):
        yield from ser.enter()
        yield from ser.enqueue(q, lambda: counter["n"] >= threshold)
        woken.append(tag)
        ser.exit()

    def incrementer():
        for _ in range(3):
            yield
            yield from ser.enter()
            counter["n"] += 1
            ser.exit()

    sched.spawn(waiter, "t1", 1, name="t1")
    sched.spawn(incrementer, name="inc")
    sched.run()
    assert woken == ["t1"]


def test_queue_is_fifo_head_blocks_tail():
    """Only the queue *head* is eligible: a true-guarantee process behind a
    false-guarantee head must wait (strict FIFO within a queue)."""
    sched = Scheduler()
    ser = Serializer(sched, "s")
    q = ser.queue("q")
    flag = {"open": False}
    order = []

    def first():
        yield from ser.enter()
        yield from ser.enqueue(q, lambda: flag["open"])
        order.append("first")
        ser.exit()

    def second():
        yield
        yield from ser.enter()
        yield from ser.enqueue(q, lambda: True)
        order.append("second")
        ser.exit()

    def opener():
        yield
        yield
        yield
        yield from ser.enter()
        flag["open"] = True
        ser.exit()

    sched.spawn(first, name="f")
    sched.spawn(second, name="s2")
    sched.spawn(opener, name="o")
    sched.run()
    assert order == ["first", "second"]


def test_earlier_queue_has_dispatch_priority():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    high = ser.queue("high")
    low = ser.queue("low")
    gate = {"open": False}
    order = []

    def proc(tag, q):
        yield from ser.enter()
        yield from ser.enqueue(q, lambda: gate["open"])
        order.append(tag)
        ser.exit()

    def opener():
        yield
        yield
        yield from ser.enter()
        gate["open"] = True
        ser.exit()

    sched.spawn(proc, "low", low, name="L")
    sched.spawn(proc, "high", high, name="H")
    sched.spawn(opener, name="O")
    sched.run()
    assert order == ["high", "low"]


def test_crowd_membership_and_empty():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    crowd = ser.crowd("readers")
    observed = []

    def user():
        yield from ser.enter()
        yield from ser.join_crowd(crowd)
        yield  # using the resource, outside possession
        yield from ser.leave_crowd(crowd)
        ser.exit()

    def watcher():
        observed.append((len(crowd), crowd.member_names()))
        yield

    sched.spawn(user, name="u")
    sched.spawn(watcher, name="w")
    sched.run()
    assert observed == [(1, ["u"])]
    assert crowd.empty


def test_join_crowd_releases_possession():
    """While a process is in the crowd, others can enter the serializer —
    the concurrency monitors lack (§5.2)."""
    sched = Scheduler()
    ser = Serializer(sched, "s")
    crowd = ser.crowd("c")
    order = []

    def long_user():
        yield from ser.enter()
        yield from ser.join_crowd(crowd)
        order.append("user-in-crowd")
        yield
        yield
        yield from ser.leave_crowd(crowd)
        order.append("user-left")
        ser.exit()

    def visitor():
        yield
        yield from ser.enter()
        order.append("visitor-inside")
        ser.exit()

    sched.spawn(long_user, name="u")
    sched.spawn(visitor, name="v")
    sched.run()
    assert order.index("visitor-inside") < order.index("user-left")


def test_guarantee_reads_crowd_state():
    """Writers wait for crowd.empty — the canonical readers/writers shape."""
    sched = Scheduler()
    ser = Serializer(sched, "s")
    readers = ser.crowd("readers")
    q = ser.queue("q")
    order = []

    def reader():
        yield from ser.enter()
        yield from ser.join_crowd(readers)
        order.append("read-start")
        yield
        yield
        yield from ser.leave_crowd(readers)
        order.append("read-end")
        ser.exit()

    def writer():
        yield
        yield from ser.enter()
        yield from ser.enqueue(q, lambda: readers.empty)
        order.append("write")
        ser.exit()

    sched.spawn(reader, name="r")
    sched.spawn(writer, name="w")
    sched.run()
    assert order.index("read-end") < order.index("write")


def test_rejoin_outranks_queues_and_entry():
    """A process returning from a crowd gets possession before queued and
    entering processes."""
    sched = Scheduler()
    ser = Serializer(sched, "s")
    crowd = ser.crowd("c")
    order = []

    def user():
        yield from ser.enter()
        yield from ser.join_crowd(crowd)
        yield
        yield from ser.leave_crowd(crowd)
        order.append("rejoiner")
        ser.exit()

    def entrant():
        yield
        yield from ser.enter()
        order.append("entrant")
        ser.exit()

    sched.spawn(user, name="u")
    sched.spawn(entrant, name="e")
    sched.run()
    # The entrant grabbed possession while the user was in the crowd (that is
    # the point of crowds); but once both wait, the rejoiner wins.
    assert "rejoiner" in order and "entrant" in order


def test_exit_without_possession_raises():
    sched = Scheduler()
    ser = Serializer(sched, "s")

    def body():
        yield
        ser.exit()

    sched.spawn(body)
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, IllegalOperationError)


def test_enqueue_without_possession_raises():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    q = ser.queue("q")

    def body():
        yield
        yield from ser.enqueue(q)

    sched.spawn(body)
    with pytest.raises(ProcessFailed):
        sched.run()


def test_leave_crowd_never_joined_raises():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    crowd = ser.crowd("c")

    def body():
        yield
        yield from ser.leave_crowd(crowd)

    sched.spawn(body)
    with pytest.raises(ProcessFailed):
        sched.run()


def test_reenter_raises():
    sched = Scheduler()
    ser = Serializer(sched, "s")

    def body():
        yield from ser.enter()
        yield from ser.enter()

    sched.spawn(body)
    with pytest.raises(ProcessFailed):
        sched.run()


def test_queue_len_and_empty():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    q = ser.queue("q")
    observed = []

    def waiter():
        yield from ser.enter()
        yield from ser.enqueue(q, lambda: observed)  # truthy once observed
        ser.exit()

    def checker():
        yield
        observed.append((len(q), q.empty))
        # Guarantees are only re-evaluated when possession is released, so
        # pass through the serializer once to trigger dispatch.
        yield from ser.enter()
        ser.exit()

    sched.spawn(waiter, name="w")
    sched.spawn(checker, name="c")
    sched.run()
    assert observed[0] == (1, False)
    assert q.empty


def test_possessor_name_tracking():
    sched = Scheduler()
    ser = Serializer(sched, "s")
    seen = []

    def body():
        yield from ser.enter()
        seen.append(ser.possessor_name)
        ser.exit()
        seen.append(ser.possessor_name)

    sched.spawn(body, name="owner")
    sched.run()
    assert seen == ["owner", None]
