"""Public-API surface checks: everything advertised in ``__all__`` exists,
and the README's import paths work."""

import importlib

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.runtime",
    "repro.mechanisms",
    "repro.mechanisms.pathexpr",
    "repro.resources",
    "repro.problems",
    "repro.problems.registry",
    "repro.core",
    "repro.analysis",
    "repro.verify",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_package_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize(
    "name",
    [
        "repro.runtime",
        "repro.mechanisms",
        "repro.mechanisms.pathexpr",
        "repro.resources",
        "repro.core",
        "repro.analysis",
        "repro.verify",
    ],
)
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), "{}.{} missing".format(name, symbol)


def test_version():
    assert repro.__version__ == "1.0.0"


def test_readme_quickstart_import_path():
    from repro.problems.registry import build_evaluator

    report = build_evaluator().evaluate(run_verifiers=False)
    assert report.render()


def test_mechanism_classes_importable_from_one_place():
    from repro.mechanisms import (  # noqa: F401
        Channel,
        Condition,
        Crowd,
        EventCount,
        GuardedPathResource,
        Monitor,
        PathResource,
        ReceiveOp,
        SendOp,
        Sequencer,
        Serializer,
        SharedRegion,
        select,
    )


def test_every_solution_class_declares_identity():
    from repro.problems.registry import all_solutions

    for entry in all_solutions():
        sched_free_cls = type(entry.factory.__closure__ and None)
        del sched_free_cls
        assert entry.description.problem == entry.problem
        assert entry.description.mechanism == entry.mechanism
