"""Unit tests for the liveness analysis and the ASCII timeline renderer."""

from repro.problems.readers_writers import (
    MonitorRWFcfs,
    PathReadersPriority,
    run_workload,
)
from repro.problems.readers_writers.anomaly import footnote3_workload
from repro.runtime import Scheduler, render_timeline
from repro.runtime.trace import Event, Trace
from repro.verify import (
    check_bounded_waiting,
    class_wait_summary,
    starvation_report,
    unserved_requests,
    waiting_times,
)


def build_trace(events):
    trace = Trace()
    for seq, (pid, kind, obj) in enumerate(events):
        trace.append(Event(seq, 0, pid, "P{}".format(pid), kind, obj))
    return trace


# ----------------------------------------------------------------------
# waiting_times / unserved_requests
# ----------------------------------------------------------------------
def test_waiting_times_pairs_request_with_start():
    trace = build_trace([
        (1, "request", "r.use"),     # seq 0
        (2, "request", "r.use"),     # seq 1
        (1, "op_start", "r.use"),    # seq 2 -> wait 2
        (2, "op_start", "r.use"),    # seq 3 -> wait 2
    ])
    waits = waiting_times(trace, "r", ["use"])
    assert [w.duration for w in waits] == [2, 2]
    assert waits[0].pname == "P1"


def test_waiting_times_handles_repeat_requests():
    trace = build_trace([
        (1, "request", "r.use"),
        (1, "op_start", "r.use"),
        (1, "request", "r.use"),
        (1, "op_start", "r.use"),
    ])
    waits = waiting_times(trace, "r", ["use"])
    assert [w.duration for w in waits] == [1, 1]


def test_unserved_requests_found():
    trace = build_trace([
        (1, "request", "r.use"),
        (1, "op_start", "r.use"),
        (2, "request", "r.use"),  # never served
    ])
    starved = unserved_requests(trace, "r", ["use"])
    assert starved == [("P2", "r.use", 2)]


def test_class_wait_summary():
    trace = build_trace([
        (1, "request", "db.read"),
        (2, "request", "db.write"),
        (1, "op_start", "db.read"),
        (3, "request", "db.read"),
    ])
    summaries = class_wait_summary(trace, "db", ["read", "write"])
    assert summaries["read"].served == 1
    assert summaries["read"].unserved == 1
    assert summaries["write"].served == 0
    assert summaries["write"].unserved == 1


def test_check_bounded_waiting_flags_long_waits():
    trace = build_trace([
        (1, "request", "r.use"),
        (2, "request", "r.use"),
        (2, "op_start", "r.use"),
        (2, "op_end", "r.use"),
        (1, "op_start", "r.use"),  # waited 4
    ])
    assert check_bounded_waiting(trace, "r", ["use"], bound=2)
    assert check_bounded_waiting(trace, "r", ["use"], bound=10) == []


def test_check_bounded_waiting_flags_starvation():
    trace = build_trace([
        (1, "request", "r.use"),
    ])
    violations = check_bounded_waiting(trace, "r", ["use"], bound=100)
    assert violations and "never served" in violations[0]


def test_starvation_report_renders():
    trace = build_trace([
        (1, "request", "db.read"),
        (1, "op_start", "db.read"),
    ])
    text = starvation_report(trace, "db", ["read", "write"])
    assert "db.read" in text and "db.write" in text


# ----------------------------------------------------------------------
# Integration: the paper's starvation claim measured
# ----------------------------------------------------------------------
def test_writer_starves_under_readers_priority_stream():
    """§5.1.1: the spec 'allows writers to starve' — with a sustained
    reader stream, the writer's wait dwarfs every reader's."""
    sched = Scheduler()
    impl = PathReadersPriority(sched)

    def reader_stream(rounds):
        def body():
            for __ in range(rounds):
                yield from impl.read(work=2)
        return body

    def writer():
        yield
        yield from impl.write(1, work=1)

    sched.spawn(reader_stream(6), name="Ra")
    sched.spawn(reader_stream(6), name="Rb")
    sched.spawn(writer, name="W")
    result = sched.run()
    summaries = class_wait_summary(result.trace, "db", ["read", "write"])
    assert summaries["write"].max_wait > summaries["read"].max_wait * 3


def test_fcfs_bounds_waiting():
    """Under FCFS nobody's wait explodes relative to the others."""
    from repro.problems.readers_writers import BURST_PLAN

    result = run_workload(lambda sched: MonitorRWFcfs(sched), BURST_PLAN * 2)
    waits = waiting_times(result.trace, "db", ["read", "write"])
    assert waits
    assert unserved_requests(result.trace, "db", ["read", "write"]) == []


# ----------------------------------------------------------------------
# Timeline rendering
# ----------------------------------------------------------------------
def test_timeline_shows_anomaly_shape():
    result = footnote3_workload(
        lambda sched: PathReadersPriority(sched)
    )
    chart = render_timeline(
        result.trace, {"db.read": "R", "db.write": "W"}
    )
    lines = {row.split(" |")[0].strip(): row for row in chart.splitlines()}
    assert set(lines) == {"W1", "W2", "R1"}
    # W2's write appears before R1's read (the overtake), left to right.
    w2_col = lines["W2"].index("W", lines["W2"].index("|"))
    r1_col = lines["R1"].index("R", lines["R1"].index("|"))
    assert w2_col < r1_col


def test_timeline_empty_trace():
    assert "no matching events" in render_timeline(Trace(), {"x.y": "X"})


def test_timeline_width_squeeze():
    result = footnote3_workload(lambda sched: PathReadersPriority(sched))
    chart = render_timeline(
        result.trace, {"db.read": "R", "db.write": "W"}, width=40
    )
    for row in chart.splitlines():
        body = row.split("| ", 1)[1]
        assert len(body) <= 40


def test_timeline_include_filter():
    result = footnote3_workload(lambda sched: PathReadersPriority(sched))
    chart = render_timeline(
        result.trace, {"db.write": "W"}, include=["W1"]
    )
    assert chart.splitlines()[0].startswith("W1")
    assert len(chart.splitlines()) == 1
