"""Unit tests for the unsynchronized resources: integrity detection, state
queries, and the generic ProtectedResource structure."""

import pytest

from repro.resources import (
    BoundedBuffer,
    Database,
    Disk,
    ProtectedResource,
    ResourceIntegrityError,
    SlotBuffer,
    Synchronizer,
    fcfs_seek_distance,
    scan_order,
)
from repro.runtime import Mutex, ProcessFailed, Scheduler


def drain(gen):
    """Run a resource-op generator to completion outside a scheduler."""
    try:
        while True:
            next(gen)
    except StopIteration as stop:
        return stop.value


# ----------------------------------------------------------------------
# BoundedBuffer
# ----------------------------------------------------------------------
def test_buffer_put_get_fifo():
    buf = BoundedBuffer(3)
    drain(buf.put("a"))
    drain(buf.put("b"))
    assert drain(buf.get()) == "a"
    assert drain(buf.get()) == "b"


def test_buffer_state_queries():
    buf = BoundedBuffer(2)
    assert buf.empty and not buf.full
    drain(buf.put(1))
    drain(buf.put(2))
    assert buf.full and buf.size == 2


def test_buffer_overflow_detected():
    buf = BoundedBuffer(1)
    drain(buf.put(1))
    with pytest.raises(ResourceIntegrityError):
        drain(buf.put(2))


def test_buffer_underflow_detected():
    buf = BoundedBuffer(1)
    with pytest.raises(ResourceIntegrityError):
        drain(buf.get())


def test_buffer_overlap_detected():
    buf = BoundedBuffer(2)
    op1 = buf.put(1)
    next(op1)  # in progress, parked at the yield
    with pytest.raises(ResourceIntegrityError):
        drain(buf.put(2))


def test_buffer_bad_capacity():
    with pytest.raises(ValueError):
        BoundedBuffer(0)


# ----------------------------------------------------------------------
# SlotBuffer
# ----------------------------------------------------------------------
def test_slot_alternation_happy_path():
    slot = SlotBuffer()
    drain(slot.put("x"))
    assert slot.occupied
    assert drain(slot.get()) == "x"
    assert not slot.occupied


def test_slot_double_put_detected():
    slot = SlotBuffer()
    drain(slot.put(1))
    with pytest.raises(ResourceIntegrityError):
        drain(slot.put(2))


def test_slot_get_before_put_detected():
    slot = SlotBuffer()
    with pytest.raises(ResourceIntegrityError):
        drain(slot.get())


def test_slot_overlap_detected():
    slot = SlotBuffer()
    op = slot.put(1)
    next(op)
    with pytest.raises(ResourceIntegrityError):
        drain(slot.get())


# ----------------------------------------------------------------------
# Database
# ----------------------------------------------------------------------
def test_database_read_write():
    db = Database(initial=10)
    assert drain(db.read()) == 10
    drain(db.write(42))
    assert drain(db.read()) == 42
    assert db.version == 1
    assert db.reads_served == 2


def test_database_concurrent_reads_ok():
    db = Database()
    r1 = db.read()
    next(r1)
    r2 = db.read()
    next(r2)
    assert db.active_readers == 2
    drain(r1)
    drain(r2)


def test_database_write_during_read_detected():
    db = Database()
    r = db.read()
    next(r)
    with pytest.raises(ResourceIntegrityError):
        drain(db.write(1))


def test_database_read_during_write_detected():
    db = Database()
    w = db.write(1)
    next(w)
    with pytest.raises(ResourceIntegrityError):
        drain(db.read())


def test_database_overlapping_writes_detected():
    db = Database()
    w = db.write(1)
    next(w)
    with pytest.raises(ResourceIntegrityError):
        drain(db.write(2))


def test_database_torn_read_detected():
    """A write that commits while a read is parked must be caught even after
    the writer flag clears."""
    db = Database()
    r = db.read()
    next(r)  # read in progress
    db._active_readers -= 1  # simulate a broken scheme losing track
    drain(db.write(5))
    db._active_readers += 1
    with pytest.raises(ResourceIntegrityError):
        drain(r)


# ----------------------------------------------------------------------
# Disk
# ----------------------------------------------------------------------
def test_disk_transfer_accounting():
    disk = Disk(tracks=100, start_track=10)
    drain(disk.transfer(40))
    drain(disk.transfer(20))
    assert disk.served == [40, 20]
    assert disk.total_seek == 30 + 20
    assert disk.head == 20


def test_disk_overlap_detected():
    disk = Disk()
    op = disk.transfer(5)
    next(op)
    with pytest.raises(ResourceIntegrityError):
        drain(disk.transfer(6))


def test_disk_range_checks():
    disk = Disk(tracks=10)
    with pytest.raises(ResourceIntegrityError):
        drain(disk.transfer(10))
    with pytest.raises(ValueError):
        Disk(tracks=0)
    with pytest.raises(ValueError):
        Disk(tracks=5, start_track=9)


def test_fcfs_seek_distance():
    assert fcfs_seek_distance(0, [10, 5, 20]) == 10 + 5 + 15


def test_scan_order_sweeps_up_then_down():
    assert scan_order(50, [10, 60, 55, 90, 40]) == [55, 60, 90, 40, 10]


def test_scan_order_descending_start():
    assert scan_order(50, [10, 60], ascending=False) == [10, 60]


def test_scan_order_empty():
    assert scan_order(0, []) == []


# ----------------------------------------------------------------------
# ProtectedResource
# ----------------------------------------------------------------------
class MutexSynchronizer(Synchronizer):
    """Simplest possible synchronizer: one big lock."""

    def __init__(self, sched):
        self._lock = Mutex(sched, "guard")

    def before(self, op, args):
        yield from self._lock.acquire()

    def after(self, op, args):
        self._lock.release()
        return
        yield  # pragma: no cover


def test_protected_resource_serializes_access():
    sched = Scheduler()
    buf = BoundedBuffer(5)
    shared = ProtectedResource(sched, buf, MutexSynchronizer(sched), "buf")
    got = []

    def producer():
        for i in range(3):
            yield from shared.invoke("put", i)

    def consumer():
        for _ in range(3):
            value = yield from shared.invoke("get")
            got.append(value)

    sched.spawn(producer, name="prod")
    sched.spawn(consumer, name="cons")
    # NB: with a bare mutex the consumer can still hit an empty buffer — the
    # lock serializes but does not schedule.  Use a producer-first workload.
    result = sched.run(on_error="record")
    # Under FIFO scheduling producer leads, so this succeeds:
    assert got == [0, 1, 2]
    kinds = result.trace.kinds()
    assert "request" in kinds and "op_start" in kinds and "op_end" in kinds


def test_protected_resource_unprotected_race_is_caught():
    sched = Scheduler()
    buf = BoundedBuffer(5)
    shared = ProtectedResource(sched, buf, Synchronizer(), "buf")

    def producer(tag):
        yield from shared.invoke("put", tag)

    sched.spawn(producer, 1, name="p1")
    sched.spawn(producer, 2, name="p2")
    with pytest.raises(ProcessFailed) as err:
        sched.run()
    assert isinstance(err.value.__cause__, ResourceIntegrityError)
