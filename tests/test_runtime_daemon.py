"""Tests for daemon processes: run termination, blocked reporting, and
interaction with timers and deadlock detection."""

import pytest

from repro.mechanisms import Channel
from repro.runtime import DeadlockError, Scheduler


def test_run_ends_when_only_daemons_remain():
    sched = Scheduler()
    served = []

    def server():
        while True:
            served.append(len(served))
            yield

    def client():
        yield
        yield

    sched.spawn(server, name="srv", daemon=True)
    sched.spawn(client, name="cli")
    result = sched.run()
    assert result.blocked == []
    assert served  # the daemon did run while the client was alive


def test_blocked_daemon_is_not_a_deadlock():
    sched = Scheduler()
    chan = Channel(sched, "c")

    def server():
        while True:
            yield from chan.receive()

    def client():
        yield from chan.send(1)

    sched.spawn(server, name="srv", daemon=True)
    sched.spawn(client, name="cli")
    result = sched.run()  # must not raise DeadlockError
    assert result.blocked == []


def test_blocked_nondaemon_still_deadlocks():
    sched = Scheduler()
    chan = Channel(sched, "c")

    def server():
        while True:
            yield from chan.receive()

    def lonely():
        other = Channel(sched, "other")
        yield from other.receive()  # nobody will ever send

    sched.spawn(server, name="srv", daemon=True)
    sched.spawn(lonely, name="lonely")
    with pytest.raises(DeadlockError):
        sched.run()


def test_daemon_flag_on_process():
    sched = Scheduler()

    def body():
        yield

    daemon = sched.spawn(body, name="d", daemon=True)
    normal = sched.spawn(body, name="n")
    assert daemon.daemon is True
    assert normal.daemon is False
    sched.run()


def test_pure_daemon_run_ends_immediately():
    sched = Scheduler()
    ticks = []

    def server():
        while True:
            ticks.append(1)
            yield

    sched.spawn(server, name="srv", daemon=True)
    result = sched.run()
    assert result.steps == 0
    assert ticks == []


def test_daemon_with_timer_does_not_stall_run():
    """A sleeping daemon must not keep advancing virtual time after every
    non-daemon finished."""
    sched = Scheduler()

    def ticker():
        while True:
            yield from sched.sleep(1)

    def client():
        yield from sched.sleep(2)

    sched.spawn(ticker, name="tick", daemon=True)
    sched.spawn(client, name="cli")
    result = sched.run()
    assert result.time <= 3
