"""The parallel frontier: results must not depend on worker count.

The CI matrix exercises one entry with REPRO_EXPLORE_TEST_WORKERS=2; the
determinism regression always additionally compares against 4 workers."""

import os

import pytest

from repro.explore import ExplorationResult, explore_parallel, get_target

ENV_WORKERS = int(os.environ.get("REPRO_EXPLORE_TEST_WORKERS", "0"))


def as_tuple(result: ExplorationResult):
    return (
        result.runs,
        result.violations,
        result.exhausted,
        result.pruned,
        result.states,
        result.witness,
    )


def test_workers_1_vs_4_identical_on_violating_space():
    # Same seed + budget => identical ExplorationResult, including the
    # violation list and witness, for 1 and 4 workers (satellite 2).
    target = get_target("footnote3", "monitor")
    kwargs = dict(max_runs=300, max_depth=60, prune=True, seed=11)
    serial = explore_parallel(target, workers=1, **kwargs)
    fleet = explore_parallel(target, workers=4, **kwargs)
    assert serial.violations, "budget must reach violating schedules"
    assert as_tuple(serial) == as_tuple(fleet)


def test_workers_identical_on_exhaustive_space():
    target = get_target("bounded_buffer", "monitor")
    kwargs = dict(max_runs=5000, max_depth=60, prune=True)
    serial = explore_parallel(target, workers=1, **kwargs)
    fleet = explore_parallel(target, workers=4, **kwargs)
    assert serial.exhausted
    assert as_tuple(serial) == as_tuple(fleet)


@pytest.mark.skipif(ENV_WORKERS < 2,
                    reason="REPRO_EXPLORE_TEST_WORKERS not set")
def test_env_selected_worker_count_is_deterministic_too():
    target = get_target("staged_queue", "monitor")
    kwargs = dict(max_runs=200, max_depth=60, prune=True, seed=3)
    serial = explore_parallel(target, workers=1, **kwargs)
    fleet = explore_parallel(target, workers=ENV_WORKERS, **kwargs)
    assert as_tuple(serial) == as_tuple(fleet)


def test_exhaustive_results_are_seed_independent():
    target = get_target("one_slot_buffer", "monitor")
    one = explore_parallel(target, workers=1, max_runs=5000, prune=True,
                           seed=1)
    other = explore_parallel(target, workers=1, max_runs=5000, prune=True,
                             seed=99)
    assert one.exhausted and other.exhausted
    assert one.runs == other.runs
    assert sorted(one.violations) == sorted(other.violations)


def test_seed_steers_budgeted_searches():
    target = get_target("footnote3", "monitor")
    fixed = dict(workers=1, max_runs=40, max_depth=60, prune=True)
    base = explore_parallel(target, seed=5, **fixed)
    again = explore_parallel(target, seed=5, **fixed)
    assert as_tuple(base) == as_tuple(again), "same seed must replay"
    shifted = explore_parallel(target, seed=6, **fixed)
    # Different seeds visit the truncated space in a different order;
    # the run *count* stays pinned to the budget either way.
    assert shifted.runs == base.runs == 40


def test_checker_override_requires_single_worker():
    target = get_target("bounded_buffer", "monitor")
    override = lambda run: []
    result = explore_parallel(target, override, workers=1, max_runs=50)
    assert result.runs == 50
    with pytest.raises(ValueError):
        explore_parallel(target, override, workers=2, max_runs=50)


def test_stop_at_first_parity_across_workers():
    target = get_target("footnote3", "monitor")
    kwargs = dict(max_runs=500, max_depth=60, prune=True,
                  stop_at_first=True)
    serial = explore_parallel(target, workers=1, **kwargs)
    fleet = explore_parallel(target, workers=4, **kwargs)
    assert serial.witness is not None
    assert as_tuple(serial) == as_tuple(fleet)
