"""Combined-fault resilience: durable state, crash-restart supervision,
fencing enforcement, and the joint crash x partition fault-plan search
(DESIGN.md section 16).

The acceptance bar: neither a crash alone nor a partition alone harms the
restart-lock scenario, the combined pair yields a split-brain witness when
the resource does not check fencing tokens, the very same pair is
partition-tolerant with fencing on — and the joint search finds and
ddmin-minimizes that pair automatically.
"""

import pytest

from repro.dist import Network
from repro.obs.recovery import compute_availability
from repro.problems.distributed import build_restart_lock
from repro.resilience import (
    QUARANTINE,
    REPLAY,
    CrashSpec,
    CutSpec,
    DurableStore,
    FencedResource,
    NodeSupervisor,
    describe_joint,
    expected_resilience_classifications,
    joint_plan,
    minimize_joint_set,
    resilience_scenarios,
    search_joint_plans,
    search_restart_witness,
)
from repro.runtime.errors import WaitTimeout
from repro.runtime.faults import FaultPlan
from repro.runtime.policies import ScriptedPolicy
from repro.runtime.scheduler import Scheduler
from repro.verify.partition import SPLIT_BRAIN, TOLERANT, check_fencing

# The hand-written minimal combined fault: kill c0 mid-hold, with a
# partition around the restart window that heals later.  Matches the
# restart_lock cells in the resilience report.
COMBINED = (CrashSpec("c0", at_time=14), CutSpec("c0", at=12, heal_at=70))


def _restart_run(faults=(), fencing=True):
    fault_plan, netplan = joint_plan(list(faults))
    return build_restart_lock(ScriptedPolicy([]), netplan, fault_plan,
                              fencing=fencing)


# ----------------------------------------------------------------------
# Durable store
# ----------------------------------------------------------------------
class TestDurableStore:
    def test_namespace_persists_and_snapshots(self):
        store = DurableStore()
        ns = store.namespace("n0")
        ns.put("seq", 7)
        assert store.namespace("n0") is ns       # one namespace per node
        assert ns.get("seq") == 7
        assert "seq" in ns and len(ns) == 1
        snap = ns.snapshot()
        ns.put("seq", 8)
        assert snap == {"seq": 7}                # snapshot is a copy
        assert store.snapshot() == {"n0": {"seq": 8}}

    def test_delete_and_clear(self):
        ns = DurableStore().namespace("n0")
        ns.put("a", 1)
        ns.delete("a")
        ns.delete("missing")                     # idempotent
        assert ns.get("a", "gone") == "gone"
        ns.put("b", 2)
        ns.clear()
        assert len(ns) == 0

    def test_begin_wipes_for_replay(self):
        store = DurableStore()
        store.namespace("n0").put("k", 1)
        store.begin()
        assert store.snapshot() == {}
        assert store.namespace("n0").get("k") is None


# ----------------------------------------------------------------------
# Fencing enforcement
# ----------------------------------------------------------------------
class TestFencedResource:
    def test_rejects_stale_token_when_enforcing(self):
        sched = Scheduler()
        res = FencedResource(sched, "store")
        assert res.access("c0", 1)
        assert res.access("c1", 2)               # newer session
        assert not res.access("c0", 1)           # stale: fenced out
        assert res.access("c1", 2)               # same session again: fine
        assert res.stats() == {"writes": 3, "rejected": 1,
                               "highest": 2, "enforced": True}
        # The rejection is trace-visible for the oracle.
        reject = sched.trace.first(kind="fence_reject")
        assert reject.obj == "c0"
        assert reject.detail == {"token": 1, "highest": 2}

    def test_unenforced_resource_records_the_violation(self):
        sched = Scheduler()
        res = FencedResource(sched, "store", enforce=False)
        assert res.access("c1", 2)
        assert res.access("c0", 1)               # accepted: no check

        class _Run:                              # check_fencing reads .trace
            trace = sched.trace

        violations = check_fencing(_Run())
        assert violations and "token" in violations[0]


# ----------------------------------------------------------------------
# NodeSupervisor: restart with durable state and rejoin rules
# ----------------------------------------------------------------------
def _supervised_node_run(rejoin):
    """Kill node n0 at t=8 while a peer keeps sending; restart at t=12.
    Returns (result, store, nodesup)."""
    plan = FaultPlan().kill("n0", at_time=8)
    sched = Scheduler(fault_plan=plan)
    net = Network(sched)
    store = DurableStore()

    from repro.recover import FixedBackoff, RestartPolicy

    def body(incarnation, ns):
        if incarnation == 1:
            ns.put("legacy", 42)                 # durable record
        got = []                                 # volatile: dies with us
        while sched.now < 30:
            try:
                msg = yield from net.node("n0").receive(
                    timeout=30 - sched.now)
            except WaitTimeout:
                break
            got.append(msg)
        return {"incarnation": incarnation, "got": got,
                "legacy": ns.get("legacy")}

    def peer():
        yield from sched.sleep(9)
        yield from net.node("n0").send("while-dead-1")   # t=9
        yield from sched.sleep(1)
        yield from net.node("n0").send("while-dead-2")   # t=10
        yield from sched.sleep(5)
        yield from net.node("n0").send("after-rejoin")   # t=15

    def ticker():
        # Keeps the virtual clock advancing tick by tick so the at_time
        # kill fires punctually at t=8.
        for _ in range(31):
            yield from sched.sleep(1)

    nsup = NodeSupervisor(
        sched, net, store,
        RestartPolicy(backoff=FixedBackoff(4)), rejoin=rejoin)
    nsup.node("n0", body)
    nsup.start()
    sched.spawn(peer, name="peer")
    sched.spawn(ticker, name="ticker")
    result = sched.run(on_deadlock="return", on_error="record")
    return result, store, nsup


class TestNodeSupervisor:
    def test_quarantine_drops_backlog_keeps_durable_state(self):
        result, store, nsup = _supervised_node_run(QUARANTINE)
        out = result.results["n0"]
        assert out["incarnation"] == 2
        assert nsup.incarnations("n0") == 2
        # Durable record written by incarnation 1 survived the crash...
        assert out["legacy"] == 42
        assert store.namespace("n0").get("legacy") == 42
        # ...but the while-dead backlog was quarantined on rejoin: the
        # new incarnation only sees traffic sent after it came back.
        assert out["got"] == ["after-rejoin"]
        rejoin = result.trace.first(kind="node_rejoin")
        assert rejoin.detail == {"incarnation": 2}
        quarantine = result.trace.first(kind="inbox_quarantine")
        assert quarantine.detail == {"dropped": 2}
        restart = result.trace.filter(kind="restart", obj="n0")[0]
        killed = result.trace.filter(kind="killed", obj="n0")[0]
        assert killed.time == 8
        assert restart.time - killed.time == 4   # the configured backoff

    def test_replay_hands_backlog_to_new_incarnation(self):
        result, __, __ = _supervised_node_run(REPLAY)
        out = result.results["n0"]
        assert out["incarnation"] == 2
        assert out["got"] == ["while-dead-1", "while-dead-2",
                              "after-rejoin"]
        assert result.trace.first(kind="inbox_quarantine") is None

    def test_rejects_unknown_rejoin_policy(self):
        sched = Scheduler()
        net = Network(sched)
        with pytest.raises(ValueError):
            NodeSupervisor(sched, net, rejoin="resurrect")


# ----------------------------------------------------------------------
# The restart-lock scenario: fault minimality and both fencing worlds
# ----------------------------------------------------------------------
class TestRestartLockScenario:
    def test_crash_alone_is_survivable(self):
        # The restarted incarnation's polite renewal succeeds — no stale
        # writes in either fencing world, so the crash is not a witness.
        for fencing in (True, False):
            run = _restart_run([COMBINED[0]], fencing=fencing)
            assert check_fencing(run) == []
            assert run.results["c0"]["stale_writes"] == 0
            assert run.results["c0"]["incarnations"] == 2

    def test_partition_alone_is_survivable(self):
        # The original incarnation's volatile validity check fences it
        # out at its horizon; no restart, no amnesia.
        for fencing in (True, False):
            run = _restart_run([COMBINED[1]], fencing=fencing)
            assert check_fencing(run) == []
            assert run.results["c0"]["stale_writes"] == 0
            assert run.results["c0"]["incarnations"] == 1

    def test_combined_faults_split_brain_when_unfenced(self):
        run = _restart_run(COMBINED, fencing=False)
        # The amnesiac holder resumed writing with its dead session's
        # token after the new holder took over: exclusion broke.
        assert run.results["c0"]["stale_writes"] > 0
        assert run.results["c1"]["locked"]
        violations = check_fencing(run)
        assert violations
        assert run.fencing_stats["enforced"] is False
        assert run.trace.first(kind="node_rejoin") is not None

    def test_combined_faults_tolerant_when_fenced(self):
        run = _restart_run(COMBINED, fencing=True)
        assert check_fencing(run) == []
        # The resource rejected the stale session; c0 fenced out...
        assert run.fencing_stats["rejected"] >= 1
        assert run.trace.first(kind="cs_abort") is not None
        # ...cleared its durable hold, and re-acquired after the heal.
        assert run.results["c0"]["locked"]
        heal_at = COMBINED[1].heal_at
        regrants = [ev for ev in run.trace.filter(kind="lease_acquired")
                    if ev.time >= heal_at]
        assert regrants
        assert run.results["c1"]["locked"]

    def test_availability_counts_post_heal_service(self):
        # Availability is the unioned holder-validity time over the run
        # horizon.  (It is *not* monotone in faults for a terminating
        # scenario — the faulted run holds the lease again post-heal
        # while the clean run is simply finished — so what we pin is the
        # interval structure, not an ordering.)
        clean = compute_availability(_restart_run([]))
        faulted = compute_availability(_restart_run(COMBINED))
        for avail in (clean, faulted):
            assert avail.intervals
            assert 0.0 < avail.fraction <= 1.0
            assert all(s < e for s, e in avail.intervals)
        # The faulted run's recovery shows up as a held interval that
        # starts only after the partition heals.
        heal_at = COMBINED[1].heal_at
        assert any(s >= heal_at for s, __ in faulted.intervals)
        assert all(s < heal_at for s, __ in clean.intervals)


# ----------------------------------------------------------------------
# Joint fault-plan search
# ----------------------------------------------------------------------
def _product_classifier(bad_process, bad_node):
    """A synthetic scenario that fails exactly when BOTH the crash of
    ``bad_process`` and the cut of ``bad_node`` are present."""
    def build(policy, netplan, fault_plan):
        return (fault_plan, netplan)

    def classify(run):
        fault_plan, netplan = run
        kills = ({f.process for f in fault_plan.faults}
                 if fault_plan is not None else set())
        cut = (netplan is not None
               and netplan.partitioned(bad_node, "other", 5))
        return SPLIT_BRAIN if (bad_process in kills and cut) else TOLERANT

    return build, classify


class TestJointSearch:
    def test_joint_plan_compiles_both_sides(self):
        fault_plan, netplan = joint_plan(list(COMBINED))
        assert fault_plan.kill_due("c0", steps=0, now=14) is not None
        assert netplan.partitioned("c0", "s0", 12)
        assert not netplan.partitioned("c0", "s0", 70)
        assert describe_joint(COMBINED) == (
            "kill c0 at t=14; isolate c0 at t=12 (heals at t=70)")
        # Empty sides stay None so builders keep their defaults.
        assert joint_plan([COMBINED[0]])[1] is None
        assert joint_plan([COMBINED[1]])[0] is None

    def test_search_proves_singletons_insufficient_then_finds_pair(self):
        build, classify = _product_classifier("a", "n0")
        crashes = [CrashSpec("a", 1), CrashSpec("b", 1)]
        cuts = [CutSpec("n0", 0, 10)]
        found = search_joint_plans(build, classify, crashes, cuts,
                                   bad_labels=(SPLIT_BRAIN,), max_faults=2)
        # 3 singletons (all tolerant) then pairs until the witness.
        assert found.tried >= 4
        assert found.witness == (CrashSpec("a", 1), CutSpec("n0", 0, 10))
        assert found.witness_label == SPLIT_BRAIN
        assert (found.witness_kills, found.witness_cuts) == (1, 1)

    def test_minimize_drops_redundant_faults(self):
        build, classify = _product_classifier("a", "n0")
        bloated = [CrashSpec("a", 1), CrashSpec("b", 1),
                   CutSpec("n0", 0, 10)]
        witness, tests = minimize_joint_set(build, classify, bloated,
                                            bad_labels=(SPLIT_BRAIN,))
        assert set(witness) == {CrashSpec("a", 1), CutSpec("n0", 0, 10)}
        assert tests >= 1

    def test_witness_dict_round_trips_to_replayable_plans(self):
        build, classify = _product_classifier("a", "n0")
        found = search_joint_plans(
            build, classify, [CrashSpec("a", 1)], [CutSpec("n0", 0, 10)],
            bad_labels=(SPLIT_BRAIN,))
        payload = found.to_dict()
        from repro.dist import NetPlan

        fault_plan = FaultPlan.from_dict(payload["witness_fault_plan"])
        netplan = NetPlan.from_dict(payload["witness_net_plan"])
        assert fault_plan.kill_due("a", steps=0, now=1) is not None
        assert netplan.partitioned("n0", "x", 5)
        assert payload["witness_kills"] == 1
        assert payload["witness_cuts"] == 1


class TestRestartWitnessSearch:
    def test_finds_minimal_combined_witness(self):
        # The headline acceptance: the search over the crash x partition
        # product space finds a split-brain witness against the unfenced
        # scenario, ddmin leaves at most 2 faults (one of each kind), and
        # the identical faults are tolerated with fencing on.
        found, fenced_label = search_restart_witness()
        assert found.witness is not None
        assert found.witness_label == SPLIT_BRAIN
        assert len(found.witness) <= 2
        assert found.witness_kills == 1
        assert found.witness_cuts == 1
        assert fenced_label == TOLERANT
        # Singletons were all tried before any pair was: the witness
        # being a pair proves no single fault suffices.
        assert found.tried > 5


# ----------------------------------------------------------------------
# Scenario table and expectations
# ----------------------------------------------------------------------
class TestScenarioTable:
    def test_scenarios_cover_both_fencing_worlds(self):
        names = [name for name, *_ in resilience_scenarios()]
        assert names == ["lamport_mutex", "quorum_lock", "leader_election",
                         "restart_lock", "restart_lock_unfenced"]

    def test_expected_classifications_include_the_witness_cell(self):
        expected = expected_resilience_classifications(5)
        assert expected[("restart_lock", "crash+partition")] == TOLERANT
        assert expected[("restart_lock_unfenced",
                         "crash+partition")] == SPLIT_BRAIN
        # Every scenario has a clean cell that must tolerate nothing-
        # happening.
        for (scenario, cell), label in expected.items():
            if cell == "clean":
                assert label == TOLERANT, scenario
